"""Parallel sharded bulk evaluation vs the serial cell-batched pipeline.

``pipeline="parallel"`` partitions the grid's cell space into K
row-striped shards and fans the batch's cell-transition cohorts out to
a persistent worker pool, merging the per-shard deltas back into the
exact serial update stream.  This benchmark drives both pipelines over
the same buffered move rounds and checks two things:

* **golden equivalence** — the parallel pipeline's ordered update
  stream must be byte-identical to the cell-batched stream, every
  round, at every worker count;
* **speedup** — at full scale (100K objects / 10K queries) with at
  least 4 workers on a host with at least 4 cores, the parallel
  pipeline must deliver >= 1.8x the cell-batched throughput.  On
  smaller hosts the equivalence checks still run but the speedup gate
  is informational (process parallelism cannot beat serial on one
  core; the JSON records the curve either way).

It also sweeps K = 1, 2, 4, 8 and writes the scaling curve to
``BENCH_parallel.json``.

Runs two ways:

* under pytest (with pytest-benchmark)::

      PYTHONPATH=src pytest benchmarks/bench_parallel.py --benchmark-only

* as a plain script (used by CI's smoke job)::

      PYTHONPATH=src python benchmarks/bench_parallel.py --quick --workers 2

``--quick`` shrinks the workload and checks equivalence only.
"""

from __future__ import annotations

import gc
import os
import statistics
import time

from bench_bulk_pipeline import (
    GRID_SIZE,
    ROUNDS,
    SEED,
    buffer_round,
    build_engine,
    build_workload,
)
from conftest import scaled, write_bench_json

from repro.core.engine import IncrementalEngine
from repro.parallel import ParallelConfig
from repro.stats import format_table

FULL_OBJECTS = 100_000
FULL_QUERIES = 10_000
QUICK_OBJECTS = 3_000
QUICK_QUERIES = 300
SCALING_WORKERS = (1, 2, 4, 8)
SPEEDUP_TARGET = 1.8
MIN_CORES_FOR_GATE = 4


def build_parallel_engine(
    initial, queries, config: ParallelConfig
) -> IncrementalEngine:
    engine = IncrementalEngine(
        grid_size=GRID_SIZE,
        prediction_horizon=60.0,
        pipeline="parallel",
        parallelism=config,
    )
    for oid, location in initial:
        engine.report_object(oid, location, 0.0)
    for spec in queries:
        if spec[0] == "range":
            engine.register_range_query(spec[1], spec[2])
        elif spec[0] == "knn":
            engine.register_knn_query(spec[1], spec[2], spec[3])
        else:
            engine.register_predictive_query(spec[1], spec[2], spec[3])
    engine.evaluate(0.0)
    return engine


def run_rounds(engine: IncrementalEngine, move_rounds):
    """Evaluate every move round; return (per-round seconds, streams).

    Streams are *ordered* update-key lists: the parallel pipeline's
    contract is byte-for-byte stream identity, not just set equality.
    """
    timings: list[float] = []
    streams: list[list[tuple[int, int, int]]] = []
    now = 0.0
    for moves in move_rounds:
        now += 1.0
        buffer_round(engine, moves, now)
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            updates = engine.evaluate(now)
            timings.append(time.perf_counter() - started)
        finally:
            gc.enable()
        streams.append([(u.qid, u.oid, u.sign) for u in updates])
    return timings, streams


def run_comparison(
    n_objects: int,
    n_queries: int,
    workers_sweep,
    assert_speedup: bool,
):
    initial, queries, move_rounds = build_workload(n_objects, n_queries)

    serial_engine = build_engine("cell-batched", initial, queries)
    serial_times, serial_streams = run_rounds(serial_engine, move_rounds)
    serial_round = statistics.median(serial_times)

    curve = []
    best = None
    for workers in workers_sweep:
        config = ParallelConfig(workers=workers, min_batch=0)
        engine = build_parallel_engine(initial, queries, config)
        try:
            times, streams = run_rounds(engine, move_rounds)
            assert streams == serial_streams, (
                f"parallel stream (K={workers}) diverged from the "
                f"cell-batched stream"
            )
            registry = engine.registry
        finally:
            engine.close()
        round_time = statistics.median(times)
        point = {
            "workers": workers,
            "backend": config.resolved_backend,
            "median_round_seconds": round_time,
            "round_seconds": times,
            "reports_per_sec": n_objects / round_time,
            "speedup_vs_cell_batched": serial_round / round_time,
        }
        curve.append(point)
        if best is None or round_time < best[1]:
            best = (workers, round_time, times, registry)

    rows = [["cell-batched", serial_round * 1e3, n_objects / serial_round, 1.0]]
    for point in curve:
        rows.append(
            [
                f"parallel K={point['workers']} ({point['backend']})",
                point["median_round_seconds"] * 1e3,
                point["reports_per_sec"],
                point["speedup_vs_cell_batched"],
            ]
        )
    table = format_table(
        ["pipeline", "median round ms", "reports/s", "speedup"], rows
    )

    best_workers, best_round, best_times, best_registry = best
    speedup = serial_round / best_round
    if assert_speedup:
        assert speedup >= SPEEDUP_TARGET, (
            f"parallel pipeline managed only {speedup:.2f}x over "
            f"cell-batched at {n_objects} objects / {n_queries} queries "
            f"(best K={best_workers})"
        )

    return {
        "table": table,
        "curve": curve,
        "serial_times": serial_times,
        "serial_round": serial_round,
        "best_workers": best_workers,
        "best_times": best_times,
        "registry": best_registry,
        "speedup": speedup,
    }


def gate_applies(n_objects: int, n_queries: int, workers_sweep) -> bool:
    """The 1.8x gate engages only where it is physically meaningful:
    full populations, a sweep reaching 4+ workers, and 4+ real cores."""
    return (
        n_objects >= FULL_OBJECTS
        and n_queries >= FULL_QUERIES
        and max(workers_sweep) >= 4
        and (os.cpu_count() or 1) >= MIN_CORES_FOR_GATE
    )


def test_parallel_pipeline(benchmark, record_series, request):
    n_objects = scaled(FULL_OBJECTS)
    n_queries = scaled(FULL_QUERIES)
    result = run_comparison(
        n_objects,
        n_queries,
        SCALING_WORKERS,
        assert_speedup=gate_applies(n_objects, n_queries, SCALING_WORKERS),
    )
    record_series("parallel_pipeline", result["table"])

    initial, queries, move_rounds = build_workload(n_objects, n_queries)
    config = ParallelConfig(workers=result["best_workers"], min_batch=0)
    engine = build_parallel_engine(initial, queries, config)
    request.addfinalizer(engine.close)
    request.node.bench_registry = engine.registry
    clock = [0.0]

    def setup():
        clock[0] += 1.0
        buffer_round(engine, move_rounds[0], clock[0])
        return (clock[0],), {}

    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["objects"] = n_objects
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["grid_size"] = GRID_SIZE
    benchmark.extra_info["workers"] = result["best_workers"]
    benchmark.extra_info["speedup_vs_cell_batched"] = round(
        result["speedup"], 3
    )
    benchmark.pedantic(engine.evaluate, setup=setup, rounds=3)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    workers_sweep = SCALING_WORKERS
    if "--workers" in argv:
        workers_sweep = (int(argv[argv.index("--workers") + 1]),)
    n_objects = QUICK_OBJECTS if quick else FULL_OBJECTS
    n_queries = QUICK_QUERIES if quick else FULL_QUERIES
    label = "quick" if quick else "full"
    gated = not quick and gate_applies(n_objects, n_queries, workers_sweep)
    print(
        f"parallel pipeline benchmark ({label}): "
        f"{n_objects} objects, {n_queries} queries, {ROUNDS} rounds, "
        f"K sweep {list(workers_sweep)}, host cores {os.cpu_count()}"
    )
    result = run_comparison(
        n_objects, n_queries, workers_sweep, assert_speedup=gated
    )
    print()
    print(result["table"])
    path = write_bench_json(
        "parallel",
        result["best_times"],
        seed=SEED,
        params={
            "mode": label,
            "objects": n_objects,
            "queries": n_queries,
            "grid_size": GRID_SIZE,
            "rounds": ROUNDS,
            "workers_sweep": list(workers_sweep),
        },
        extra={
            "scaling_curve": result["curve"],
            "cell_batched_round_seconds": result["serial_times"],
            "cell_batched_median_round_seconds": result["serial_round"],
            "best_workers": result["best_workers"],
            "speedup_vs_cell_batched": result["speedup"],
            "speedup_gate_applied": gated,
        },
        registry=result["registry"],
    )
    print(f"\nwrote {path}")
    print(
        f"golden equivalence held for every K; best K={result['best_workers']} "
        f"at {result['speedup']:.2f}x vs cell-batched"
        + ("" if gated else " (speedup gate not applicable on this host)")
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
