"""ABL8: TPR-tree re-evaluation vs incremental predictive maintenance.

The paper's criticism of trajectory access methods: "there are no
special mechanisms to support the continuous spatio-temporal queries in
any of these access methods."  A TPR-tree answers each predictive window
query efficiently — but a continuous workload re-runs every query every
cycle and re-ships complete answers.  The incremental engine pays only
for what changed.
"""

import math
import random
import time

from conftest import scaled

from repro.baselines import TprPredictiveEngine
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect, Velocity
from repro.net import UpdateMessage
from repro.stats import format_table

OBJECT_COUNT = scaled(1500)
QUERY_COUNT = scaled(300)
HORIZON = 60.0
QUERY_HORIZON = 40.0
TURN_FRACTIONS = (0.05, 0.2, 0.5)
PERIOD = 5.0


def random_velocity(rng: random.Random) -> Velocity:
    heading = rng.uniform(0, 2 * math.pi)
    speed = rng.uniform(0.0, 0.004)
    return Velocity(speed * math.cos(heading), speed * math.sin(heading))


def build(seed: int = 31):
    rng = random.Random(seed)
    fleet = {
        oid: (Point(rng.random(), rng.random()), random_velocity(rng))
        for oid in range(OBJECT_COUNT)
    }
    regions = {
        10**6 + i: Rect.square(Point(rng.random(), rng.random()), 0.05)
        for i in range(QUERY_COUNT)
    }
    return rng, fleet, regions


def test_tpr_vs_incremental_predictive(benchmark, record_series):
    rows = []
    for turn_fraction in TURN_FRACTIONS:
        rng, fleet, regions = build()
        tpr = TprPredictiveEngine(horizon=HORIZON)
        incremental = IncrementalEngine(grid_size=64, prediction_horizon=HORIZON)
        for oid, (location, velocity) in fleet.items():
            tpr.report_object(oid, location, 0.0, velocity)
            incremental.report_object(oid, location, 0.0, velocity)
        for qid, region in regions.items():
            tpr.register_predictive_query(qid, region, QUERY_HORIZON)
            incremental.register_predictive_query(qid, region, QUERY_HORIZON)
        tpr.evaluate(0.0)
        incremental.evaluate(0.0)

        # One cycle: a fraction of objects turn, the rest keep course
        # (course-keepers do not even report — the GPS device only
        # speaks on deviation).
        now = PERIOD
        turners = rng.sample(sorted(fleet), int(OBJECT_COUNT * turn_fraction))
        moves = {}
        for oid in turners:
            location, velocity = fleet[oid]
            moves[oid] = (velocity.displace(location, PERIOD), random_velocity(rng))

        started = time.perf_counter()
        for oid, (position, velocity) in moves.items():
            tpr.report_object(oid, position, now, velocity)
        answers = tpr.evaluate(now)
        tpr_ms = (time.perf_counter() - started) * 1e3
        tpr_kb = tpr.answer_bytes(answers) / 1024.0

        started = time.perf_counter()
        for oid, (position, velocity) in moves.items():
            incremental.report_object(oid, position, now, velocity)
        updates = incremental.evaluate(now)
        inc_ms = (time.perf_counter() - started) * 1e3
        inc_kb = len(updates) * UpdateMessage(1, 1, 1).size_bytes / 1024.0

        # Exactness cross-check on a sample of queries.
        for qid in list(regions)[:25]:
            assert answers[qid] == incremental.answer_of(qid)

        rows.append(
            [f"{100 * turn_fraction:.0f}%", inc_ms, tpr_ms, inc_kb, tpr_kb]
        )
    record_series(
        "abl8_tpr_predictive",
        format_table(
            ["turned", "incr ms", "tpr ms", "incr KB", "tpr KB"], rows
        ),
    )

    # At low churn the incremental engine wins on both axes.
    assert rows[0][3] < rows[0][4]

    rng, fleet, regions = build()
    tpr = TprPredictiveEngine(horizon=HORIZON)
    for oid, (location, velocity) in fleet.items():
        tpr.report_object(oid, location, 0.0, velocity)
    for qid, region in regions.items():
        tpr.register_predictive_query(qid, region, QUERY_HORIZON)
    benchmark(tpr.evaluate)
