"""ABL1: shared execution vs per-query evaluation.

The paper's scalability claim: "Handling each query as an individual
entity dramatically degrades the performance of the location-aware
server."  This ablation grows the number of outstanding queries and
times one evaluation cycle under three regimes:

* incremental shared engine (cost tracks the *changes*),
* per-query R-tree evaluation (cost tracks the *query count*),
* snapshot grid re-evaluation (ditto, with cheaper per-query search).
"""

import random
import time

from conftest import scaled

from repro.baselines import PerQueryEngine, SnapshotEngine
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
QUERY_COUNTS = tuple(scaled(n) for n in (500, 1000, 2000, 4000))
MOVE_FRACTION = 0.2  # objects reporting per cycle


def build_workload(query_count: int, seed: int = 3):
    rng = random.Random(seed)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    queries = {
        10**6 + i: Rect.square(Point(rng.random(), rng.random()), 0.03)
        for i in range(query_count)
    }
    moves = {
        oid: Point(rng.random(), rng.random())
        for oid in rng.sample(sorted(objects), int(OBJECT_COUNT * MOVE_FRACTION))
    }
    return objects, queries, moves


def time_cycle(engine, objects, queries, moves) -> float:
    for oid, location in objects.items():
        engine.report_object(oid, location, 0.0)
    for qid, region in queries.items():
        engine.register_range_query(qid, region)
    engine.evaluate(0.0)
    started = time.perf_counter()
    for oid, location in moves.items():
        engine.report_object(oid, location, 1.0)
    engine.evaluate(1.0)
    return time.perf_counter() - started


def test_shared_execution_scalability(benchmark, record_series):
    rows = []
    for query_count in QUERY_COUNTS:
        objects, queries, moves = build_workload(query_count)
        shared = time_cycle(IncrementalEngine(grid_size=64), objects, queries, moves)
        per_query = time_cycle(PerQueryEngine(), objects, queries, moves)
        snapshot = time_cycle(SnapshotEngine(grid_size=64), objects, queries, moves)
        rows.append(
            [query_count, shared * 1e3, snapshot * 1e3, per_query * 1e3]
        )
    record_series(
        "abl1_shared_execution",
        format_table(
            ["queries", "shared ms", "snapshot ms", "per-query ms"], rows
        ),
    )

    # Shared execution must win at every population size, and its cost
    # must grow slower in the query count than full re-evaluation does
    # (the per-query R-tree baseline is dominated by object-update cost,
    # so the cleaner growth comparison is against the snapshot engine).
    for row in rows:
        assert row[1] < row[2], f"shared lost to snapshot at {row[0]} queries"
        assert row[1] < row[3], f"shared lost to per-query at {row[0]} queries"
    # Growth comparison with a noise margin: single-cycle timings jitter
    # (GC, cache effects), so demand the trend, not a razor-thin edge.
    shared_growth = rows[-1][1] / max(rows[0][1], 1e-9)
    snapshot_growth = rows[-1][2] / max(rows[0][2], 1e-9)
    assert shared_growth < snapshot_growth * 1.5
    # And the absolute advantage at the largest population is material.
    assert rows[-1][2] / rows[-1][1] > 1.5

    objects, queries, moves = build_workload(QUERY_COUNTS[-1])
    engine = IncrementalEngine(grid_size=64)
    for oid, location in objects.items():
        engine.report_object(oid, location, 0.0)
    for qid, region in queries.items():
        engine.register_range_query(qid, region)
    engine.evaluate(0.0)

    now = [1.0]

    def one_cycle():
        for oid, location in moves.items():
            engine.report_object(oid, location, now[0])
        engine.evaluate(now[0])
        now[0] += 1.0

    benchmark(one_cycle)
