"""Figure 5(b): answer size vs query side length.

Paper setup: the query side length varies from 0.01 to 0.04 of the unit
world.  Expected shape: the complete answer grows sharply with the side
length (membership scales with area) "up to seven times that of the
incremental result" at side 0.04, while the incremental answer grows
only mildly (churn scales with the boundary).
"""

from conftest import scaled

from repro import Simulation, SimulationConfig, WorkloadConfig
from repro.stats import format_table

SIDES = (0.01, 0.02, 0.03, 0.04)
CYCLES = 6


def run_point(side: float) -> Simulation:
    config = SimulationConfig(
        object_count=scaled(3000),
        workload=WorkloadConfig(
            range_queries=scaled(3000),
            side=side,
            moving_fraction=0.5,
            seed=5,
        ),
        grid_size=64,
        eval_period=5.0,
        blocks=16,
        seed=9,
    )
    sim = Simulation(config)
    sim.run(CYCLES)
    return sim


def test_fig5b_query_size_sweep(benchmark, record_series):
    rows = []
    for side in SIDES:
        sim = run_point(side)
        incremental = sim.mean_incremental_kb()
        complete = sim.mean_complete_kb()
        rows.append(
            [
                side,
                incremental,
                complete,
                complete / incremental if incremental else 0.0,
            ]
        )
    record_series(
        "fig5b_query_size",
        format_table(
            ["side", "incremental KB", "complete KB", "complete/inc"], rows
        ),
    )

    completes = [row[2] for row in rows]
    assert completes == sorted(completes), (
        "complete answer must grow with the query side length"
    )
    # The advantage widens with query size (the paper reads ~7x at 0.04).
    ratios = [row[3] for row in rows]
    assert ratios[-1] > ratios[0], (
        "complete/incremental ratio must grow with query size"
    )
    assert ratios[-1] > 3.0, (
        "at side 0.04 the complete answer should be several times the "
        f"incremental one (got {ratios[-1]:.1f}x)"
    )

    sim = run_point(0.04)
    benchmark(sim.step)
