"""Append-only benchmark history and regression diffing.

Every benchmark writes a ``BENCH_<name>.json`` summary at the repo root
whose ``environment.git_sha`` records the commit it was measured at.
This tool folds those summaries into ``benchmarks/history/<name>.jsonl``
— one JSON line per recording, keyed by that SHA — and diffs any two
recordings with a noise threshold, so "did this PR slow the engine
down?" is answerable from the log instead of from memory.

Stdlib only; runs standalone::

    python benchmarks/compare.py append              # all BENCH_*.json
    python benchmarks/compare.py append BENCH_columnar.json
    python benchmarks/compare.py list columnar
    python benchmarks/compare.py diff columnar                 # last two
    python benchmarks/compare.py diff columnar --base <sha> --head <sha>
    python benchmarks/compare.py diff columnar \
        --head-file BENCH_columnar.json --metric ingest_reports_per_sec

``diff`` exits non-zero when head throughput is below base by more than
the threshold (default 15% — round-to-round noise on a shared host is
real; see the paired methodology in bench_columnar.py).  Entries taken
at different workload scales are never compared.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY_DIR = Path(__file__).resolve().parent / "history"
DEFAULT_THRESHOLD = 0.15


def entry_from_bench(path: Path) -> dict:
    """One history line distilled from a BENCH_*.json summary."""
    data = json.loads(path.read_text())
    latency = data.get("latency_seconds", {})
    entry = {
        "sha": data.get("environment", {}).get("git_sha", "unknown"),
        "name": data["name"],
        "ops_per_sec": data.get("ops_per_sec"),
        "latency_p50": latency.get("p50"),
        "latency_p95": latency.get("p95"),
        "scale": data.get("scale", 1.0),
        "rounds": data.get("rounds"),
        "params": data.get("params", {}),
    }
    # Benchmark-specific headline numbers ride along when present.
    for key in (
        "speedup_vs_cell_batched",
        "speedup_gate_applied",
        "ingest_speedup_vs_cell_batched",
        "ingest_reports_per_sec",
        "emit_speedup_vs_materialized",
        "emit_updates_per_sec",
    ):
        if key in data:
            entry[key] = data[key]
    return entry


def append_entries(paths: list[Path], history_dir: Path) -> list[Path]:
    history_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for path in paths:
        entry = entry_from_bench(path)
        target = history_dir / f"{entry['name']}.jsonl"
        with target.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        written.append(target)
    return written


def read_history(name: str, history_dir: Path) -> list[dict]:
    target = history_dir / f"{name}.jsonl"
    if not target.exists():
        raise SystemExit(f"no history for '{name}' at {target}")
    return [
        json.loads(line)
        for line in target.read_text().splitlines()
        if line.strip()
    ]


def pick(entries: list[dict], sha: str | None, default_index: int) -> dict:
    if sha is None:
        return entries[default_index]
    matches = [e for e in entries if e["sha"].startswith(sha)]
    if not matches:
        raise SystemExit(f"no history entry with sha prefix '{sha}'")
    return matches[-1]  # latest recording at that commit


def diff_entries(
    base: dict,
    head: dict,
    threshold: float,
    metric: str = "ops_per_sec",
) -> tuple[str, str]:
    """Classify head vs base: 'regression', 'improvement', or 'ok'.

    ``metric`` names any higher-is-better per-entry number (default
    whole-run throughput; e.g. ``ingest_reports_per_sec`` isolates the
    report-ingest phase).
    """
    if base.get("scale") != head.get("scale"):
        raise SystemExit(
            f"refusing to compare different workload scales "
            f"({base.get('scale')} vs {head.get('scale')})"
        )
    base_ops = base.get(metric) or 0.0
    head_ops = head.get(metric) or 0.0
    if not base_ops or not head_ops:
        raise SystemExit(f"entry missing {metric}; cannot diff")
    ratio = head_ops / base_ops
    lines = [
        f"base  {base['sha'][:12]}  {base_ops:12.1f} {metric}  "
        f"p50 {(base.get('latency_p50') or 0.0) * 1e3:9.3f} ms",
        f"head  {head['sha'][:12]}  {head_ops:12.1f} {metric}  "
        f"p50 {(head.get('latency_p50') or 0.0) * 1e3:9.3f} ms",
        f"{metric} ratio {ratio:.3f} (threshold ±{threshold:.0%})",
    ]
    if ratio < 1.0 - threshold:
        status = "regression"
    elif ratio > 1.0 + threshold:
        status = "improvement"
    else:
        status = "ok"
    return status, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="fold BENCH_*.json into history")
    p_append.add_argument("files", nargs="*", type=Path)
    p_append.add_argument("--history", type=Path, default=HISTORY_DIR)

    p_list = sub.add_parser("list", help="show a benchmark's history")
    p_list.add_argument("name")
    p_list.add_argument("--history", type=Path, default=HISTORY_DIR)

    p_diff = sub.add_parser("diff", help="compare two history entries")
    p_diff.add_argument("name")
    p_diff.add_argument("--base", help="sha prefix (default: second-latest)")
    p_diff.add_argument("--head", help="sha prefix (default: latest)")
    p_diff.add_argument(
        "--head-file", type=Path,
        help="BENCH_*.json to diff as head against the last same-scale "
        "history entry (CI pre-merge gate; skips cleanly with no history)",
    )
    p_diff.add_argument(
        "--metric", default="ops_per_sec",
        help="higher-is-better entry field to compare "
        "(default: ops_per_sec; e.g. ingest_reports_per_sec)",
    )
    p_diff.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative throughput change treated as noise",
    )
    p_diff.add_argument("--history", type=Path, default=HISTORY_DIR)

    args = parser.parse_args(argv)

    if args.command == "append":
        paths = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
        if not paths:
            raise SystemExit("no BENCH_*.json summaries found")
        for target in append_entries(paths, args.history):
            print(f"appended to {target}")
        return 0

    if args.command == "list":
        for entry in read_history(args.name, args.history):
            print(
                f"{entry['sha'][:12]}  scale {entry.get('scale', 1.0):<5}  "
                f"{entry.get('ops_per_sec', 0.0):12.1f} ops/s  "
                f"p50 {(entry.get('latency_p50') or 0.0) * 1e3:9.3f} ms"
            )
        return 0

    if args.head_file is not None:
        # Working-tree summary vs the last recorded entry at the same
        # workload scale — the shape CI uses before history is appended.
        head = entry_from_bench(args.head_file)
        try:
            entries = read_history(args.name, args.history)
        except SystemExit:
            entries = []
        # "Same scale" means the BENCH_SCALE knob *and* the recorded
        # workload populations: quick and full runs share scale=1.0 and
        # differ only in params, so scale alone would cross-compare them.
        def _workload(entry: dict) -> tuple:
            params = entry.get("params", {})
            return (
                entry.get("scale"),
                params.get("objects"),
                params.get("queries"),
            )

        same_scale = [
            e for e in entries if _workload(e) == _workload(head)
        ]
        if args.base is None and not same_scale:
            print("no same-scale history entry; nothing to diff")
            return 0
        base = pick(same_scale or entries, args.base, -1)
        if not base.get(args.metric):
            print(
                f"last same-scale entry predates {args.metric}; "
                f"nothing to diff"
            )
            return 0
    else:
        entries = read_history(args.name, args.history)
        if args.base is None and len(entries) < 2:
            print("only one history entry; nothing to diff")
            return 0
        base = pick(entries, args.base, -2)
        head = pick(entries, args.head, -1)
    status, report = diff_entries(base, head, args.threshold, args.metric)
    print(report)
    print(status.upper())
    return 1 if status == "regression" else 0


if __name__ == "__main__":
    sys.exit(main())
