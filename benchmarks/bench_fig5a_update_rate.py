"""Figure 5(a): answer size vs object update rate.

Paper setup: network-generated moving objects and moving square queries,
server evaluation every 5 seconds, x-axis "update rate for objects (%)"
— the fraction of objects that reported a location change within the
last period.  Two series: the incremental answer size and the complete
answer size, in KB.

Expected shape (paper): the complete answer is constant in the update
rate and sits far above the worst-case incremental answer; the
incremental answer grows with the update rate.  The conclusion's claim
that the incremental result is ~10 % of the complete result (CLAIM1) is
printed as the ratio column.
"""

from conftest import scaled

from repro import Simulation, SimulationConfig, WorkloadConfig
from repro.stats import format_table

UPDATE_RATES = (0.10, 0.25, 0.50, 0.75, 1.00)
CYCLES = 6


def run_point(update_rate: float) -> Simulation:
    config = SimulationConfig(
        object_count=scaled(3000),
        workload=WorkloadConfig(
            range_queries=scaled(3000),
            side=0.03,
            moving_fraction=0.5,
            seed=5,
        ),
        grid_size=64,
        eval_period=5.0,
        object_report_fraction=update_rate,
        blocks=16,
        seed=9,
    )
    sim = Simulation(config)
    sim.run(CYCLES)
    return sim


def test_fig5a_update_rate_sweep(benchmark, record_series):
    rows = []
    for rate in UPDATE_RATES:
        sim = run_point(rate)
        incremental = sim.mean_incremental_kb()
        complete = sim.mean_complete_kb()
        rows.append(
            [
                f"{100 * rate:.0f}%",
                incremental,
                complete,
                incremental / complete if complete else 0.0,
            ]
        )
    record_series(
        "fig5a_update_rate",
        format_table(
            ["update rate", "incremental KB", "complete KB", "inc/complete"],
            rows,
        ),
    )

    # Shape assertions mirroring the paper's reading of the figure.
    incrementals = [row[1] for row in rows]
    completes = [row[2] for row in rows]
    assert incrementals == sorted(incrementals), (
        "incremental answer must grow with the update rate"
    )
    spread = (max(completes) - min(completes)) / max(completes)
    assert spread < 0.25, "complete answer must be ~constant in update rate"
    assert incrementals[-1] < completes[-1], (
        "even the worst-case incremental answer stays below the complete one"
    )

    # Timed operation: one evaluation cycle at full update rate.
    sim = run_point(1.0)
    benchmark(sim.step)
