"""Freshness-vs-savings characterization: what staleness the paper's
bandwidth savings cost, as a function of downlink budget.

The incremental protocol's case (Figure 5) is byte savings over full
retransmission; the tentpole observability plane makes the *price* of
those savings measurable — how many cycles behind the engine a client's
delivered and committed answers run.  This benchmark sweeps one
client's downlink budget from "everything fits" down to roughly one
update per cycle, runs the same deterministic moving workload at each
point, and reports the server's ``freshness_vs_savings()`` snapshot:
savings ratio next to delivery-stage and commit-stage staleness
percentiles (in cycles).

The sweep is a characterization, not a gate: there is no assertion on
the trade itself, only on snapshot well-formedness.  Runs two ways:

* under pytest (with pytest-benchmark)::

      PYTHONPATH=src pytest benchmarks/bench_freshness.py --benchmark-only

* as a plain script (CI's smoke job uses ``--quick``)::

      PYTHONPATH=src python benchmarks/bench_freshness.py --quick

Both modes write ``BENCH_freshness.json`` at the repo root with one
entry per sweep point (budget, savings ratio, per-stage staleness
percentiles) plus the unthrottled point's per-cycle timings.
"""

from __future__ import annotations

import random
import time

from conftest import scaled, write_bench_json

from repro.core.server import LocationAwareServer
from repro.geometry import Point, Rect
from repro.stats import format_table

SEED = 53
GRID_SIZE = 32

FULL_OBJECTS = 5_000
FULL_QUERIES = 500
FULL_CYCLES = 40
QUICK_OBJECTS = 400
QUICK_QUERIES = 40
QUICK_CYCLES = 15

#: Downlink budgets for the throttled client, bytes per cycle.  An
#: UpdateMessage is 17 bytes, so these are ~unlimited / ~10 / ~4 / ~1
#: updates per cycle.
BUDGET_SWEEP = (None, 170, 68, 17)

#: The throttled client acknowledges (commits) every this-many cycles —
#: commit-stage staleness needs acknowledgements to be measured at all.
COMMIT_EVERY = 3


def run_sweep_point(
    budget: int | None, n_objects: int, n_queries: int, cycles: int
):
    """One deterministic run; returns the snapshot + per-cycle seconds."""
    rng = random.Random(SEED)
    server = LocationAwareServer(grid_size=GRID_SIZE)
    server.register_client(0)  # healthy reference client
    if budget is None:
        server.register_client(1)
    else:
        server.register_client(1, downlink_budget=budget)
    # Queries alternate between the clients so both see comparable
    # update volume; all-range keeps the sweep about the network, not
    # about query-kind mix.
    for qid in range(n_queries):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        side = rng.uniform(0.02, 0.10)
        server.register_range_query(
            qid % 2, qid, Rect(x, y, x + side, y + side)
        )
    for oid in range(n_objects):
        server.receive_object_report(
            oid, Point(rng.random(), rng.random()), t=0.0
        )
    timings: list[float] = []
    for cycle in range(cycles):
        now = float(cycle + 1)
        for oid in rng.sample(range(n_objects), k=max(1, n_objects // 4)):
            server.receive_object_report(
                oid, Point(rng.random(), rng.random()), now
            )
        started = time.perf_counter()
        server.evaluate_cycle(now)
        # The throttled client keeps trying to catch up through its
        # thin pipe: each wakeup redelivers what fits in the remaining
        # budget and advances the committed base by exactly that.  This
        # is where throttling turns into staleness — updates the cycle
        # dropped come back rounds later, at their original stamps.
        server.receive_wakeup(1)
        timings.append(time.perf_counter() - started)
        if cycle % COMMIT_EVERY == COMMIT_EVERY - 1:
            for qid in range(0, n_queries, 2):  # client 0's queries
                server.receive_commit(qid)
    snapshot = server.freshness_vs_savings()
    return snapshot, timings


def stage_cycles(snapshot: dict, stage: str, qids) -> dict:
    """Worst-query p50/p95/p99 cycle staleness for one stage over the
    given queries ({} when unmeasured).

    The aggregate stage histograms are dominated by the healthy
    client's same-cycle deliveries; the sweep is about the *throttled*
    client, so its queries' exact per-query summaries are merged by
    worst case — a dashboard alert cares about the slowest query.
    """
    queries = snapshot["staleness"].get("queries", {})
    merged: dict[str, float] = {}
    count = 0
    for qid in qids:
        stage_summary = queries.get(qid, {}).get(stage)
        if not stage_summary:
            continue
        count += stage_summary["count"]
        for key, value in stage_summary["cycles"].items():
            merged[key] = max(merged.get(key, 0.0), float(value))
    if not count:
        return {}
    merged["count"] = count
    return merged


def run_characterization(n_objects: int, n_queries: int, cycles: int):
    points = []
    for budget in BUDGET_SWEEP:
        snapshot, timings = run_sweep_point(
            budget, n_objects, n_queries, cycles
        )
        throttled_qids = range(1, n_queries, 2)  # client 1's queries
        delivery = stage_cycles(snapshot, "delivery", throttled_qids)
        commit = stage_cycles(snapshot, "commit", throttled_qids)
        # Well-formedness: the trade must actually be measured.
        assert snapshot["savings_ratio"] > 0.0
        assert delivery.get("count", 0) > 0, "no delivery staleness measured"
        assert commit.get("count", 0) > 0, "no commit staleness measured"
        points.append(
            {
                "budget_bytes_per_cycle": budget,
                "savings_ratio": snapshot["savings_ratio"],
                "incremental_bytes": snapshot["incremental_bytes"],
                "complete_bytes": snapshot["complete_bytes"],
                "delivery_cycles": delivery,
                "commit_cycles": commit,
                "timings": timings,
            }
        )
    rows = [
        [
            "unlimited" if p["budget_bytes_per_cycle"] is None
            else str(p["budget_bytes_per_cycle"]),
            p["savings_ratio"],
            p["delivery_cycles"].get("p95", 0.0),
            p["commit_cycles"].get("p50", 0.0),
            p["commit_cycles"].get("p95", 0.0),
            p["commit_cycles"].get("p99", 0.0),
        ]
        for p in points
    ]
    table = format_table(
        [
            "budget B/cycle",
            "savings ratio",
            "delivery p95 (cyc)",
            "commit p50",
            "commit p95",
            "commit p99",
        ],
        rows,
    )
    # Tighter pipes must never *improve* staleness: the throttled
    # client's worst-query commit p95 is monotone non-decreasing as the
    # budget shrinks (within one cycle of slack for tie-breaks).
    p95s = [p["commit_cycles"].get("p95", 0.0) for p in points]
    for wider, tighter in zip(p95s, p95s[1:]):
        assert tighter >= wider - 1.0, (
            f"commit staleness fell as budget tightened: {p95s}"
        )
    return points, table


def test_freshness_vs_savings(benchmark, record_series):
    n_objects = scaled(FULL_OBJECTS)
    n_queries = scaled(FULL_QUERIES)
    cycles = max(10, scaled(FULL_CYCLES))
    points, table = run_characterization(n_objects, n_queries, cycles)
    record_series("freshness", table)

    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["objects"] = n_objects
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["cycles"] = cycles
    for point in points:
        budget = point["budget_bytes_per_cycle"]
        label = "unlimited" if budget is None else str(budget)
        benchmark.extra_info[f"savings_ratio_{label}"] = round(
            point["savings_ratio"], 4
        )
        benchmark.extra_info[f"commit_p95_cycles_{label}"] = point[
            "commit_cycles"
        ].get("p95", 0.0)

    # The timed operation: one instrumented evaluate+downlink cycle on
    # a fresh unthrottled deployment.
    benchmark.pedantic(
        lambda: run_sweep_point(None, n_objects, n_queries, 5), rounds=3
    )


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    n_objects = QUICK_OBJECTS if quick else FULL_OBJECTS
    n_queries = QUICK_QUERIES if quick else FULL_QUERIES
    cycles = QUICK_CYCLES if quick else FULL_CYCLES
    label = "quick" if quick else "full"
    print(
        f"freshness-vs-savings benchmark ({label}): "
        f"{n_objects} objects, {n_queries} queries, {cycles} cycles, "
        f"budgets={[b or 'unlimited' for b in BUDGET_SWEEP]}"
    )
    points, table = run_characterization(n_objects, n_queries, cycles)
    print()
    print(table)
    unthrottled = points[0]
    path = write_bench_json(
        "freshness",
        unthrottled["timings"],
        seed=SEED,
        params={
            "mode": label,
            "objects": n_objects,
            "queries": n_queries,
            "cycles": cycles,
            "grid_size": GRID_SIZE,
            "commit_every": COMMIT_EVERY,
            "budget_sweep": list(BUDGET_SWEEP),
        },
        extra={
            "sweep": [
                {k: v for k, v in p.items() if k != "timings"}
                for p in points
            ],
        },
    )
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
