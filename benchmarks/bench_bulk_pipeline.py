"""Cell-batched bulk-evaluation pipeline vs the per-object reference path.

The paper's Section 3 argument is that buffered updates should be
evaluated *in bulk* as a grid-partition spatial join rather than one at
a time.  This benchmark measures exactly that trade on the engine's hot
path: the same buffered batch of object reports is evaluated once by
``pipeline="per-object"`` (per-report candidate resolution, the seed
path) and once by ``pipeline="cell-batched"`` (per-cell-transition
candidate resolution, cohort membership passes, churn-driven predictive
refresh).  Both pipelines must emit the same update set per query —
checked every round — and at full scale (100K objects / 10K queries)
the batched pipeline must deliver at least 2x the report throughput.

Runs two ways:

* under pytest (with pytest-benchmark)::

      PYTHONPATH=src pytest benchmarks/bench_bulk_pipeline.py --benchmark-only

* as a plain script (used by CI's smoke job)::

      PYTHONPATH=src python benchmarks/bench_bulk_pipeline.py --quick

``--quick`` (or REPRO_BENCH_SCALE<1 under pytest) shrinks the workload
and drops the 2x assertion, which is only meaningful at full scale.
Both modes write ``BENCH_bulk_pipeline*.json`` summaries at the repo
root via the shared reporter in ``conftest.py``.
"""

from __future__ import annotations

import gc
import random
import statistics
import time

from conftest import scaled, write_bench_json

from repro.core.engine import IncrementalEngine
from repro.geometry import Point, Rect, Velocity
from repro.stats import format_table

SEED = 47
GRID_SIZE = 64
ROUNDS = 3
# Full-scale targets (ISSUE: 100k-object / 10k-query batch).  The
# default pytest run scales these down via REPRO_BENCH_SCALE; the 2x
# assertion engages only at full populations.
FULL_OBJECTS = 100_000
FULL_QUERIES = 10_000
QUICK_OBJECTS = 4_000
QUICK_QUERIES = 400


def build_workload(n_objects: int, n_queries: int, seed: int = SEED):
    """Deterministic mixed workload: initial reports, queries, move rounds."""
    rng = random.Random(seed)
    initial = [
        (oid, Point(rng.random(), rng.random()))
        for oid in range(n_objects)
    ]
    queries = []
    for qid in range(n_queries):
        x, y = rng.random() * 0.9, rng.random() * 0.9
        kind = rng.random()
        if kind < 0.90:
            side = rng.uniform(0.01, 0.08)
            queries.append(("range", qid, Rect(x, y, x + side, y + side)))
        elif kind < 0.98:
            queries.append(("knn", qid, Point(x, y), rng.randint(4, 8)))
        else:
            side = rng.uniform(0.02, 0.08)
            queries.append(
                ("predictive", qid, Rect(x, y, x + side, y + side), 20.0)
            )
    move_rounds = []
    for _ in range(ROUNDS):
        move_rounds.append(
            [
                (oid, rng.uniform(-0.01, 0.01), rng.uniform(-0.01, 0.01))
                for oid, __ in initial
            ]
        )
    return initial, queries, move_rounds


def build_engine(
    pipeline: str, initial, queries, registry=None, tracer=None, **engine_kwargs
) -> IncrementalEngine:
    engine = IncrementalEngine(
        grid_size=GRID_SIZE,
        prediction_horizon=60.0,
        pipeline=pipeline,
        registry=registry,
        tracer=tracer,
        **engine_kwargs,
    )
    for oid, location in initial:
        engine.report_object(oid, location, 0.0)
    for spec in queries:
        if spec[0] == "range":
            engine.register_range_query(spec[1], spec[2])
        elif spec[0] == "knn":
            engine.register_knn_query(spec[1], spec[2], spec[3])
        else:
            engine.register_predictive_query(spec[1], spec[2], spec[3])
    engine.evaluate(0.0)
    return engine


def buffer_round(engine: IncrementalEngine, moves, now: float) -> None:
    world = engine.grid.world
    report = engine.report_object
    for oid, dx, dy in moves:
        state = engine.objects[oid]
        loc = state.location
        report(
            oid,
            Point(
                min(max(loc.x + dx, world.min_x), world.max_x),
                min(max(loc.y + dy, world.min_y), world.max_y),
            ),
            now,
            Velocity.ZERO if not state.is_predictive else state.velocity,
        )


def run_pipeline(
    pipeline: str, initial, queries, move_rounds, registry=None, tracer=None
):
    """Evaluate every move round; return (per-round seconds, update keys).

    Garbage collection is forced before and disabled during each timed
    evaluation so a collection cycle landing inside one pipeline's
    measurement cannot skew the comparison.
    """
    engine = build_engine(pipeline, initial, queries, registry, tracer)
    timings: list[float] = []
    update_keys = []
    now = 0.0
    for moves in move_rounds:
        now += 1.0
        buffer_round(engine, moves, now)
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            updates = engine.evaluate(now)
            timings.append(time.perf_counter() - started)
        finally:
            gc.enable()
        update_keys.append(
            frozenset((u.qid, u.oid, u.sign) for u in updates)
        )
    return engine, timings, update_keys


def run_comparison(n_objects: int, n_queries: int, assert_speedup: bool):
    initial, queries, move_rounds = build_workload(n_objects, n_queries)

    batched_engine, batched_times, batched_updates = run_pipeline(
        "cell-batched", initial, queries, move_rounds
    )
    __, perobject_times, perobject_updates = run_pipeline(
        "per-object", initial, queries, move_rounds
    )

    # Golden cross-check: identical update sets, round for round.
    for round_no, (got, want) in enumerate(
        zip(batched_updates, perobject_updates)
    ):
        assert got == want, f"pipelines diverged in round {round_no}"

    # Median round time is robust against a straggler round (OS jitter
    # on shared runners); throughput is reports per median round.
    batched_round = statistics.median(batched_times)
    perobject_round = statistics.median(perobject_times)
    batched_rps = n_objects / batched_round
    perobject_rps = n_objects / perobject_round
    speedup = batched_rps / perobject_rps

    rows = [
        ["per-object", perobject_round * 1e3, perobject_rps, 1.0],
        ["cell-batched", batched_round * 1e3, batched_rps, speedup],
    ]
    table = format_table(
        ["pipeline", "median round ms", "reports/s", "speedup"], rows
    )

    phase_rows = [
        [name, seconds * 1e3]
        for name, seconds in sorted(
            batched_engine.stats.phase_seconds.items(),
            key=lambda item: -item[1],
        )
    ]
    phase_table = format_table(["phase", "cumulative ms"], phase_rows)

    if assert_speedup:
        assert speedup >= 2.0, (
            f"cell-batched pipeline managed only {speedup:.2f}x over the "
            f"per-object path at {n_objects} objects / {n_queries} queries"
        )

    return {
        "table": table,
        "phase_table": phase_table,
        "registry": batched_engine.registry,
        "speedup": speedup,
        "batched_times": batched_times,
        "perobject_times": perobject_times,
        "batched_rps": batched_rps,
        "perobject_rps": perobject_rps,
    }


def test_bulk_pipeline(benchmark, record_series, request):
    n_objects = scaled(FULL_OBJECTS)
    n_queries = scaled(FULL_QUERIES)
    full_scale = n_objects >= FULL_OBJECTS and n_queries >= FULL_QUERIES
    result = run_comparison(n_objects, n_queries, assert_speedup=full_scale)

    record_series(
        "bulk_pipeline",
        result["table"] + "\n\n" + result["phase_table"],
    )

    # Hand one batched bulk evaluation to pytest-benchmark: each round
    # re-buffers the same move batch, the measured call is evaluate().
    initial, queries, move_rounds = build_workload(n_objects, n_queries)
    engine = build_engine("cell-batched", initial, queries)
    # The engine's counters ride along in BENCH_bulk_pipeline.json.
    request.node.bench_registry = engine.registry
    clock = [0.0]

    def setup():
        clock[0] += 1.0
        buffer_round(engine, move_rounds[0], clock[0])
        return (clock[0],), {}

    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["objects"] = n_objects
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["grid_size"] = GRID_SIZE
    benchmark.extra_info["speedup_vs_per_object"] = round(
        result["speedup"], 3
    )
    benchmark.pedantic(engine.evaluate, setup=setup, rounds=3)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    n_objects = QUICK_OBJECTS if quick else FULL_OBJECTS
    n_queries = QUICK_QUERIES if quick else FULL_QUERIES
    label = "quick" if quick else "full"
    print(
        f"bulk pipeline benchmark ({label}): "
        f"{n_objects} objects, {n_queries} queries, {ROUNDS} rounds"
    )
    result = run_comparison(n_objects, n_queries, assert_speedup=not quick)
    print()
    print(result["table"])
    print()
    print(result["phase_table"])
    path = write_bench_json(
        "bulk_pipeline",
        result["batched_times"],
        seed=SEED,
        params={
            "mode": label,
            "objects": n_objects,
            "queries": n_queries,
            "grid_size": GRID_SIZE,
            "rounds": ROUNDS,
        },
        extra={
            "reports_per_sec": result["batched_rps"],
            "per_object_reports_per_sec": result["perobject_rps"],
            "speedup_vs_per_object": result["speedup"],
        },
        registry=result["registry"],
    )
    print(f"\nwrote {path}")
    print(f"speedup vs per-object path: {result['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
