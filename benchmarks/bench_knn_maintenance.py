"""ABL6: incremental k-NN maintenance vs recompute-from-scratch.

A continuous k-NN answer only changes when movement touches its circle
(or a member departs).  The incremental engine therefore repairs only
the queries a batch actually dirtied; the strawman recomputes every
k-NN query every cycle.  Low churn should separate the two sharply.
"""

import random
import time

from conftest import scaled

from repro.core import IncrementalEngine
from repro.core.knn import knn_search
from repro.geometry import Point
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
QUERY_COUNT = scaled(200)
K = 5
MOVE_FRACTIONS = (0.01, 0.05, 0.2, 0.5)


def build(seed: int = 12):
    rng = random.Random(seed)
    engine = IncrementalEngine(grid_size=64)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    for oid, location in objects.items():
        engine.report_object(oid, location, 0.0)
    centers = {
        10**6 + i: Point(rng.random(), rng.random()) for i in range(QUERY_COUNT)
    }
    for qid, center in centers.items():
        engine.register_knn_query(qid, center, K)
    engine.evaluate(0.0)
    return rng, engine, objects, centers


def test_knn_maintenance(benchmark, record_series):
    rows = []
    for fraction in MOVE_FRACTIONS:
        rng, engine, objects, centers = build()
        moved = rng.sample(sorted(objects), max(1, int(OBJECT_COUNT * fraction)))
        for oid in moved:
            objects[oid] = Point(rng.random(), rng.random())

        # Incremental: report + one evaluation (dirty queries only).
        started = time.perf_counter()
        for oid in moved:
            engine.report_object(oid, objects[oid], 1.0)
        engine.evaluate(1.0)
        incremental_ms = (time.perf_counter() - started) * 1e3

        # Strawman: recompute every k-NN query over the updated index.
        started = time.perf_counter()
        for center in centers.values():
            knn_search(engine.index, engine.objects, center, K)
        recompute_ms = (time.perf_counter() - started) * 1e3

        # Consistency: the maintained answers equal a fresh recompute.
        for qid, center in list(centers.items())[:10]:
            fresh = {oid for __, oid in knn_search(engine.index, engine.objects, center, K)}
            assert set(engine.answer_of(qid)) == fresh

        rows.append([f"{100 * fraction:.0f}%", incremental_ms, recompute_ms])

    record_series(
        "abl6_knn_maintenance",
        format_table(["moved", "incremental ms", "recompute-all ms"], rows),
    )

    # At the lowest churn the incremental path must win.
    assert rows[0][1] < rows[0][2]

    rng, engine, objects, __ = build()
    moved = rng.sample(sorted(objects), OBJECT_COUNT // 20)
    now = [1.0]

    def one_cycle():
        for oid in moved:
            engine.report_object(oid, Point(rng.random(), rng.random()), now[0])
        engine.evaluate(now[0])
        now[0] += 1.0

    benchmark(one_cycle)
