"""ABL3: the Q-index baseline vs the incremental grid engine.

The Q-index (R-tree over stationary queries, probed by every object
every period) is the paper's closest centralized competitor.  Its two
modelled limitations show up directly: it pays the full probe cost every
cycle regardless of how little changed, and it re-ships complete
answers.  The comparison uses a stationary query population — the only
workload the Q-index supports.
"""

import random
import time

from conftest import scaled

from repro.baselines import QIndexEngine
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect
from repro.net import UpdateMessage
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
QUERY_COUNT = scaled(2000)
MOVE_FRACTIONS = (0.05, 0.2, 0.5, 1.0)


def build(seed: int = 4):
    rng = random.Random(seed)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    queries = {
        10**6 + i: Rect.square(Point(rng.random(), rng.random()), 0.03)
        for i in range(QUERY_COUNT)
    }
    return rng, objects, queries


def test_qindex_vs_incremental(benchmark, record_series):
    rows = []
    for fraction in MOVE_FRACTIONS:
        rng, objects, queries = build()
        moved = rng.sample(sorted(objects), int(OBJECT_COUNT * fraction))
        moves = {oid: Point(rng.random(), rng.random()) for oid in moved}

        qindex = QIndexEngine()
        for oid, location in objects.items():
            qindex.report_object(oid, location, 0.0)
        qindex.bulk_register(queries)
        qindex.evaluate(0.0)
        started = time.perf_counter()
        for oid, location in moves.items():
            qindex.report_object(oid, location, 1.0)
        answers = qindex.evaluate(1.0)
        qindex_ms = (time.perf_counter() - started) * 1e3
        qindex_kb = qindex.answer_bytes(answers) / 1024.0

        engine = IncrementalEngine(grid_size=64)
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        engine.evaluate(0.0)
        started = time.perf_counter()
        for oid, location in moves.items():
            engine.report_object(oid, location, 1.0)
        updates = engine.evaluate(1.0)
        engine_ms = (time.perf_counter() - started) * 1e3
        engine_kb = (
            len(updates) * UpdateMessage(1, 1, 1).size_bytes / 1024.0
        )

        rows.append(
            [f"{100 * fraction:.0f}%", engine_ms, qindex_ms, engine_kb, qindex_kb]
        )
    record_series(
        "abl3_qindex",
        format_table(
            ["moved", "incr ms", "qindex ms", "incr KB", "qindex KB"], rows
        ),
    )

    # The Q-index pays a ~constant (full reprobe) cost; the incremental
    # engine's cost scales with the changed fraction — so at the lowest
    # churn the incremental engine must win on both axes.
    assert rows[0][1] < rows[0][2]
    assert rows[0][3] < rows[0][4]

    # Timed operation: one full Q-index reprobe cycle.
    __, objects, queries = build()
    qindex = QIndexEngine()
    for oid, location in objects.items():
        qindex.report_object(oid, location, 0.0)
    qindex.bulk_register(queries)
    benchmark(qindex.evaluate, 1.0)
