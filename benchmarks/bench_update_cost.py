"""ABL10: index update cost under the paper's massive update stream.

"Since a typical location-aware server receives a massive amount of
updates from moving objects and queries, it becomes a huge overhead to
handle each update individually."  Three object-index strategies:

* classic R-tree: top-down delete + insert per update;
* memo (RUM-style) R-tree: one insert per update, stale entries
  filtered at query time and garbage-collected lazily;
* the shared grid: O(1) bucket moves (what the engine actually uses).
"""

import random
import time

from conftest import scaled

from repro.geometry import Point, Rect
from repro.grid import Grid, GridIndex
from repro.rtree import RTree, RumTree
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
UPDATES = scaled(10_000)


def workload(seed: int = 41):
    rng = random.Random(seed)
    initial = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    stream = [
        (rng.randrange(OBJECT_COUNT), Point(rng.random(), rng.random()))
        for __ in range(UPDATES)
    ]
    return initial, stream


def test_update_cost(benchmark, record_series):
    initial, stream = workload()

    rtree = RTree(max_entries=16)
    for oid, location in initial.items():
        rtree.insert(oid, Rect(location.x, location.y, location.x, location.y))
    started = time.perf_counter()
    for oid, location in stream:
        rtree.update(oid, Rect(location.x, location.y, location.x, location.y))
    rtree_ms = (time.perf_counter() - started) * 1e3

    rum = RumTree(max_entries=16, gc_stale_ratio=0.5)
    for oid, location in initial.items():
        rum.upsert(oid, location)
    started = time.perf_counter()
    for oid, location in stream:
        rum.upsert(oid, location)
    rum_ms = (time.perf_counter() - started) * 1e3

    grid = GridIndex(Grid(Rect(0.0, 0.0, 1.0, 1.0), 64))
    for oid, location in initial.items():
        grid.place_object_at(oid, location)
    started = time.perf_counter()
    for oid, location in stream:
        grid.place_object_at(oid, location)
    grid_ms = (time.perf_counter() - started) * 1e3

    rows = [
        ["rtree delete+insert", rtree_ms, UPDATES / (rtree_ms / 1e3)],
        [f"rum memo (gc x{rum.gc_runs})", rum_ms, UPDATES / (rum_ms / 1e3)],
        ["shared grid", grid_ms, UPDATES / (grid_ms / 1e3)],
    ]
    record_series(
        "abl10_update_cost",
        format_table(["index", "total ms", "updates/s"], rows),
    )

    # Query-equivalence spot check after the full stream.
    final = dict(initial)
    for oid, location in stream:
        final[oid] = location
    region = Rect(0.3, 0.3, 0.5, 0.5)
    want = {oid for oid, p in final.items() if region.contains_point(p)}
    assert {e.key for e in rtree.search(region)} == want
    assert set(rum.search(region)) == want
    got_grid = {
        oid
        for oid in grid.objects_overlapping(region)
        if region.contains_point(final[oid])
    }
    assert got_grid == want

    # The robust finding — and the paper's actual design argument — is
    # that the O(1) grid dominates any R-tree maintenance discipline by
    # orders of magnitude.  (Between the two R-tree strategies the memo
    # only wins when deletes need a top-down search, as on disk; this
    # in-memory R-tree keeps a direct leaf handle per key, so classic
    # delete+insert is already cheap.  The table reports both honestly.)
    assert grid_ms < rtree_ms / 10
    assert grid_ms < rum_ms / 10

    benchmark(grid.place_object_at, 0, Point(0.42, 0.42))
