"""ABL4: out-of-sync recovery — committed-answer diff vs full retransmission.

Section 3.3's motivation: "Consider a moving query with hundreds of
objects in its result that gets disconnected for a short period of time.
Although the query has missed a couple of points ... the server would
send the complete answer."  This ablation sweeps the outage length and
compares the bytes each recovery strategy ships.
"""

import random

from conftest import scaled

from repro.core import Client, LocationAwareServer
from repro.geometry import Point, Rect
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
REGION = Rect(0.25, 0.25, 0.75, 0.75)  # a large answer (~25% of objects)
MOVES_PER_CYCLE = OBJECT_COUNT // 50
OUTAGE_CYCLES = (1, 2, 5, 10)


def build(seed: int):
    rng = random.Random(seed)
    server = LocationAwareServer(grid_size=64)
    client = Client(client_id=1, server=server)
    server.register_range_query(1, 500, REGION, 0.0)
    client.track_query(500)
    for oid in range(OBJECT_COUNT):
        server.receive_object_report(oid, Point(rng.random(), rng.random()), 0.0)
    server.evaluate_cycle(0.0)
    client.pump()
    client.send_commit(500)
    return rng, server, client


def run_outage(cycles: int, naive: bool) -> tuple[int, int]:
    rng, server, client = build(seed=17)
    client.disconnect()
    for step in range(1, cycles + 1):
        for oid in rng.sample(range(OBJECT_COUNT), MOVES_PER_CYCLE):
            server.receive_object_report(
                oid, Point(rng.random(), rng.random()), float(step)
            )
        server.evaluate_cycle(float(step))
    answer_size = len(server.engine.answer_of(500))
    if naive:
        bytes_sent = server.recover_naive(1)
        client.pump()
    else:
        before = server.stats.delivered_bytes
        client.reconnect()
        bytes_sent = server.stats.delivered_bytes - before
        assert client.answer_of(500) == server.engine.answer_of(500)
    return bytes_sent, answer_size


def test_outofsync_recovery(benchmark, record_series):
    rows = []
    for cycles in OUTAGE_CYCLES:
        diff_bytes, answer_size = run_outage(cycles, naive=False)
        naive_bytes, __ = run_outage(cycles, naive=True)
        rows.append(
            [cycles, answer_size, diff_bytes, naive_bytes,
             diff_bytes / naive_bytes if naive_bytes else 0.0]
        )
    record_series(
        "abl4_outofsync_recovery",
        format_table(
            ["outage cycles", "answer size", "diff bytes", "naive bytes",
             "diff/naive"],
            rows,
        ),
    )

    # Short outages: the diff must be far cheaper than a full resend.
    assert rows[0][2] < rows[0][3] / 4
    # The diff cost grows with the outage; naive cost tracks answer size.
    diffs = [row[2] for row in rows]
    assert diffs == sorted(diffs)

    benchmark(run_outage, 2, False)
