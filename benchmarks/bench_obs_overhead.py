"""Telemetry overhead gate: instrumented engines vs no-op registry/tracer.

The observability plane promises an ~O(1) hot path cheap enough to leave
on in production runs — metrics, tracing, freshness stamping AND the
armed flight recorder.  This benchmark holds every bulk pipeline to
that: the same bulk workload (the 100K-object / 10K-query batch from
``bench_bulk_pipeline``) is evaluated twice per pipeline — once with a
live :class:`~repro.obs.MetricsRegistry` + :class:`~repro.obs.Tracer`
+ a :class:`~repro.obs.FlightRecorder` armed at its default ring size,
once with ``NULL_REGISTRY`` + ``NULL_TRACER`` (which also compiles the
freshness tracker and recorder down to their no-op twins) — and at full
scale the instrumented throughput must stay within 5% of the no-op
baseline for **each** of cell-batched, parallel and columnar.

Runs two ways:

* under pytest (with pytest-benchmark)::

      PYTHONPATH=src pytest benchmarks/bench_obs_overhead.py --benchmark-only

* as a plain script (used by CI's smoke job)::

      PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick

``--quick`` (or REPRO_BENCH_SCALE<1 under pytest) shrinks the workload
and drops the <5% assertion: at small scale a round is a few
milliseconds and the gate would be all jitter.  Both modes write
``BENCH_obs_overhead.json`` at the repo root via the shared reporter,
with the instrumented cell-batched engine's metrics snapshot embedded
and one ``overhead_fraction`` per gated pipeline.
"""

from __future__ import annotations

import gc
import statistics
import time

from bench_bulk_pipeline import (
    FULL_OBJECTS,
    FULL_QUERIES,
    GRID_SIZE,
    QUICK_OBJECTS,
    QUICK_QUERIES,
    SEED,
    buffer_round,
    build_engine,
    build_workload,
)
from conftest import scaled, write_bench_json

from repro.obs import (
    DEFAULT_RING_SIZE,
    NULL_REGISTRY,
    NULL_TRACER,
    FlightRecorder,
)
from repro.parallel import ParallelConfig
from repro.stats import format_table

#: Maximum tolerated throughput loss with telemetry on, at full scale.
MAX_OVERHEAD_FRACTION = 0.05

#: Every bulk pipeline the gate covers (per-object is the reference
#: path, not a production pipeline — it is not held to the budget).
GATED_PIPELINES = ("cell-batched", "parallel", "columnar")

#: Interleaved rounds per arm.  Move deltas cycle through the shared
#: workload's rounds, so both arms drift through identical trajectories.
OVERHEAD_ROUNDS = 6


def pipeline_kwargs(pipeline: str) -> dict:
    """Engine kwargs for one gated pipeline.  The parallel arm mirrors
    the chaos harness: thread backend, tiny dispatch threshold — the
    overhead question is per-message bookkeeping cost, which the thread
    pool exercises without process-spawn noise on small hosts."""
    if pipeline == "parallel":
        return {
            "parallelism": ParallelConfig(
                workers=2, backend="thread", min_batch=1
            )
        }
    return {}


def timed_evaluation(engine, moves, now: float):
    """Buffer one move round and time its bulk evaluation (GC parked)."""
    buffer_round(engine, moves, now)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        updates = engine.evaluate(now)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed, frozenset((u.qid, u.oid, u.sign) for u in updates)


def run_overhead_comparison(
    pipeline: str, n_objects: int, n_queries: int, assert_overhead: bool
):
    initial, queries, move_rounds = build_workload(n_objects, n_queries)

    # Two engines over the identical workload and pipeline: "on" keeps
    # the defaults every caller gets (private registry, live tracer,
    # live freshness tracker) plus a flight recorder armed at its
    # default ring size; "off" compiles the whole plane out via the
    # null objects.  The arms are interleaved round by round,
    # alternating which evaluates first within a round — a sequential
    # A/B run at this scale measures machine drift (allocator state,
    # frequency scaling over minutes) more than it measures telemetry,
    # and the drift dwarfs a single-digit-percent effect.
    kwargs = pipeline_kwargs(pipeline)
    on_engine = build_engine(
        pipeline,
        initial,
        queries,
        recorder=FlightRecorder(capacity=DEFAULT_RING_SIZE),
        **kwargs,
    )
    off_engine = build_engine(
        pipeline, initial, queries, NULL_REGISTRY, NULL_TRACER, **kwargs
    )
    arms = {"on": on_engine, "off": off_engine}
    times: dict[str, list[float]] = {"on": [], "off": []}
    try:
        now = 0.0
        for round_no in range(OVERHEAD_ROUNDS):
            moves = move_rounds[round_no % len(move_rounds)]
            now += 1.0
            order = ("on", "off") if round_no % 2 == 0 else ("off", "on")
            results = {}
            for key in order:
                elapsed, update_keys = timed_evaluation(
                    arms[key], moves, now
                )
                times[key].append(elapsed)
                results[key] = update_keys
            # Telemetry must be purely observational.
            assert results["on"] == results["off"], (
                f"telemetry changed the {pipeline} update set in round "
                f"{round_no}"
            )
    finally:
        on_engine.close()
        off_engine.close()
    on_times, off_times = times["on"], times["off"]

    on_round = statistics.median(on_times)
    off_round = statistics.median(off_times)
    on_rps = n_objects / on_round
    off_rps = n_objects / off_round
    overhead = 1.0 - on_rps / off_rps  # positive = telemetry is slower

    if assert_overhead:
        assert overhead < MAX_OVERHEAD_FRACTION, (
            f"telemetry costs {overhead:.1%} throughput on the "
            f"{pipeline} pipeline at {n_objects} objects / {n_queries} "
            f"queries (budget {MAX_OVERHEAD_FRACTION:.0%})"
        )

    return {
        "pipeline": pipeline,
        "overhead": overhead,
        "on_times": on_times,
        "off_times": off_times,
        "on_rps": on_rps,
        "off_rps": off_rps,
        "on_round": on_round,
        "off_round": off_round,
        "registry": on_engine.registry,
        "trace_events": len(on_engine.tracer.events),
        "flight_events": len(on_engine.recorder.events()),
    }


def run_all_pipelines(n_objects: int, n_queries: int, assert_overhead: bool):
    """Gate every bulk pipeline; return per-pipeline results + a table."""
    results = [
        run_overhead_comparison(
            pipeline, n_objects, n_queries, assert_overhead
        )
        for pipeline in GATED_PIPELINES
    ]
    rows = []
    for result in results:
        rows.append(
            [
                f"{result['pipeline']} off",
                result["off_round"] * 1e3,
                result["off_rps"],
                0.0,
            ]
        )
        rows.append(
            [
                f"{result['pipeline']} on",
                result["on_round"] * 1e3,
                result["on_rps"],
                result["overhead"],
            ]
        )
    table = format_table(
        ["telemetry", "median round ms", "reports/s", "overhead"], rows
    )
    return results, table


def test_obs_overhead(benchmark, record_series, request):
    n_objects = scaled(FULL_OBJECTS)
    n_queries = scaled(FULL_QUERIES)
    full_scale = n_objects >= FULL_OBJECTS and n_queries >= FULL_QUERIES
    results, table = run_all_pipelines(
        n_objects, n_queries, assert_overhead=full_scale
    )

    record_series("obs_overhead", table)
    request.node.bench_registry = results[0]["registry"]

    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["objects"] = n_objects
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["grid_size"] = GRID_SIZE
    for result in results:
        benchmark.extra_info[
            f"overhead_fraction_{result['pipeline']}"
        ] = round(result["overhead"], 4)

    # The timed operation is one instrumented cell-batched bulk
    # evaluation (recorder armed); the comparison above already
    # established the off-baselines for every pipeline.
    initial, queries, move_rounds = build_workload(n_objects, n_queries)
    engine = build_engine(
        "cell-batched",
        initial,
        queries,
        recorder=FlightRecorder(capacity=DEFAULT_RING_SIZE),
    )
    clock = [0.0]

    def setup():
        clock[0] += 1.0
        buffer_round(engine, move_rounds[0], clock[0])
        return (clock[0],), {}

    benchmark.pedantic(engine.evaluate, setup=setup, rounds=3)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    n_objects = QUICK_OBJECTS if quick else FULL_OBJECTS
    n_queries = QUICK_QUERIES if quick else FULL_QUERIES
    label = "quick" if quick else "full"
    print(
        f"telemetry overhead benchmark ({label}): "
        f"{n_objects} objects, {n_queries} queries, "
        f"{OVERHEAD_ROUNDS} interleaved rounds, "
        f"pipelines={', '.join(GATED_PIPELINES)}, "
        f"flight recorder armed (ring={DEFAULT_RING_SIZE})"
    )
    results, table = run_all_pipelines(
        n_objects, n_queries, assert_overhead=not quick
    )
    print()
    print(table)
    primary = results[0]  # cell-batched carries the timing series
    path = write_bench_json(
        "obs_overhead",
        primary["on_times"],
        seed=SEED,
        params={
            "mode": label,
            "objects": n_objects,
            "queries": n_queries,
            "grid_size": GRID_SIZE,
            "rounds": OVERHEAD_ROUNDS,
            "budget_fraction": MAX_OVERHEAD_FRACTION,
            "pipelines": list(GATED_PIPELINES),
            "flight_ring_size": DEFAULT_RING_SIZE,
        },
        extra={
            "reports_per_sec_on": primary["on_rps"],
            "reports_per_sec_off": primary["off_rps"],
            "overhead_fraction": primary["overhead"],
            "overhead_fractions": {
                r["pipeline"]: r["overhead"] for r in results
            },
            "trace_events": primary["trace_events"],
            "flight_events": primary["flight_events"],
        },
        registry=primary["registry"],
    )
    print(f"\nwrote {path}")
    for result in results:
        print(
            f"telemetry overhead [{result['pipeline']}]: "
            f"{result['overhead']:.2%} "
            f"(budget {MAX_OVERHEAD_FRACTION:.0%})"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
