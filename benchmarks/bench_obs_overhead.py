"""Telemetry overhead gate: instrumented engine vs no-op registry/tracer.

The telemetry subsystem promises an ~O(1) hot path cheap enough to leave
on in production runs.  This benchmark holds it to that: the same
cell-batched bulk workload (the 100K-object / 10K-query batch from
``bench_bulk_pipeline``) is evaluated twice — once with a live
:class:`~repro.obs.MetricsRegistry` + :class:`~repro.obs.Tracer`, once
with ``NULL_REGISTRY`` + ``NULL_TRACER`` — and at full scale the
instrumented throughput must stay within 5% of the no-op baseline.

Runs two ways:

* under pytest (with pytest-benchmark)::

      PYTHONPATH=src pytest benchmarks/bench_obs_overhead.py --benchmark-only

* as a plain script (used by CI's smoke job)::

      PYTHONPATH=src python benchmarks/bench_obs_overhead.py --quick

``--quick`` (or REPRO_BENCH_SCALE<1 under pytest) shrinks the workload
and drops the <5% assertion: at small scale a round is a few
milliseconds and the gate would be all jitter.  Both modes write
``BENCH_obs_overhead.json`` at the repo root via the shared reporter,
with the instrumented engine's metrics snapshot embedded.
"""

from __future__ import annotations

import gc
import statistics
import time

from bench_bulk_pipeline import (
    FULL_OBJECTS,
    FULL_QUERIES,
    GRID_SIZE,
    QUICK_OBJECTS,
    QUICK_QUERIES,
    SEED,
    buffer_round,
    build_engine,
    build_workload,
)
from conftest import scaled, write_bench_json

from repro.obs import NULL_REGISTRY, NULL_TRACER
from repro.stats import format_table

#: Maximum tolerated throughput loss with telemetry on, at full scale.
MAX_OVERHEAD_FRACTION = 0.05

#: Interleaved rounds per arm.  Move deltas cycle through the shared
#: workload's rounds, so both arms drift through identical trajectories.
OVERHEAD_ROUNDS = 6


def timed_evaluation(engine, moves, now: float):
    """Buffer one move round and time its bulk evaluation (GC parked)."""
    buffer_round(engine, moves, now)
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        updates = engine.evaluate(now)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return elapsed, frozenset((u.qid, u.oid, u.sign) for u in updates)


def run_overhead_comparison(
    n_objects: int, n_queries: int, assert_overhead: bool
):
    initial, queries, move_rounds = build_workload(n_objects, n_queries)

    # Two engines over the identical workload and pipeline: "on" keeps
    # the defaults every caller gets (private registry, live tracer),
    # "off" compiles telemetry out via the null objects.  The arms are
    # interleaved round by round, alternating which evaluates first
    # within a round — a sequential A/B run at this scale measures
    # machine drift (allocator state, frequency scaling over minutes)
    # more than it measures telemetry, and the drift dwarfs a
    # single-digit-percent effect.
    on_engine = build_engine("cell-batched", initial, queries)
    off_engine = build_engine(
        "cell-batched", initial, queries, NULL_REGISTRY, NULL_TRACER
    )
    arms = {"on": on_engine, "off": off_engine}
    times: dict[str, list[float]] = {"on": [], "off": []}
    now = 0.0
    for round_no in range(OVERHEAD_ROUNDS):
        moves = move_rounds[round_no % len(move_rounds)]
        now += 1.0
        order = ("on", "off") if round_no % 2 == 0 else ("off", "on")
        results = {}
        for key in order:
            elapsed, update_keys = timed_evaluation(arms[key], moves, now)
            times[key].append(elapsed)
            results[key] = update_keys
        # Telemetry must be purely observational.
        assert results["on"] == results["off"], (
            f"telemetry changed the update set in round {round_no}"
        )
    on_times, off_times = times["on"], times["off"]

    on_round = statistics.median(on_times)
    off_round = statistics.median(off_times)
    on_rps = n_objects / on_round
    off_rps = n_objects / off_round
    overhead = 1.0 - on_rps / off_rps  # positive = telemetry is slower

    table = format_table(
        ["telemetry", "median round ms", "reports/s", "overhead"],
        [
            ["off (null)", off_round * 1e3, off_rps, 0.0],
            ["on (default)", on_round * 1e3, on_rps, overhead],
        ],
    )

    if assert_overhead:
        assert overhead < MAX_OVERHEAD_FRACTION, (
            f"telemetry costs {overhead:.1%} throughput at {n_objects} "
            f"objects / {n_queries} queries (budget "
            f"{MAX_OVERHEAD_FRACTION:.0%})"
        )

    return {
        "table": table,
        "overhead": overhead,
        "on_times": on_times,
        "off_times": off_times,
        "on_rps": on_rps,
        "off_rps": off_rps,
        "registry": on_engine.registry,
        "trace_events": len(on_engine.tracer.events),
    }


def test_obs_overhead(benchmark, record_series, request):
    n_objects = scaled(FULL_OBJECTS)
    n_queries = scaled(FULL_QUERIES)
    full_scale = n_objects >= FULL_OBJECTS and n_queries >= FULL_QUERIES
    result = run_overhead_comparison(
        n_objects, n_queries, assert_overhead=full_scale
    )

    record_series("obs_overhead", result["table"])
    request.node.bench_registry = result["registry"]

    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["objects"] = n_objects
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["grid_size"] = GRID_SIZE
    benchmark.extra_info["overhead_fraction"] = round(result["overhead"], 4)

    # The timed operation is one instrumented bulk evaluation; the
    # comparison above already established the off-baseline.
    initial, queries, move_rounds = build_workload(n_objects, n_queries)
    from bench_bulk_pipeline import build_engine, buffer_round

    engine = build_engine("cell-batched", initial, queries)
    clock = [0.0]

    def setup():
        clock[0] += 1.0
        buffer_round(engine, move_rounds[0], clock[0])
        return (clock[0],), {}

    benchmark.pedantic(engine.evaluate, setup=setup, rounds=3)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    n_objects = QUICK_OBJECTS if quick else FULL_OBJECTS
    n_queries = QUICK_QUERIES if quick else FULL_QUERIES
    label = "quick" if quick else "full"
    print(
        f"telemetry overhead benchmark ({label}): "
        f"{n_objects} objects, {n_queries} queries, {OVERHEAD_ROUNDS} interleaved rounds"
    )
    result = run_overhead_comparison(
        n_objects, n_queries, assert_overhead=not quick
    )
    print()
    print(result["table"])
    path = write_bench_json(
        "obs_overhead",
        result["on_times"],
        seed=SEED,
        params={
            "mode": label,
            "objects": n_objects,
            "queries": n_queries,
            "grid_size": GRID_SIZE,
            "rounds": OVERHEAD_ROUNDS,
            "budget_fraction": MAX_OVERHEAD_FRACTION,
        },
        extra={
            "reports_per_sec_on": result["on_rps"],
            "reports_per_sec_off": result["off_rps"],
            "overhead_fraction": result["overhead"],
            "trace_events": result["trace_events"],
        },
        registry=result["registry"],
    )
    print(f"\nwrote {path}")
    print(
        f"telemetry overhead: {result['overhead']:.2%} "
        f"(budget {MAX_OVERHEAD_FRACTION:.0%})"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
