"""ABL9: downstream congestion — what fits through a limited channel?

Paper motivation #4: "Sending the whole answer each time consumes the
network bandwidth and results in network congestion at the server side."
Under a fixed per-cycle downlink budget, this ablation measures what
fraction of each server's output actually reaches the client: the
incremental stream (17 B per change) versus complete-answer
retransmission (16 + 8·n B per query, every cycle).
"""

import random

from conftest import scaled

from repro.core import IncrementalEngine
from repro.geometry import Point, Rect
from repro.net import FullAnswerMessage, NetworkStats, ThrottledLink, UpdateMessage
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
QUERY_COUNT = scaled(1000)
MOVE_FRACTION = 0.2
CYCLES = 5
BUDGETS_KB = (4, 16, 32, 64, 256)


def run_workload():
    """One shared workload: per-cycle update stream + complete answers."""
    rng = random.Random(23)
    engine = IncrementalEngine(grid_size=64)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    for oid, location in objects.items():
        engine.report_object(oid, location, 0.0)
    for i in range(QUERY_COUNT):
        engine.register_range_query(
            10**6 + i, Rect.square(Point(rng.random(), rng.random()), 0.04)
        )
    engine.evaluate(0.0)
    cycles = []
    for step in range(1, CYCLES + 1):
        for oid in rng.sample(sorted(objects), int(OBJECT_COUNT * MOVE_FRACTION)):
            objects[oid] = Point(rng.random(), rng.random())
            engine.report_object(oid, objects[oid], float(step))
        updates = engine.evaluate(float(step))
        completes = [
            FullAnswerMessage(qid, frozenset(query.answer))
            for qid, query in engine.queries.items()
        ]
        cycles.append((updates, completes))
    return cycles


def delivered_fraction(messages_per_cycle, budget_bytes: int) -> float:
    """Fraction of bytes that fit through a throttled link per cycle."""
    stats = NetworkStats()
    link = ThrottledLink(1, budget_bytes, stats)
    for messages in messages_per_cycle:
        link.new_cycle()
        for message in messages:
            link.deliver(message)
    total = stats.delivered_bytes + stats.dropped_bytes
    return stats.delivered_bytes / total if total else 1.0


def test_congestion(benchmark, record_series):
    cycles = run_workload()
    incremental_stream = [
        [UpdateMessage(u.qid, u.oid, u.sign) for u in updates]
        for updates, __ in cycles
    ]
    complete_stream = [completes for __, completes in cycles]

    rows = []
    for budget_kb in BUDGETS_KB:
        budget = budget_kb * 1024
        inc_fraction = delivered_fraction(incremental_stream, budget)
        full_fraction = delivered_fraction(complete_stream, budget)
        rows.append([budget_kb, inc_fraction, full_fraction])
    record_series(
        "abl9_congestion",
        format_table(
            ["budget KB/cycle", "incremental delivered", "complete delivered"],
            rows,
        ),
    )

    # At every budget the incremental stream fits at least as well, and
    # at some constrained budget it fits fully while complete does not.
    for __, inc_fraction, full_fraction in rows:
        assert inc_fraction >= full_fraction - 1e-9
    assert any(
        inc_fraction > 0.999 and full_fraction < 0.9
        for __, inc_fraction, full_fraction in rows
    )

    benchmark(delivered_fraction, incremental_stream, 16 * 1024)
