"""Shared helpers for the benchmark harness.

Every benchmark prints (and archives under ``benchmarks/results/``) the
series the corresponding paper figure plots, then hands one
representative operation to pytest-benchmark for timing.  Scale with::

    REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only

``REPRO_BENCH_SCALE=50`` approximates the paper's 100K objects + 100K
queries (not run by default: pure-Python minutes per sweep point).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = Path(__file__).parent / "results"


def scaled(base: int) -> int:
    """A population size scaled by REPRO_BENCH_SCALE."""
    return max(1, int(base * SCALE))


@pytest.fixture
def record_series():
    """Print a named result table and archive it under results/."""

    def _record(name: str, table: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        header = f"== {name} (scale={SCALE}) =="
        body = f"{header}\n{table}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(body)
        print(f"\n{body}")

    return _record
