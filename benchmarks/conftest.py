"""Shared helpers for the benchmark harness.

Every benchmark prints (and archives under ``benchmarks/results/``) the
series the corresponding paper figure plots, then hands one
representative operation to pytest-benchmark for timing.  Scale with::

    REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only

``REPRO_BENCH_SCALE=50`` approximates the paper's 100K objects + 100K
queries (not run by default: pure-Python minutes per sweep point).
"""

from __future__ import annotations

import json
import os
import platform
import re
import statistics
import subprocess
from functools import lru_cache
from pathlib import Path

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parent.parent


@lru_cache(maxsize=1)
def environment_info() -> dict:
    """Provenance stamped into every ``BENCH_*.json``: the commit, the
    interpreter, and the core count — without these a timing number
    cannot be compared across runs."""
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = None
    return {
        "git_sha": git_sha,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def scaled(base: int) -> int:
    """A population size scaled by REPRO_BENCH_SCALE."""
    return max(1, int(base * SCALE))


@pytest.fixture
def record_series():
    """Print a named result table and archive it under results/."""

    def _record(name: str, table: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        header = f"== {name} (scale={SCALE}) =="
        body = f"{header}\n{table}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(body)
        print(f"\n{body}")

    return _record


def _registry_snapshot(registry: object = None) -> dict:
    """Snapshot ``registry`` (default: the process-wide default) as a dict."""
    from repro.obs import default_registry

    if registry is None:
        registry = default_registry()
    return registry.to_dict()


def percentile(sorted_data: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_data:
        return 0.0
    rank = round(fraction * (len(sorted_data) - 1))
    return sorted_data[min(len(sorted_data) - 1, max(0, rank))]


def write_bench_json(
    name: str,
    timings: list[float],
    *,
    seed: object = None,
    params: dict[str, object] | None = None,
    extra: dict[str, object] | None = None,
    registry: object = None,
) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root from raw round timings.

    One machine-readable summary per benchmark — ops/sec, p50/p95
    latency, the workload seed, and the workload parameters — so runs
    can be diffed across commits without scraping console tables.
    Every summary also embeds a ``metrics`` snapshot: ``registry`` when
    given (conventionally the registry of the engine under test),
    otherwise the process-wide default registry, so the counters behind
    a number travel with it — plus an ``environment`` block
    (:func:`environment_info`) recording the git SHA, Python version
    and core count the run came from.
    """
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", name)
    data = sorted(timings)
    mean = statistics.fmean(data) if data else 0.0
    payload: dict[str, object] = {
        "name": name,
        "scale": SCALE,
        "seed": seed,
        "params": params or {},
        "rounds": len(data),
        "ops_per_sec": (1.0 / mean) if mean > 0 else None,
        "latency_seconds": {
            "mean": mean,
            "p50": percentile(data, 0.50),
            "p95": percentile(data, 0.95),
            "min": data[0] if data else 0.0,
            "max": data[-1] if data else 0.0,
        },
    }
    if extra:
        payload.update(extra)
    payload["environment"] = environment_info()
    payload["metrics"] = _registry_snapshot(registry)
    path = REPO_ROOT / f"BENCH_{safe}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(autouse=True)
def bench_json_report(request):
    """Emit ``BENCH_<test>.json`` for every pytest-benchmark test.

    Runs after the test body: if the test used the ``benchmark``
    fixture and timing data exists (i.e. benchmarking was not
    disabled), the raw per-round timings plus ``benchmark.extra_info``
    (conventionally carrying ``seed`` and workload parameters) are
    summarised to the repo root via :func:`write_bench_json`.
    """
    yield
    # By teardown time the benchmark fixture may already be finalized,
    # so request.getfixturevalue would refuse; the materialized fixture
    # objects survive on the node's funcargs.
    bench = getattr(request.node, "funcargs", {}).get("benchmark")
    if bench is None:
        return
    meta = getattr(bench, "stats", None)
    stats = getattr(meta, "stats", None)
    data = list(getattr(stats, "data", None) or [])
    if not data:
        return  # --benchmark-disable, or the test never called benchmark()
    extra_info = dict(getattr(bench, "extra_info", {}) or {})
    seed = extra_info.pop("seed", None)
    name = request.node.name
    if name.startswith("test_"):
        name = name[len("test_") :]
    # Tests that instrument a specific component can expose its registry
    # as ``request.node.bench_registry``; otherwise the default registry
    # snapshot is embedded.
    registry = getattr(request.node, "bench_registry", None)
    write_bench_json(name, data, seed=seed, params=extra_info, registry=registry)
