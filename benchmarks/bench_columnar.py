"""Columnar SoA evaluation core vs the serial cell-batched pipeline.

``pipeline="columnar"`` replaces the cell-batched pipeline's per-pair
Python membership loop with batch array kernels over struct-of-arrays
mirrors (see ``repro/columnar/``).  This benchmark drives both pipelines
through the same buffered move rounds and checks two things:

* **golden equivalence** — the columnar pipeline's ordered update
  stream must be byte-identical to the cell-batched stream, every
  round, under the numpy backend *and* the pure-Python fallback;
* **speedup** — at full scale (100K objects / 10K queries) with numpy
  installed, the columnar pipeline must deliver >= 1.5x the
  cell-batched report throughput end-to-end, >= 1.3x on the
  report-ingest phase alone (the batch ingest kernel vs the serial
  grouping loop, read from each engine's
  ``engine_ingest_seconds_total`` counter), *and* >= 1.3x on the
  delta-emission phase (the :class:`UpdateBatch` column splice vs an
  ``emit_mode="materialized"`` twin of the same columnar engine that
  eagerly constructs ``Update`` objects).  The pure-Python fallback
  is *recorded* (same workload, smaller populations) but never gated:
  its point is the stdlib-only guarantee, not speed.

Per-round phase seconds (ingest on both engines; plan/join/emit on the
columnar evaluator) are sampled from the engines' own counters and
written into the JSON summary, so regressions can be localised to a
phase without re-profiling.

Methodology: the two engines are measured **paired and interleaved** —
round k of the serial engine, then round k of the columnar engine, then
their streams are compared and dropped.  A per-round ratio is taken and
the median ratio is the verdict.  Sequential whole-run timing is *not*
comparable on shared hosts: minutes-apart measurements see different
machine load, and retaining both full update streams (~10^6 updates per
round at full scale) distorts allocator behaviour for whichever engine
runs second.  The first round is a warm-up (the columnar evaluator's
candidate caches are cold) and is excluded from the ratio.

Runs two ways:

* under pytest (with pytest-benchmark)::

      PYTHONPATH=src pytest benchmarks/bench_columnar.py --benchmark-only

* as a plain script (used by CI's smoke job)::

      PYTHONPATH=src python benchmarks/bench_columnar.py --quick

``--quick`` shrinks the workload and checks equivalence only.  Both
modes write a ``BENCH_columnar.json`` summary at the repo root.
"""

from __future__ import annotations

import gc
import statistics
import time

from bench_bulk_pipeline import (
    GRID_SIZE,
    SEED,
    buffer_round,
    build_workload,
)
from conftest import scaled, write_bench_json

from repro.columnar import numpy_available
from repro.core.engine import IncrementalEngine
from repro.obs import MetricsRegistry
from repro.stats import format_table

FULL_OBJECTS = 100_000
FULL_QUERIES = 10_000
QUICK_OBJECTS = 4_000
QUICK_QUERIES = 400
#: Timed paired rounds (after one untimed warm-up round).
TIMED_ROUNDS = 5
SPEEDUP_TARGET = 1.5
#: Paired report-ingest phase speedup gate (batch ingest kernel vs the
#: serial grouping loop), same applicability rules as SPEEDUP_TARGET.
INGEST_SPEEDUP_TARGET = 1.3
#: Paired delta-emission phase speedup gate (UpdateBatch column splice
#: vs the materialized-emission twin), same applicability rules.
EMIT_SPEEDUP_TARGET = 1.3
#: Populations for the recorded-not-gated pure-Python fallback leg.
FALLBACK_OBJECTS = 4_000
FALLBACK_QUERIES = 400


def build_engines(n_objects: int, n_queries: int, backend: str):
    """A (cell-batched, columnar, materialized-emit columnar) engine
    trio over identical workloads.  The third engine differs from the
    second only in ``emit_mode``: it eagerly constructs ``Update``
    objects, baselining the batch column splice."""
    initial, queries, move_rounds = build_workload(n_objects, n_queries)
    engines = []
    specs = (
        ("cell-batched", {}),
        ("columnar", {"columnar_backend": backend}),
        (
            "columnar",
            {"columnar_backend": backend, "emit_mode": "materialized"},
        ),
    )
    for pipeline, kwargs in specs:
        engine = IncrementalEngine(
            grid_size=GRID_SIZE,
            prediction_horizon=60.0,
            pipeline=pipeline,
            registry=MetricsRegistry(),
            **kwargs,
        )
        for oid, location in initial:
            engine.report_object(oid, location, 0.0)
        for spec in queries:
            if spec[0] == "range":
                engine.register_range_query(spec[1], spec[2])
            elif spec[0] == "knn":
                engine.register_knn_query(spec[1], spec[2], spec[3])
            else:
                engine.register_predictive_query(spec[1], spec[2], spec[3])
        engine.evaluate(0.0)
        engines.append(engine)
    return engines[0], engines[1], engines[2], move_rounds


#: Phase counters sampled per round: (key, metric name, labels).
_PHASE_COUNTERS = (
    ("ingest", "engine_ingest_seconds_total", None),
    ("plan", "engine_columnar_phase_seconds_total", {"phase": "plan"}),
    ("join", "engine_columnar_phase_seconds_total", {"phase": "join"}),
    ("emit", "engine_columnar_phase_seconds_total", {"phase": "emit"}),
)


def _phase_snapshot(engine) -> dict[str, float]:
    """Current cumulative phase-seconds counters for one engine.

    Counters an engine never touches (the cell-batched engine has no
    plan/join/emit phases) read as 0.0, so deltas stay well-defined.
    """
    registry = engine.registry
    return {
        key: registry.counter(name, labels=labels).value
        for key, name, labels in _PHASE_COUNTERS
    }


#: Per-round evaluation orders: a balanced rotation so every engine
#: occupies every position, cancelling monotonic load drift within a
#: round the way the old two-engine alternation did.
_EVAL_ORDERS = (
    ("serial", "columnar", "materialized"),
    ("columnar", "materialized", "serial"),
    ("materialized", "serial", "columnar"),
)


def _updates_emitted(engine) -> float:
    return engine.registry.counter("engine_updates_emitted_total").value


def run_paired(serial, columnar, materialized, move_rounds, timed_rounds: int):
    """Interleaved paired rounds; returns per-round (serial s, columnar s)
    plus per-round phase seconds from each engine's counters.

    Every round — including the untimed warm-up — asserts byte-identical
    ordered update streams across all three engines, then discards them
    so no engine's later rounds are measured under another's garbage.

    Phase seconds come from the engines' own counters
    (``engine_ingest_seconds_total`` on both pipelines,
    ``engine_columnar_phase_seconds_total{phase=...}`` on the two
    columnar engines), sampled before and after each round — the same
    paired, per-round deltas as the wall clock, so the phase ratios
    share the wall-clock ratio's robustness to drifting machine load.
    ``emit_updates`` counts ``engine_updates_emitted_total`` deltas on
    the batch columnar engine, giving an emission throughput per round.

    The engines rotate through :data:`_EVAL_ORDERS` round to round:
    within a round they run seconds apart, so a monotonic load drift
    would otherwise consistently tax whichever engine always ran
    last.  Rotation flips the bias round to round and the median
    absorbs it.
    """
    engines = {
        "serial": serial,
        "columnar": columnar,
        "materialized": materialized,
    }
    pairs: list[tuple[float, float]] = []
    phases: dict[str, list[float]] = {
        "serial_ingest": [],
        "columnar_ingest": [],
        "plan": [],
        "join": [],
        "emit": [],
        "materialized_emit": [],
        "emit_updates": [],
    }
    now = 0.0
    for round_no in range(timed_rounds + 1):
        now += 1.0
        moves = move_rounds[round_no % len(move_rounds)]
        for engine in engines.values():
            buffer_round(engine, moves, now)
        gc.collect()
        gc.disable()
        try:
            before = {
                name: _phase_snapshot(engine)
                for name, engine in engines.items()
            }
            updates_before = _updates_emitted(columnar)
            seconds: dict[str, float] = {}
            streams: dict[str, object] = {}
            for name in _EVAL_ORDERS[round_no % len(_EVAL_ORDERS)]:
                started = time.perf_counter()
                streams[name] = engines[name].evaluate(now)
                seconds[name] = time.perf_counter() - started
            after = {
                name: _phase_snapshot(engine)
                for name, engine in engines.items()
            }
            updates_after = _updates_emitted(columnar)
        finally:
            gc.enable()
        want = [(u.qid, u.oid, u.sign) for u in streams["serial"]]
        for name in ("columnar", "materialized"):
            got = [(u.qid, u.oid, u.sign) for u in streams[name]]
            assert got == want, (
                f"{name} stream diverged from cell-batched "
                f"in round {round_no}"
            )
            del got
        del streams, want
        if round_no > 0:  # round 0 is the cache warm-up
            pairs.append((seconds["serial"], seconds["columnar"]))
            phases["serial_ingest"].append(
                after["serial"]["ingest"] - before["serial"]["ingest"]
            )
            phases["columnar_ingest"].append(
                after["columnar"]["ingest"] - before["columnar"]["ingest"]
            )
            for key in ("plan", "join", "emit"):
                phases[key].append(
                    after["columnar"][key] - before["columnar"][key]
                )
            phases["materialized_emit"].append(
                after["materialized"]["emit"] - before["materialized"]["emit"]
            )
            phases["emit_updates"].append(updates_after - updates_before)
    return pairs, phases


def run_comparison(
    n_objects: int,
    n_queries: int,
    backend: str,
    timed_rounds: int,
    assert_speedup: bool,
):
    serial, columnar, materialized, move_rounds = build_engines(
        n_objects, n_queries, backend
    )
    pairs, phases = run_paired(
        serial, columnar, materialized, move_rounds, timed_rounds
    )
    ratios = [s / c for s, c in pairs]
    speedup = statistics.median(ratios)
    serial_times = [s for s, _ in pairs]
    columnar_times = [c for _, c in pairs]
    columnar_round = statistics.median(columnar_times)
    serial_round = statistics.median(serial_times)

    # Paired ingest-phase ratio: serial grouping loop vs batch kernel.
    ingest_ratios = [
        s / c if c > 0.0 else 1.0
        for s, c in zip(phases["serial_ingest"], phases["columnar_ingest"])
    ]
    ingest_speedup = statistics.median(ingest_ratios)
    # Paired emit-phase ratio: materialized Update construction vs the
    # UpdateBatch column splice, on otherwise-identical engines.
    emit_ratios = [
        m / b if b > 0.0 else 1.0
        for m, b in zip(phases["materialized_emit"], phases["emit"])
    ]
    emit_speedup = statistics.median(emit_ratios)
    emit_rates = [
        u / s for u, s in zip(phases["emit_updates"], phases["emit"]) if s > 0.0
    ]
    emit_updates_per_sec = statistics.median(emit_rates) if emit_rates else 0.0
    phase_medians = {
        key: statistics.median(values) if values else 0.0
        for key, values in phases.items()
    }

    resolved = columnar.columnar_backend
    rows = [
        ["cell-batched", serial_round * 1e3, n_objects / serial_round, 1.0],
        [
            f"columnar ({resolved})",
            columnar_round * 1e3,
            n_objects / columnar_round,
            speedup,
        ],
    ]
    table = format_table(
        ["pipeline", "median round ms", "reports/s", "median paired speedup"],
        rows,
    )
    other = columnar_round - sum(
        phase_medians[key] for key in ("columnar_ingest", "plan", "join", "emit")
    )
    # The ingest row's baseline is the cell-batched grouping loop; the
    # emit row's is the materialized-emission twin.  Throughput is the
    # phase's natural unit: reports/s for ingest, updates/s for emit.
    nan = float("nan")
    phase_rows = [
        [
            "ingest",
            phase_medians["columnar_ingest"] * 1e3,
            phase_medians["serial_ingest"] * 1e3,
            ingest_speedup,
            (
                n_objects / phase_medians["columnar_ingest"]
                if phase_medians["columnar_ingest"] > 0.0
                else nan
            ),
        ],
        ["plan", phase_medians["plan"] * 1e3, nan, nan, nan],
        ["join", phase_medians["join"] * 1e3, nan, nan, nan],
        [
            "emit",
            phase_medians["emit"] * 1e3,
            phase_medians["materialized_emit"] * 1e3,
            emit_speedup,
            emit_updates_per_sec if emit_updates_per_sec > 0.0 else nan,
        ],
        ["other", max(other, 0.0) * 1e3, nan, nan, nan],
    ]
    phase_table = format_table(
        [
            "phase",
            "columnar median ms",
            "baseline median ms",
            "paired speedup",
            "throughput/s",
        ],
        phase_rows,
    )

    if assert_speedup:
        assert speedup >= SPEEDUP_TARGET, (
            f"columnar pipeline managed only {speedup:.2f}x over "
            f"cell-batched at {n_objects} objects / {n_queries} queries "
            f"(paired per-round ratios: "
            f"{', '.join(f'{r:.3f}' for r in ratios)})"
        )
        assert ingest_speedup >= INGEST_SPEEDUP_TARGET, (
            f"batch ingest managed only {ingest_speedup:.2f}x over the "
            f"serial grouping loop at {n_objects} objects / {n_queries} "
            f"queries (paired per-round ingest ratios: "
            f"{', '.join(f'{r:.3f}' for r in ingest_ratios)})"
        )
        assert emit_speedup >= EMIT_SPEEDUP_TARGET, (
            f"batch emission managed only {emit_speedup:.2f}x over "
            f"materialized Update construction at {n_objects} objects / "
            f"{n_queries} queries (paired per-round emit ratios: "
            f"{', '.join(f'{r:.3f}' for r in emit_ratios)})"
        )

    return {
        "table": table,
        "phase_table": phase_table,
        "backend": resolved,
        "serial_times": serial_times,
        "columnar_times": columnar_times,
        "ratios": ratios,
        "speedup": speedup,
        "phases": phases,
        "phase_medians": phase_medians,
        "ingest_ratios": ingest_ratios,
        "ingest_speedup": ingest_speedup,
        "emit_ratios": emit_ratios,
        "emit_speedup": emit_speedup,
        "emit_updates_per_sec": emit_updates_per_sec,
        "registry": columnar.registry,
    }


def gate_applies(n_objects: int, n_queries: int) -> bool:
    """The 1.5x end-to-end, 1.3x ingest-phase, and 1.3x emit-phase
    gates engage only where they are meaningful: numpy backend at full
    populations (the fallback is recorded, never gated)."""
    return (
        numpy_available()
        and n_objects >= FULL_OBJECTS
        and n_queries >= FULL_QUERIES
    )


def test_columnar_pipeline(benchmark, record_series, request):
    n_objects = scaled(FULL_OBJECTS)
    n_queries = scaled(FULL_QUERIES)
    result = run_comparison(
        n_objects,
        n_queries,
        backend="auto",
        timed_rounds=3,
        assert_speedup=gate_applies(n_objects, n_queries),
    )
    record_series("columnar_pipeline", result["table"])

    # Hand one columnar bulk evaluation to pytest-benchmark.
    __, engine, __, move_rounds = build_engines(n_objects, n_queries, "auto")
    request.node.bench_registry = engine.registry
    clock = [0.0]

    def setup():
        clock[0] += 1.0
        buffer_round(engine, move_rounds[0], clock[0])
        return (clock[0],), {}

    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["objects"] = n_objects
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["grid_size"] = GRID_SIZE
    benchmark.extra_info["backend"] = result["backend"]
    benchmark.extra_info["speedup_vs_cell_batched"] = round(
        result["speedup"], 3
    )
    benchmark.extra_info["ingest_speedup_vs_cell_batched"] = round(
        result["ingest_speedup"], 3
    )
    benchmark.extra_info["emit_speedup_vs_materialized"] = round(
        result["emit_speedup"], 3
    )
    benchmark.pedantic(engine.evaluate, setup=setup, rounds=3)


def test_python_fallback_equivalence_small():
    """The pure-Python backend is exercised even when numpy is present."""
    result = run_comparison(
        QUICK_OBJECTS // 4,
        QUICK_QUERIES // 4,
        backend="python",
        timed_rounds=1,
        assert_speedup=False,
    )
    assert result["backend"] == "python"


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    n_objects = QUICK_OBJECTS if quick else FULL_OBJECTS
    n_queries = QUICK_QUERIES if quick else FULL_QUERIES
    timed_rounds = 2 if quick else TIMED_ROUNDS
    label = "quick" if quick else "full"
    gated = not quick and gate_applies(n_objects, n_queries)
    print(
        f"columnar pipeline benchmark ({label}): "
        f"{n_objects} objects, {n_queries} queries, "
        f"{timed_rounds} paired rounds + warm-up, "
        f"numpy={'yes' if numpy_available() else 'no'}"
    )
    result = run_comparison(
        n_objects,
        n_queries,
        backend="auto",
        timed_rounds=timed_rounds,
        assert_speedup=gated,
    )
    print()
    print(result["table"])
    print()
    print(result["phase_table"])
    print(
        f"\nreport-ingest phase: {result['ingest_speedup']:.2f}x paired "
        f"(batch kernel vs serial grouping loop)"
    )
    print(
        f"delta-emit phase: {result['emit_speedup']:.2f}x paired "
        f"(UpdateBatch splice vs materialized emission), "
        f"{result['emit_updates_per_sec']:,.0f} updates/s"
    )

    # Recorded-not-gated pure-Python fallback leg (small populations:
    # the fallback exists for the stdlib-only guarantee, not for speed).
    fb_objects = min(FALLBACK_OBJECTS, n_objects)
    fb_queries = min(FALLBACK_QUERIES, n_queries)
    fallback = run_comparison(
        fb_objects,
        fb_queries,
        backend="python",
        timed_rounds=2,
        assert_speedup=False,
    )
    print()
    print(
        f"pure-Python fallback ({fb_objects} objects / {fb_queries} "
        f"queries): {fallback['speedup']:.2f}x vs cell-batched "
        f"(recorded, not gated)"
    )

    path = write_bench_json(
        "columnar",
        result["columnar_times"],
        seed=SEED,
        params={
            "mode": label,
            "objects": n_objects,
            "queries": n_queries,
            "grid_size": GRID_SIZE,
            "timed_rounds": timed_rounds,
            "backend": result["backend"],
        },
        extra={
            "cell_batched_round_seconds": result["serial_times"],
            "paired_round_ratios": result["ratios"],
            "speedup_vs_cell_batched": result["speedup"],
            "speedup_gate_applied": gated,
            "phase_round_seconds": result["phases"],
            "phase_median_seconds": result["phase_medians"],
            "ingest_round_ratios": result["ingest_ratios"],
            "ingest_speedup_vs_cell_batched": result["ingest_speedup"],
            "ingest_reports_per_sec": (
                n_objects / result["phase_medians"]["columnar_ingest"]
                if result["phase_medians"]["columnar_ingest"] > 0.0
                else 0.0
            ),
            "emit_round_ratios": result["emit_ratios"],
            "emit_speedup_vs_materialized": result["emit_speedup"],
            "emit_updates_per_sec": result["emit_updates_per_sec"],
            "python_fallback": {
                "objects": fb_objects,
                "queries": fb_queries,
                "round_seconds": fallback["columnar_times"],
                "cell_batched_round_seconds": fallback["serial_times"],
                "speedup_vs_cell_batched": fallback["speedup"],
            },
        },
        registry=result["registry"],
    )
    print(f"\nwrote {path}")
    print(
        f"golden equivalence held every round; columnar "
        f"{result['speedup']:.2f}x vs cell-batched (median paired ratio)"
        + ("" if gated else " (speedup gate not applicable for this run)")
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
