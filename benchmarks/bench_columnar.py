"""Columnar SoA evaluation core vs the serial cell-batched pipeline.

``pipeline="columnar"`` replaces the cell-batched pipeline's per-pair
Python membership loop with batch array kernels over struct-of-arrays
mirrors (see ``repro/columnar/``).  This benchmark drives both pipelines
through the same buffered move rounds and checks two things:

* **golden equivalence** — the columnar pipeline's ordered update
  stream must be byte-identical to the cell-batched stream, every
  round, under the numpy backend *and* the pure-Python fallback;
* **speedup** — at full scale (100K objects / 10K queries) with numpy
  installed, the columnar pipeline must deliver >= 1.5x the
  cell-batched report throughput end-to-end *and* >= 1.3x on the
  report-ingest phase alone (the batch ingest kernel vs the serial
  grouping loop, read from each engine's
  ``engine_ingest_seconds_total`` counter).  The pure-Python fallback
  is *recorded* (same workload, smaller populations) but never gated:
  its point is the stdlib-only guarantee, not speed.

Per-round phase seconds (ingest on both engines; plan/join/emit on the
columnar evaluator) are sampled from the engines' own counters and
written into the JSON summary, so regressions can be localised to a
phase without re-profiling.

Methodology: the two engines are measured **paired and interleaved** —
round k of the serial engine, then round k of the columnar engine, then
their streams are compared and dropped.  A per-round ratio is taken and
the median ratio is the verdict.  Sequential whole-run timing is *not*
comparable on shared hosts: minutes-apart measurements see different
machine load, and retaining both full update streams (~10^6 updates per
round at full scale) distorts allocator behaviour for whichever engine
runs second.  The first round is a warm-up (the columnar evaluator's
candidate caches are cold) and is excluded from the ratio.

Runs two ways:

* under pytest (with pytest-benchmark)::

      PYTHONPATH=src pytest benchmarks/bench_columnar.py --benchmark-only

* as a plain script (used by CI's smoke job)::

      PYTHONPATH=src python benchmarks/bench_columnar.py --quick

``--quick`` shrinks the workload and checks equivalence only.  Both
modes write a ``BENCH_columnar.json`` summary at the repo root.
"""

from __future__ import annotations

import gc
import statistics
import time

from bench_bulk_pipeline import (
    GRID_SIZE,
    SEED,
    buffer_round,
    build_workload,
)
from conftest import scaled, write_bench_json

from repro.columnar import numpy_available
from repro.core.engine import IncrementalEngine
from repro.obs import MetricsRegistry
from repro.stats import format_table

FULL_OBJECTS = 100_000
FULL_QUERIES = 10_000
QUICK_OBJECTS = 4_000
QUICK_QUERIES = 400
#: Timed paired rounds (after one untimed warm-up round).
TIMED_ROUNDS = 5
SPEEDUP_TARGET = 1.5
#: Paired report-ingest phase speedup gate (batch ingest kernel vs the
#: serial grouping loop), same applicability rules as SPEEDUP_TARGET.
INGEST_SPEEDUP_TARGET = 1.3
#: Populations for the recorded-not-gated pure-Python fallback leg.
FALLBACK_OBJECTS = 4_000
FALLBACK_QUERIES = 400


def build_engines(n_objects: int, n_queries: int, backend: str):
    """A (cell-batched, columnar) engine pair over identical workloads."""
    initial, queries, move_rounds = build_workload(n_objects, n_queries)
    engines = []
    for pipeline in ("cell-batched", "columnar"):
        kwargs = {}
        if pipeline == "columnar":
            kwargs["columnar_backend"] = backend
        engine = IncrementalEngine(
            grid_size=GRID_SIZE,
            prediction_horizon=60.0,
            pipeline=pipeline,
            registry=MetricsRegistry(),
            **kwargs,
        )
        for oid, location in initial:
            engine.report_object(oid, location, 0.0)
        for spec in queries:
            if spec[0] == "range":
                engine.register_range_query(spec[1], spec[2])
            elif spec[0] == "knn":
                engine.register_knn_query(spec[1], spec[2], spec[3])
            else:
                engine.register_predictive_query(spec[1], spec[2], spec[3])
        engine.evaluate(0.0)
        engines.append(engine)
    return engines[0], engines[1], move_rounds


#: Phase counters sampled per round: (key, metric name, labels).
_PHASE_COUNTERS = (
    ("ingest", "engine_ingest_seconds_total", None),
    ("plan", "engine_columnar_phase_seconds_total", {"phase": "plan"}),
    ("join", "engine_columnar_phase_seconds_total", {"phase": "join"}),
    ("emit", "engine_columnar_phase_seconds_total", {"phase": "emit"}),
)


def _phase_snapshot(engine) -> dict[str, float]:
    """Current cumulative phase-seconds counters for one engine.

    Counters an engine never touches (the cell-batched engine has no
    plan/join/emit phases) read as 0.0, so deltas stay well-defined.
    """
    registry = engine.registry
    return {
        key: registry.counter(name, labels=labels).value
        for key, name, labels in _PHASE_COUNTERS
    }


def run_paired(serial, columnar, move_rounds, timed_rounds: int):
    """Interleaved paired rounds; returns per-round (serial s, columnar s)
    plus per-round phase seconds from each engine's counters.

    Every round — including the untimed warm-up — asserts byte-identical
    ordered update streams, then discards them so neither engine's
    later rounds are measured under the other's garbage.

    Phase seconds come from the engines' own counters
    (``engine_ingest_seconds_total`` on both engines,
    ``engine_columnar_phase_seconds_total{phase=...}`` on the columnar
    one), sampled before and after each round — the same paired,
    per-round deltas as the wall clock, so the ingest ratio shares the
    wall-clock ratio's robustness to drifting machine load.

    The two engines alternate which one evaluates first each round:
    within a round they run seconds apart, so a monotonic load drift
    would otherwise consistently tax whichever engine always ran
    second.  Alternation flips the bias round to round and the median
    absorbs it.
    """
    pairs: list[tuple[float, float]] = []
    phases: dict[str, list[float]] = {
        "serial_ingest": [],
        "columnar_ingest": [],
        "plan": [],
        "join": [],
        "emit": [],
    }
    now = 0.0
    for round_no in range(timed_rounds + 1):
        now += 1.0
        moves = move_rounds[round_no % len(move_rounds)]
        buffer_round(serial, moves, now)
        buffer_round(columnar, moves, now)
        gc.collect()
        gc.disable()
        try:
            serial_before = _phase_snapshot(serial)
            columnar_before = _phase_snapshot(columnar)
            if round_no % 2:
                started = time.perf_counter()
                columnar_updates = columnar.evaluate(now)
                columnar_seconds = time.perf_counter() - started
                started = time.perf_counter()
                serial_updates = serial.evaluate(now)
                serial_seconds = time.perf_counter() - started
            else:
                started = time.perf_counter()
                serial_updates = serial.evaluate(now)
                serial_seconds = time.perf_counter() - started
                started = time.perf_counter()
                columnar_updates = columnar.evaluate(now)
                columnar_seconds = time.perf_counter() - started
            serial_after = _phase_snapshot(serial)
            columnar_after = _phase_snapshot(columnar)
        finally:
            gc.enable()
        got = [(u.qid, u.oid, u.sign) for u in columnar_updates]
        want = [(u.qid, u.oid, u.sign) for u in serial_updates]
        assert got == want, (
            f"columnar stream diverged from cell-batched in round {round_no}"
        )
        del serial_updates, columnar_updates, got, want
        if round_no > 0:  # round 0 is the cache warm-up
            pairs.append((serial_seconds, columnar_seconds))
            phases["serial_ingest"].append(
                serial_after["ingest"] - serial_before["ingest"]
            )
            phases["columnar_ingest"].append(
                columnar_after["ingest"] - columnar_before["ingest"]
            )
            for key in ("plan", "join", "emit"):
                phases[key].append(
                    columnar_after[key] - columnar_before[key]
                )
    return pairs, phases


def run_comparison(
    n_objects: int,
    n_queries: int,
    backend: str,
    timed_rounds: int,
    assert_speedup: bool,
):
    serial, columnar, move_rounds = build_engines(
        n_objects, n_queries, backend
    )
    pairs, phases = run_paired(serial, columnar, move_rounds, timed_rounds)
    ratios = [s / c for s, c in pairs]
    speedup = statistics.median(ratios)
    serial_times = [s for s, _ in pairs]
    columnar_times = [c for _, c in pairs]
    columnar_round = statistics.median(columnar_times)
    serial_round = statistics.median(serial_times)

    # Paired ingest-phase ratio: serial grouping loop vs batch kernel.
    ingest_ratios = [
        s / c if c > 0.0 else 1.0
        for s, c in zip(phases["serial_ingest"], phases["columnar_ingest"])
    ]
    ingest_speedup = statistics.median(ingest_ratios)
    phase_medians = {
        key: statistics.median(values) if values else 0.0
        for key, values in phases.items()
    }

    resolved = columnar.columnar_backend
    rows = [
        ["cell-batched", serial_round * 1e3, n_objects / serial_round, 1.0],
        [
            f"columnar ({resolved})",
            columnar_round * 1e3,
            n_objects / columnar_round,
            speedup,
        ],
    ]
    table = format_table(
        ["pipeline", "median round ms", "reports/s", "median paired speedup"],
        rows,
    )
    other = columnar_round - sum(
        phase_medians[key] for key in ("columnar_ingest", "plan", "join", "emit")
    )
    phase_rows = [
        [
            "ingest",
            phase_medians["columnar_ingest"] * 1e3,
            phase_medians["serial_ingest"] * 1e3,
            ingest_speedup,
        ],
        ["plan", phase_medians["plan"] * 1e3, float("nan"), float("nan")],
        ["join", phase_medians["join"] * 1e3, float("nan"), float("nan")],
        ["emit", phase_medians["emit"] * 1e3, float("nan"), float("nan")],
        ["other", max(other, 0.0) * 1e3, float("nan"), float("nan")],
    ]
    phase_table = format_table(
        [
            "phase",
            "columnar median ms",
            "cell-batched median ms",
            "paired speedup",
        ],
        phase_rows,
    )

    if assert_speedup:
        assert speedup >= SPEEDUP_TARGET, (
            f"columnar pipeline managed only {speedup:.2f}x over "
            f"cell-batched at {n_objects} objects / {n_queries} queries "
            f"(paired per-round ratios: "
            f"{', '.join(f'{r:.3f}' for r in ratios)})"
        )
        assert ingest_speedup >= INGEST_SPEEDUP_TARGET, (
            f"batch ingest managed only {ingest_speedup:.2f}x over the "
            f"serial grouping loop at {n_objects} objects / {n_queries} "
            f"queries (paired per-round ingest ratios: "
            f"{', '.join(f'{r:.3f}' for r in ingest_ratios)})"
        )

    return {
        "table": table,
        "phase_table": phase_table,
        "backend": resolved,
        "serial_times": serial_times,
        "columnar_times": columnar_times,
        "ratios": ratios,
        "speedup": speedup,
        "phases": phases,
        "phase_medians": phase_medians,
        "ingest_ratios": ingest_ratios,
        "ingest_speedup": ingest_speedup,
        "registry": columnar.registry,
    }


def gate_applies(n_objects: int, n_queries: int) -> bool:
    """The 1.5x end-to-end and 1.3x ingest-phase gates engage only where
    they are meaningful: numpy backend at full populations (the
    fallback is recorded, never gated)."""
    return (
        numpy_available()
        and n_objects >= FULL_OBJECTS
        and n_queries >= FULL_QUERIES
    )


def test_columnar_pipeline(benchmark, record_series, request):
    n_objects = scaled(FULL_OBJECTS)
    n_queries = scaled(FULL_QUERIES)
    result = run_comparison(
        n_objects,
        n_queries,
        backend="auto",
        timed_rounds=3,
        assert_speedup=gate_applies(n_objects, n_queries),
    )
    record_series("columnar_pipeline", result["table"])

    # Hand one columnar bulk evaluation to pytest-benchmark.
    __, engine, move_rounds = build_engines(n_objects, n_queries, "auto")
    request.node.bench_registry = engine.registry
    clock = [0.0]

    def setup():
        clock[0] += 1.0
        buffer_round(engine, move_rounds[0], clock[0])
        return (clock[0],), {}

    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["objects"] = n_objects
    benchmark.extra_info["queries"] = n_queries
    benchmark.extra_info["grid_size"] = GRID_SIZE
    benchmark.extra_info["backend"] = result["backend"]
    benchmark.extra_info["speedup_vs_cell_batched"] = round(
        result["speedup"], 3
    )
    benchmark.extra_info["ingest_speedup_vs_cell_batched"] = round(
        result["ingest_speedup"], 3
    )
    benchmark.pedantic(engine.evaluate, setup=setup, rounds=3)


def test_python_fallback_equivalence_small():
    """The pure-Python backend is exercised even when numpy is present."""
    result = run_comparison(
        QUICK_OBJECTS // 4,
        QUICK_QUERIES // 4,
        backend="python",
        timed_rounds=1,
        assert_speedup=False,
    )
    assert result["backend"] == "python"


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    n_objects = QUICK_OBJECTS if quick else FULL_OBJECTS
    n_queries = QUICK_QUERIES if quick else FULL_QUERIES
    timed_rounds = 2 if quick else TIMED_ROUNDS
    label = "quick" if quick else "full"
    gated = not quick and gate_applies(n_objects, n_queries)
    print(
        f"columnar pipeline benchmark ({label}): "
        f"{n_objects} objects, {n_queries} queries, "
        f"{timed_rounds} paired rounds + warm-up, "
        f"numpy={'yes' if numpy_available() else 'no'}"
    )
    result = run_comparison(
        n_objects,
        n_queries,
        backend="auto",
        timed_rounds=timed_rounds,
        assert_speedup=gated,
    )
    print()
    print(result["table"])
    print()
    print(result["phase_table"])
    print(
        f"\nreport-ingest phase: {result['ingest_speedup']:.2f}x paired "
        f"(batch kernel vs serial grouping loop)"
    )

    # Recorded-not-gated pure-Python fallback leg (small populations:
    # the fallback exists for the stdlib-only guarantee, not for speed).
    fb_objects = min(FALLBACK_OBJECTS, n_objects)
    fb_queries = min(FALLBACK_QUERIES, n_queries)
    fallback = run_comparison(
        fb_objects,
        fb_queries,
        backend="python",
        timed_rounds=2,
        assert_speedup=False,
    )
    print()
    print(
        f"pure-Python fallback ({fb_objects} objects / {fb_queries} "
        f"queries): {fallback['speedup']:.2f}x vs cell-batched "
        f"(recorded, not gated)"
    )

    path = write_bench_json(
        "columnar",
        result["columnar_times"],
        seed=SEED,
        params={
            "mode": label,
            "objects": n_objects,
            "queries": n_queries,
            "grid_size": GRID_SIZE,
            "timed_rounds": timed_rounds,
            "backend": result["backend"],
        },
        extra={
            "cell_batched_round_seconds": result["serial_times"],
            "paired_round_ratios": result["ratios"],
            "speedup_vs_cell_batched": result["speedup"],
            "speedup_gate_applied": gated,
            "phase_round_seconds": result["phases"],
            "phase_median_seconds": result["phase_medians"],
            "ingest_round_ratios": result["ingest_ratios"],
            "ingest_speedup_vs_cell_batched": result["ingest_speedup"],
            "ingest_reports_per_sec": (
                n_objects / result["phase_medians"]["columnar_ingest"]
                if result["phase_medians"]["columnar_ingest"] > 0.0
                else 0.0
            ),
            "python_fallback": {
                "objects": fb_objects,
                "queries": fb_queries,
                "round_seconds": fallback["columnar_times"],
                "cell_batched_round_seconds": fallback["serial_times"],
                "speedup_vs_cell_batched": fallback["speedup"],
            },
        },
        registry=result["registry"],
    )
    print(f"\nwrote {path}")
    print(
        f"golden equivalence held every round; columnar "
        f"{result['speedup']:.2f}x vs cell-batched (median paired ratio)"
        + ("" if gated else " (speedup gate not applicable for this run)")
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
