"""ABL5: the bulk-evaluation spatial join.

The paper reduces shared evaluation to "a spatial join between a set of
moving objects and a set of moving queries" and cites PBSM for it.
This ablation compares the three implementations on the bulk workload
the engine would hand them.
"""

import random
import time

from conftest import scaled

from repro.geometry import Point, Rect
from repro.grid import Grid
from repro.join import grid_join, nested_loop_join, pbsm_join
from repro.stats import format_table

OBJECT_COUNT = scaled(4000)
QUERY_COUNT = scaled(2000)
SIDE = 0.03


def build(seed: int = 8):
    rng = random.Random(seed)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    queries = {
        qid: Rect.square(Point(rng.random(), rng.random()), SIDE)
        for qid in range(QUERY_COUNT)
    }
    return objects, queries


def test_join_algorithms(benchmark, record_series):
    objects, queries = build()
    grid = Grid(Rect(0.0, 0.0, 1.0, 1.0), 64)

    timings = {}
    results = {}
    for name, runner in (
        ("nested-loop", lambda: nested_loop_join(objects, queries)),
        ("grid", lambda: grid_join(objects, queries, grid)),
        ("pbsm", lambda: pbsm_join(objects, queries, grid)),
    ):
        started = time.perf_counter()
        results[name] = runner()
        timings[name] = (time.perf_counter() - started) * 1e3

    rows = [
        [name, ms, len(results[name])] for name, ms in timings.items()
    ]
    record_series(
        "abl5_join_algorithms",
        format_table(["algorithm", "ms", "pairs"], rows),
    )

    assert results["grid"] == results["nested-loop"]
    assert results["pbsm"] == results["nested-loop"]
    # Both partitioned joins must beat the quadratic scan comfortably.
    assert timings["grid"] < timings["nested-loop"] / 5
    assert timings["pbsm"] < timings["nested-loop"] / 5

    benchmark(grid_join, objects, queries, grid)
