"""Live-service load demo: 10k multiplexed clients over real sockets.

The acceptance run for the ``repro.service`` runtime: boot the
network-facing server with the consistency oracle attached, then drive
it with the multiplexed load harness — 10,000 simulated clients sharing
four OS threads/TCP sessions, replaying a deterministic generator
workload (reports, query moves, commits) for 20 lock-step cycles.  The
run must finish with **zero oracle divergences**, zero sampled-answer
mismatches, and a healthy ``/metrics`` scrape; per-cycle wall times are
measured at the driver (socket round trip included) and recorded.

This is a gate and a record, not a sweep.  Runs two ways:

* under pytest (with pytest-benchmark, scaled-down population)::

      PYTHONPATH=src pytest benchmarks/bench_service.py --benchmark-only

* as a plain script (CI's service smoke uses the loadgen CLI instead;
  ``--quick`` here keeps local iteration fast)::

      PYTHONPATH=src python benchmarks/bench_service.py [--quick]

Both modes write ``BENCH_service.json`` at the repo root with the
per-cycle timings, the driver's full report, and the service registry
snapshot (``service_*`` + ``server_*`` series).
"""

from __future__ import annotations

import time

from conftest import scaled, write_bench_json

from repro.service.loadgen import LoadConfig, LoadDriver, http_get
from repro.service.runtime import ServiceConfig, ServiceRuntime

SEED = 11
GRID_SIZE = 64

FULL = dict(
    clients=10_000,
    objects=2_000,
    range_queries=120,
    knn_queries=30,
    predictive_queries=20,
    cycles=20,
    sessions=4,
    verify_samples=32,
)
QUICK = dict(
    clients=1_000,
    objects=400,
    range_queries=30,
    knn_queries=8,
    predictive_queries=5,
    cycles=8,
    sessions=2,
    verify_samples=16,
)


#: Metrics with more labeled series than this collapse to one summed
#: series in the recorded snapshot.
AGGREGATE_ABOVE = 16


class SlimRegistry:
    """A ``to_dict()`` view that aggregates high-cardinality metrics.

    The service registry carries one labeled series per client — at
    10k clients the raw snapshot is megabytes of mostly-zero rows.
    Metrics past :data:`AGGREGATE_ABOVE` series collapse to a single
    summed series (label values replaced by ``"*"``, original
    cardinality recorded), so the totals still travel with the run but
    ``BENCH_service.json`` stays reviewable.
    """

    def __init__(self, registry):
        self._registry = registry

    def to_dict(self) -> dict:
        slim = {}
        for name, metric in self._registry.to_dict().items():
            series = metric.get("series", [])
            if len(series) <= AGGREGATE_ABOVE:
                slim[name] = metric
                continue
            label_keys = sorted(
                {key for s in series for key in s.get("labels", {})}
            )
            merged = {
                "labels": {key: "*" for key in label_keys},
                "aggregated_series": len(series),
            }
            if "value" in series[0]:
                merged["value"] = sum(s.get("value", 0.0) for s in series)
            else:  # histogram: keep the total observation count only
                merged["count"] = sum(s.get("count", 0) for s in series)
            slim[name] = dict(metric, series=[merged])
        return slim


class TimedDriver(LoadDriver):
    """LoadDriver that wall-clocks each lock-step round at the driver.

    A round spans outbox handoff -> uplink flush + consume-confirmation
    -> server cycle -> downlink drain, so the timing is the end-to-end
    cycle cost a real deployment would see, sockets included.  The
    first round (hellos + registrations) is setup, not steady state.
    """

    def __init__(self, address, config):
        super().__init__(address, config)
        self.round_timings: list[float] = []

    def _round(self, workers, barrier, outboxes, control) -> None:
        started = time.perf_counter()
        super()._round(workers, barrier, outboxes, control)
        self.round_timings.append(time.perf_counter() - started)

    @property
    def cycle_timings(self) -> list[float]:
        return self.round_timings[1:]  # drop the setup round


def run_demo(params: dict) -> tuple[dict, list[float], int, object]:
    """One oracle-attached run; returns (report, timings, http, registry)."""
    config = ServiceConfig(grid_size=GRID_SIZE, oracle=True)
    with ServiceRuntime(config) as runtime:
        driver = TimedDriver(
            runtime.tcp_address, LoadConfig(seed=SEED, **params)
        )
        report = driver.run()
        status, body = http_get(runtime.http_address, "/metrics")
        registry = runtime.server.registry
    # The acceptance gate: a clean run at scale, observable end to end.
    assert report["ok"], report
    assert report["divergences_total"] == 0, report
    assert report["verify"]["mismatches"] == [], report["verify"]
    assert report["counts"]["welcome"] == params["clients"]
    assert report["worker_errors"] == []
    assert status == 200
    assert "service_sessions_active" in body
    assert "service_admission_rejections_total" in body
    return report, driver.cycle_timings, status, registry


def test_service_load(benchmark):
    params = dict(
        FULL,
        clients=scaled(2_000),
        objects=scaled(500),
        cycles=10,
        verify_samples=16,
    )
    report, timings, _, _ = run_demo(params)
    benchmark.extra_info["seed"] = SEED
    benchmark.extra_info["clients"] = params["clients"]
    benchmark.extra_info["cycles"] = params["cycles"]
    benchmark.extra_info["divergences_total"] = report["divergences_total"]
    benchmark.extra_info["uplink_lines"] = report["counts"]["uplink_lines"]
    benchmark.extra_info["cycle_ms_mean"] = round(
        sum(timings) / len(timings) * 1e3, 2
    )
    # The timed operation: a short oracle-attached run end to end
    # (boot, load, verify, teardown) at a smaller population.
    small = dict(params, clients=scaled(500), objects=scaled(200), cycles=4)
    benchmark.pedantic(lambda: run_demo(small), rounds=2)


def main(argv: list[str]) -> int:
    quick = "--quick" in argv
    params = QUICK if quick else FULL
    label = "quick" if quick else "full"
    print(
        f"service load demo ({label}): {params['clients']} clients over "
        f"{params['sessions']} sessions, {params['objects']} objects, "
        f"{params['range_queries'] + params['knn_queries'] + params['predictive_queries']}"
        f" queries, {params['cycles']} cycles, oracle attached"
    )
    started = time.perf_counter()
    report, timings, http_status, registry = run_demo(params)
    elapsed = time.perf_counter() - started

    counts = report["counts"]
    mean = sum(timings) / len(timings)
    print(f"\n  run ok in {elapsed:.1f}s "
          f"({mean * 1e3:.0f} ms/cycle steady-state mean)")
    print(f"  uplink lines          {counts['uplink_lines']}")
    print(f"  updates delivered     {counts.get('updates', 0)}")
    print(f"  answers committed     {counts.get('committed', 0)}")
    print(f"  oracle divergences    {report['divergences_total']}")
    print(f"  verify mismatches     {len(report['verify']['mismatches'])}"
          f"/{report['verify']['sampled']}")
    print(f"  /metrics scrape       HTTP {http_status}")

    path = write_bench_json(
        "service",
        timings,
        seed=SEED,
        params={"mode": label, "grid_size": GRID_SIZE, **params},
        extra={
            "elapsed_seconds": elapsed,
            "clients_per_session": params["clients"] // params["sessions"],
            "counts": dict(counts),
            "divergences_total": report["divergences_total"],
            "verify": report["verify"],
            "last_cycle": report["last_cycle"],
            "metrics_scrape_status": http_status,
        },
        registry=SlimRegistry(registry),
    )
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    import sys

    raise SystemExit(main(sys.argv[1:]))
