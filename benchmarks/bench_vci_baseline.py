"""ABL7: Velocity-Constrained Indexing vs the incremental grid engine.

VCI avoids per-report index maintenance by probing with velocity-
expanded regions; the cost resurfaces as candidate inflation that grows
with index staleness.  This ablation sweeps the rebuild interval and
reports per-cycle evaluation time and refined-candidate counts, with
the incremental engine as the reference point.
"""

import random
import time

from conftest import scaled

from repro.baselines import VCIEngine
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
QUERY_COUNT = scaled(500)
MAX_SPEED = 0.002  # per second, honoured by the synthetic drift
PERIOD = 5.0
CYCLES = 10
REBUILD_EVERY = (1, 5, 10)


def drift(rng, objects):
    step = MAX_SPEED * PERIOD
    for oid, p in objects.items():
        objects[oid] = Point(
            min(1.0, max(0.0, p.x + rng.uniform(-step, step))),
            min(1.0, max(0.0, p.y + rng.uniform(-step, step))),
        )


def build(seed: int = 21):
    rng = random.Random(seed)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    queries = {
        10**6 + i: Rect.square(Point(rng.random(), rng.random()), 0.04)
        for i in range(QUERY_COUNT)
    }
    return rng, objects, queries


def run_vci(rebuild_every: int):
    rng, objects, queries = build()
    engine = VCIEngine(max_speed=MAX_SPEED)
    for oid, location in objects.items():
        engine.report_object(oid, location, 0.0)
    for qid, region in queries.items():
        engine.register_range_query(qid, region)
    engine.rebuild(0.0)
    elapsed = 0.0
    for cycle in range(1, CYCLES + 1):
        now = cycle * PERIOD
        drift(rng, objects)
        for oid, location in objects.items():
            engine.report_object(oid, location, now)
        if cycle % rebuild_every == 0:
            engine.rebuild(now)
        started = time.perf_counter()
        answers = engine.evaluate(now)
        elapsed += time.perf_counter() - started
    return elapsed * 1e3 / CYCLES, engine.probe_count / CYCLES, answers, objects, queries


def run_incremental():
    rng, objects, queries = build()
    engine = IncrementalEngine(grid_size=64)
    for oid, location in objects.items():
        engine.report_object(oid, location, 0.0)
    for qid, region in queries.items():
        engine.register_range_query(qid, region)
    engine.evaluate(0.0)
    elapsed = 0.0
    for cycle in range(1, CYCLES + 1):
        now = cycle * PERIOD
        drift(rng, objects)
        started = time.perf_counter()
        for oid, location in objects.items():
            engine.report_object(oid, location, now)
        engine.evaluate(now)
        elapsed += time.perf_counter() - started
    return elapsed * 1e3 / CYCLES, engine


def test_vci_rebuild_tradeoff(benchmark, record_series):
    rows = []
    probes = {}
    for rebuild_every in REBUILD_EVERY:
        ms, probe_rate, answers, objects, queries = run_vci(rebuild_every)
        probes[rebuild_every] = probe_rate
        rows.append([f"every {rebuild_every}", ms, probe_rate])
        # VCI stays exact under bounded drift regardless of staleness.
        for qid, region in list(queries.items())[:20]:
            want = {oid for oid, p in objects.items() if region.contains_point(p)}
            assert set(answers[qid]) == want
    incremental_ms, __ = run_incremental()
    rows.append(["incremental", incremental_ms, 0.0])
    record_series(
        "abl7_vci",
        format_table(["rebuild", "cycle ms", "candidates/cycle"], rows),
    )

    # Candidate inflation must grow as rebuilds become rarer.
    assert probes[10] > probes[1]

    benchmark(run_vci, 5)
