"""ABL2: grid granularity sensitivity.

The framework's one tuning knob is N, the grid resolution.  Too coarse
and every cell join degenerates toward nested loops; too fine and query
regions clip to many cells (placement and candidate-merge overhead).
This ablation sweeps N for a fixed workload and times an evaluation
cycle, exposing the U-shaped cost curve the DESIGN notes call out.
"""

import random
import time

from conftest import scaled

from repro.core import IncrementalEngine
from repro.geometry import Point, Rect
from repro.stats import format_table

OBJECT_COUNT = scaled(2000)
QUERY_COUNT = scaled(2000)
GRID_SIZES = (4, 16, 64, 256)


def run_point(grid_size: int, seed: int = 6) -> float:
    rng = random.Random(seed)
    engine = IncrementalEngine(grid_size=grid_size)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(OBJECT_COUNT)
    }
    for oid, location in objects.items():
        engine.report_object(oid, location, 0.0)
    for i in range(QUERY_COUNT):
        engine.register_range_query(
            10**6 + i, Rect.square(Point(rng.random(), rng.random()), 0.03)
        )
    engine.evaluate(0.0)
    moves = {
        oid: Point(rng.random(), rng.random())
        for oid in rng.sample(sorted(objects), OBJECT_COUNT // 5)
    }
    started = time.perf_counter()
    for oid, location in moves.items():
        engine.report_object(oid, location, 1.0)
    engine.evaluate(1.0)
    return time.perf_counter() - started


def test_grid_granularity_sweep(benchmark, record_series):
    rows = [[n, run_point(n) * 1e3] for n in GRID_SIZES]
    record_series(
        "abl2_grid_granularity",
        format_table(["grid N", "cycle ms"], rows),
    )

    times = {n: ms for n, ms in rows}
    # The extremes must not beat a mid-range resolution: coarse grids
    # degenerate toward scanning, ultra-fine grids pay clipping overhead.
    assert min(times[16], times[64]) <= times[4]

    benchmark(run_point, 64)
