"""Continuous k-NN: a dispatch center tracking its nearest ambulances.

Two stationary dispatch centers each watch their 3 nearest ambulances;
one mobile command vehicle carries a moving k-NN query.  As the fleet
moves, the engine maintains every answer as an adaptive circular region
and emits only the handovers (−old-unit, +new-unit).

Run:  python examples/fleet_dispatch_knn.py
"""

from repro import IncrementalEngine, Point
from repro.generator import MovingObjectSimulator, manhattan_city

DISPATCH_EAST = 100
DISPATCH_WEST = 200
MOBILE_COMMAND = 300


def main() -> None:
    city = manhattan_city(blocks=12)
    fleet = MovingObjectSimulator(city, object_count=40, seed=3)
    engine = IncrementalEngine(grid_size=32)

    for report in fleet.initial_reports():
        engine.report_object(report.oid, report.location, report.t)

    engine.register_knn_query(DISPATCH_EAST, Point(0.8, 0.5), k=3)
    engine.register_knn_query(DISPATCH_WEST, Point(0.2, 0.5), k=3)
    # The mobile command post rides along with ambulance 0.
    engine.register_knn_query(MOBILE_COMMAND, fleet.position_of(0), k=3)

    names = {DISPATCH_EAST: "east", DISPATCH_WEST: "west", MOBILE_COMMAND: "mobile"}
    engine.evaluate(0.0)
    for qid, name in names.items():
        print(f"t=0   {name:>6}: units {sorted(engine.answer_of(qid))}")

    for cycle in range(1, 13):
        reports = fleet.tick(10.0)
        for report in reports:
            engine.report_object(report.oid, report.location, report.t)
        engine.move_knn_query(MOBILE_COMMAND, fleet.position_of(0), fleet.now)
        updates = engine.evaluate(fleet.now)
        handovers = [u for u in updates if u.qid in names]
        if handovers:
            shown = ", ".join(
                f"{names[u.qid]}:{'+' if u.is_positive else '-'}unit{u.oid}"
                for u in handovers
            )
            print(f"t={fleet.now:<4.0f} handovers: {shown}")

    print()
    for qid, name in names.items():
        query = engine.queries[qid]
        print(
            f"final {name:>6}: units {sorted(engine.answer_of(qid))} "
            f"(watch radius {query.radius:.3f})"
        )


if __name__ == "__main__":
    main()
