"""Traffic monitoring over a synthetic city (the paper's experiment, small).

A Manhattan-grid city, network-constrained vehicles, and a mix of
stationary monitoring regions and moving "what's around me" queries.
Each 5-second cycle prints what the incremental server shipped versus
what a snapshot server would have retransmitted — the two curves of the
paper's Figure 5, live.

Run:  python examples/traffic_monitoring.py
"""

from repro import Simulation, SimulationConfig, WorkloadConfig
from repro.stats import format_table


def main() -> None:
    config = SimulationConfig(
        object_count=2_000,
        workload=WorkloadConfig(
            range_queries=1_500,
            side=0.03,
            moving_fraction=0.5,
            seed=7,
        ),
        grid_size=64,
        eval_period=5.0,
        blocks=16,
        seed=11,
    )
    sim = Simulation(config)
    print(
        f"city: {sim.network.node_count} intersections, "
        f"{sim.network.edge_count} road segments"
    )
    print(
        f"population: {config.object_count} vehicles, "
        f"{len(sim.workload.specs)} continuous queries "
        f"({sim.workload.moving_query_count} moving)"
    )

    rows = []
    for cycle in range(10):
        result = sim.step()
        rows.append(
            [
                f"{result.now:.0f}s",
                len(result.updates),
                result.incremental_bytes / 1024.0,
                result.complete_bytes / 1024.0,
                result.savings_ratio,
            ]
        )
    print()
    print(
        format_table(
            ["cycle", "updates", "incr KB", "complete KB", "ratio"], rows
        )
    )
    print()
    print(
        f"mean incremental answer: {sim.mean_incremental_kb():.1f} KB/cycle, "
        f"mean complete answer: {sim.mean_complete_kb():.1f} KB/cycle "
        f"({100 * sim.mean_incremental_kb() / sim.mean_complete_kb():.0f}%)"
    )


if __name__ == "__main__":
    main()
