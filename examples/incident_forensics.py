"""Past queries: reconstructing an incident from the location archive.

The server archives every superseded location in the repository ("the
old information becomes persistent").  This example records city traffic
through a :class:`HistoryStore`, then investigates an incident after the
fact: who was near the scene during the critical window, where exactly
was a suspect vehicle at the moment of the report, and which three
vehicles were closest — the paper's "queries about the past".

Run:  python examples/incident_forensics.py
"""

from repro import Rect
from repro.core import LocationAwareServer
from repro.generator import MovingObjectSimulator, manhattan_city
from repro.grid import Grid
from repro.history import HistoricalQueryEngine, HistoryStore
from repro.storage import BufferPool, InMemoryDiskManager

SCENE = Rect(0.40, 0.40, 0.55, 0.55)
INCIDENT_TIME = 90.0


def main() -> None:
    world = Rect(0.0, 0.0, 1.0, 1.0)
    store = HistoryStore(
        BufferPool(InMemoryDiskManager(), capacity=64),
        Grid(world, 32),
        bucket_seconds=30.0,
    )
    server = LocationAwareServer(grid_size=32, history=store)
    city = manhattan_city(blocks=12)
    traffic = MovingObjectSimulator(city, object_count=150, seed=42)

    # Record three minutes of traffic at 5-second resolution.
    for report in traffic.initial_reports():
        server.receive_object_report(report.oid, report.location, report.t)
    server.evaluate_cycle(0.0)
    while traffic.now < 180.0:
        for report in traffic.tick(5.0):
            server.receive_object_report(
                report.oid, report.location, report.t, report.velocity
            )
        server.evaluate_cycle(traffic.now)

    print(f"archive: {store.record_count()} location records, "
          f"{store.temporal.populated_bucket_count} time/space buckets")

    forensics = HistoricalQueryEngine(store)

    # Who was at the scene around the incident?
    visits = forensics.past_range(SCENE, INCIDENT_TIME - 15, INCIDENT_TIME + 15)
    suspects = sorted({visit.oid for visit in visits})
    print(f"\nvehicles sighted at the scene in t=[75, 105]: {suspects}")
    for visit in visits[:5]:
        print(f"  t={visit.t:5.1f}  vehicle {visit.oid:3d} at "
              f"({visit.location.x:.3f}, {visit.location.y:.3f})")

    # Where exactly was the first suspect at the incident moment?
    if suspects:
        suspect = suspects[0]
        position = forensics.position_at(suspect, INCIDENT_TIME)
        print(f"\nvehicle {suspect} interpolated position at t={INCIDENT_TIME:.0f}: "
              f"({position.x:.3f}, {position.y:.3f})")
        trail = forensics.trajectory_between(suspect, 60.0, 120.0)
        print(f"its archived trail t=[60, 120] has {len(trail)} samples")

    # Which three vehicles were nearest the scene center at the moment?
    nearest = forensics.knn_at(SCENE.center, k=3, t=INCIDENT_TIME)
    print("\nthree nearest vehicles at the incident moment:")
    for distance, oid in nearest:
        print(f"  vehicle {oid:3d} at distance {distance:.3f}")


if __name__ == "__main__":
    main()
