"""Out-of-sync clients: the Figure 4 scenario, with byte accounting.

A client holding a large answer disconnects briefly.  On wakeup the
server resynchronises it two ways — the paper's committed-answer diff
versus naive full retransmission — and prints what each costs.

Run:  python examples/out_of_sync_clients.py
"""

import random

from repro import Client, LocationAwareServer, Point, Rect

REGION = Rect(0.30, 0.30, 0.70, 0.70)
QUERY = 500


def build_world(seed: int) -> tuple[LocationAwareServer, Client, random.Random]:
    rng = random.Random(seed)
    server = LocationAwareServer(grid_size=32)
    client = Client(client_id=1, server=server)
    server.register_range_query(1, QUERY, REGION, 0.0)
    client.track_query(QUERY)
    for oid in range(400):
        server.receive_object_report(oid, Point(rng.random(), rng.random()), 0.0)
    server.evaluate_cycle(0.0)
    client.pump()
    client.send_commit(QUERY)
    return server, client, rng


def drift(server: LocationAwareServer, rng: random.Random, t: float, n: int) -> None:
    """Move n random objects — the world changing during the outage."""
    for oid in rng.sample(range(400), n):
        server.receive_object_report(oid, Point(rng.random(), rng.random()), t)
    server.evaluate_cycle(t)


def main() -> None:
    # --- committed-answer recovery -----------------------------------
    server, client, rng = build_world(seed=1)
    answer_size = len(client.answer_of(QUERY))
    print(f"answer before outage: {answer_size} objects")

    client.disconnect()
    drift(server, rng, 5.0, n=40)
    drift(server, rng, 10.0, n=40)

    before = server.stats.delivered_bytes
    client.reconnect()  # wakeup -> committed-vs-current diff
    diff_bytes = server.stats.delivered_bytes - before
    assert client.answer_of(QUERY) == server.engine.answer_of(QUERY)
    print(f"committed-answer recovery: {diff_bytes} bytes "
          "(client verified consistent)")

    # --- naive recovery on an identical world ------------------------
    server2, client2, rng2 = build_world(seed=1)
    client2.disconnect()
    drift(server2, rng2, 5.0, n=40)
    drift(server2, rng2, 10.0, n=40)
    naive_bytes = server2.recover_naive(1)
    client2.pump()
    print(f"naive full retransmission: {naive_bytes} bytes")

    print(f"savings: {100 * (1 - diff_bytes / naive_bytes):.0f}% "
          f"for a short outage on a {answer_size}-object answer")


if __name__ == "__main__":
    main()
