"""Predictive range queries: who will enter the restricted zone?

Aircraft report location *and* velocity (predictive objects); a control
zone asks which aircraft will penetrate it within the next 60 seconds.
The engine joins the zone rectangle against the aircrafts' trajectory
segments and keeps the answer current as courses change — the paper's
Example III at a realistic scale.

Run:  python examples/predictive_airspace.py
"""

import math
import random

from repro import IncrementalEngine, Point, Rect, Velocity

ZONE = Rect(0.45, 0.45, 0.60, 0.60)
ZONE_QUERY = 900
HORIZON = 60.0


def random_aircraft(rng: random.Random) -> tuple[Point, Velocity]:
    position = Point(rng.random(), rng.random())
    heading = rng.uniform(0.0, 2.0 * math.pi)
    speed = rng.uniform(0.001, 0.004)  # world units per second
    return position, Velocity(speed * math.cos(heading), speed * math.sin(heading))


def main() -> None:
    rng = random.Random(2026)
    engine = IncrementalEngine(grid_size=32, prediction_horizon=2 * HORIZON)
    engine.register_predictive_query(ZONE_QUERY, ZONE, horizon=HORIZON)

    fleet: dict[int, tuple[Point, Velocity]] = {}
    for oid in range(30):
        fleet[oid] = random_aircraft(rng)
        position, velocity = fleet[oid]
        engine.report_object(oid, position, 0.0, velocity)

    engine.evaluate(0.0)
    print(f"t=0   predicted intruders (next {HORIZON:.0f}s): "
          f"{sorted(engine.answer_of(ZONE_QUERY))}")

    for step in range(1, 7):
        now = step * 15.0
        # Every aircraft flies its filed course; a third of them turn.
        for oid, (position, velocity) in list(fleet.items()):
            position = velocity.displace(position, 15.0)
            if rng.random() < 0.33:
                __, velocity = random_aircraft(rng)
            fleet[oid] = (position, velocity)
            engine.report_object(oid, position, now, velocity)
        updates = engine.evaluate(now)
        alerts = ", ".join(str(u) for u in updates) if updates else "(no change)"
        print(f"t={now:<4.0f} {alerts}")

    print(f"final predicted intruders: {sorted(engine.answer_of(ZONE_QUERY))}")


if __name__ == "__main__":
    main()
