"""The declarative front end: driving the engine with the query language.

Registers queries by name through the Predator-style command language,
moves them, and reads back answers — no integer ids in sight.

Run:  python examples/query_console.py
"""

from repro import IncrementalEngine, Point
from repro.lang import Binder

PROGRAM = """
-- city watch desk
REGISTER RANGE QUERY downtown    REGION (0.45, 0.45, 0.55, 0.55)
REGISTER RANGE QUERY harbor      REGION (0.05, 0.05, 0.20, 0.15)
REGISTER KNN QUERY nearest-cabs  K 3 AT (0.50, 0.50)
REGISTER PREDICTIVE QUERY flightpath REGION (0.30, 0.60, 0.40, 0.70) WITHIN 45
"""


def main() -> None:
    engine = IncrementalEngine(grid_size=32)
    binder = Binder(engine)

    # A few vehicles on the map before the console comes up.
    positions = {
        1: Point(0.50, 0.50),
        2: Point(0.47, 0.53),
        3: Point(0.10, 0.10),
        4: Point(0.52, 0.48),
        5: Point(0.90, 0.90),
    }
    for oid, position in positions.items():
        engine.report_object(oid, position, 0.0)

    binder.run_program(PROGRAM)
    engine.evaluate(0.0)

    print("registered queries:", ", ".join(binder.names()))
    for name in binder.names():
        answer = sorted(engine.answer_of(binder.qid_of(name)))
        print(f"  {name:<14} -> {answer}")

    # The desk pans the downtown window east and re-evaluates.
    binder.run_program("MOVE QUERY downtown REGION (0.55, 0.45, 0.65, 0.55)", t=5.0)
    updates = engine.evaluate(5.0)
    print("\nafter MOVE QUERY downtown:")
    for update in updates:
        print(f"  {update}")
    print("  downtown -> "
          f"{sorted(engine.answer_of(binder.qid_of('downtown')))}")

    binder.run_program("UNREGISTER QUERY harbor")
    engine.evaluate(5.0)
    print(f"\nafter UNREGISTER QUERY harbor: {len(binder.names())} queries: "
          f"{', '.join(binder.names())}")


if __name__ == "__main__":
    main()
