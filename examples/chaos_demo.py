"""Chaos engineering for the continuous-query stack.

Runs a seeded fault plan — link drops, duplicate and reordered
deliveries, client outages with scheduled wakeups, delayed uplinks,
simulated worker crashes — against each engine pipeline while the
differential consistency oracle cross-checks four independent answer
derivations every cycle (replay, snapshot, commit invariant, desync).
A healthy stack survives all of it with zero divergences and every
client converging back to the live answer.

Run:  python examples/chaos_demo.py
"""

from repro.faults import default_plan, run_chaos, PIPELINES


def main() -> None:
    seed = 7
    plan = default_plan(seed)
    print(f"fault plan (seed={seed}):")
    for name, value in sorted(plan.to_dict().items()):
        if name != "seed":
            print(f"  {name:18} {value}")
    print()

    for pipeline in PIPELINES:
        report = run_chaos(pipeline, plan, cycles=20, n_objects=40)
        verdict = "clean" if report.ok else "DIVERGED"
        print(f"{pipeline:13} -> {verdict}: "
              f"{sum(report.faults.values())} faults injected "
              f"({', '.join(f'{k}={v}' for k, v in sorted(report.faults.items()))}), "
              f"{len(report.divergences)} divergences, "
              f"converged in {report.wakeup_rounds} wakeup rounds")
        for divergence in report.divergences:
            print(f"    {divergence}")

    print()
    print("the oracle checked every cycle: committed ⊆ delivered held, "
          "incremental answers matched from-scratch recomputation, and "
          "loss-free clients never desynced.")


if __name__ == "__main__":
    main()
