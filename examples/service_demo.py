"""The live service runtime end to end, in one process.

Boots ``repro.service`` — the network-facing server that wraps
``LocationAwareServer`` behind a real TCP socket speaking line-delimited
JSON — with the consistency oracle attached, then drives it with the
multiplexed load harness: many simulated clients sharing a handful of
sessions, registering queries, streaming position reports, moving
queries, and committing answers, cycle by cycle in lock-step.  At the
end it scrapes the HTTP plane (``/state`` and ``/metrics``) the way a
dashboard would.

Run:  python examples/service_demo.py
"""

import json

from repro.service import ServiceConfig, ServiceRuntime
from repro.service.loadgen import LoadConfig, LoadDriver, http_get


def main() -> None:
    config = ServiceConfig(grid_size=16, oracle=True)
    with ServiceRuntime(config).start() as runtime:
        host, port = runtime.tcp_address
        print(f"service listening on {host}:{port} "
              f"(http on {runtime.http_address[1]}), oracle attached")

        load = LoadConfig(
            clients=120,
            objects=60,
            range_queries=10,
            knn_queries=3,
            predictive_queries=2,
            cycles=6,
            sessions=2,
            verify_samples=8,
        )
        report = LoadDriver(runtime.tcp_address, load).run()

        counts = report["counts"]
        print(f"\n{report['clients']} clients over {report['sessions']} "
              f"sessions, {report['cycles']} cycles:")
        print(f"  uplink lines sent     {counts['uplink_lines']}")
        print(f"  updates delivered     {counts.get('updates', 0)}")
        print(f"  answers committed     {counts.get('committed', 0)}")
        print(f"  oracle divergences    {report['divergences_total']}")
        print(f"  verify mismatches     "
              f"{len(report['verify']['mismatches'])}"
              f"/{report['verify']['sampled']} sampled queries")
        print(f"  verdict               {'ok' if report['ok'] else 'FAILED'}")

        status, body = http_get(runtime.http_address, "/state")
        state = json.loads(body)
        print(f"\nGET /state -> {status}: cycle={state['cycle']} "
              f"clients={state['clients']} queries={state['queries']} "
              f"objects={state['objects']} "
              f"savings_ratio={state['savings_ratio']:.2f}")

        status, body = http_get(runtime.http_address, "/metrics")
        wanted = ("service_sessions_active", "service_clients_active",
                  "service_cycles_total", "service_uplink_ops_total")
        lines = [line for line in body.splitlines()
                 if line.startswith(wanted)]
        print(f"GET /metrics -> {status}, service series:")
        for line in sorted(lines)[:8]:
            print(f"  {line}")

        assert report["ok"], report
    print("\nruntime stopped cleanly")


if __name__ == "__main__":
    main()
