"""Observability tour: metrics registry, Prometheus text, Chrome trace.

Runs a small fleet simulation on a :class:`LocationAwareServer`, then
shows the three faces of the telemetry subsystem:

1. the Prometheus-style text exposition of the server's registry
   (what a scrape endpoint would serve),
2. a JSON metrics snapshot (what ``BENCH_*.json`` files embed),
3. a Chrome trace of every evaluation cycle — load the written
   ``trace.json`` in ``chrome://tracing`` (or https://ui.perfetto.dev)
   to see ``cycle`` > ``evaluate`` > per-phase spans on a timeline.

Run:  python examples/observe_demo.py
"""

import json
import random
import tempfile
from pathlib import Path

from repro import Point, Rect
from repro.core import LocationAwareServer
from repro.obs import prometheus_text, write_chrome_trace


def main() -> None:
    rng = random.Random(7)
    server = LocationAwareServer(grid_size=16)

    # A dispatcher client watching downtown plus the 3 nearest taxis.
    server.register_client(1)
    server.register_range_query(1, 100, Rect(0.4, 0.4, 0.6, 0.6))
    server.register_knn_query(1, 200, Point(0.5, 0.5), 3)

    # Forty taxis drift around the unit square for ten cycles.
    taxis = {oid: Point(rng.random(), rng.random()) for oid in range(40)}
    for t in range(10):
        for oid, loc in taxis.items():
            loc = Point(
                min(max(loc.x + rng.uniform(-0.05, 0.05), 0.0), 1.0),
                min(max(loc.y + rng.uniform(-0.05, 0.05), 0.0), 1.0),
            )
            taxis[oid] = loc
            server.receive_object_report(oid, loc, float(t))
        server.evaluate_cycle(float(t))

    # Face 1: the scrape endpoint's view.
    print("=== Prometheus exposition (excerpt) ===")
    lines = prometheus_text(server.registry).splitlines()
    interesting = [
        line
        for line in lines
        if line.startswith(("engine_", "server_")) and "{" not in line
    ]
    for line in interesting[:18]:
        print(line)
    print(f"... ({len(lines)} lines total)")

    # Face 2: the machine-readable snapshot benchmarks embed.
    snapshot = server.registry.to_dict()
    print("\n=== Snapshot highlights ===")
    for name in (
        "engine_evaluations_total",
        "engine_updates_emitted_total",
        "server_updates_delivered_total",
        "grid_populated_cells",
    ):
        print(f"{name} = {server.registry.value_of(name)}")
    cycle = snapshot["server_cycle_seconds"]["series"][0]
    print(
        f"server_cycle_seconds: count={cycle['count']} "
        f"mean={cycle['mean'] * 1e3:.3f}ms"
    )

    # Face 3: the per-cycle span timeline for chrome://tracing.
    out_dir = Path(tempfile.mkdtemp(prefix="repro_obs_"))
    trace_path = out_dir / "trace.json"
    write_chrome_trace(server.tracer, trace_path)
    events = json.loads(trace_path.read_text())["traceEvents"]
    print("\n=== Chrome trace ===")
    print(f"wrote {trace_path} ({len(events)} spans)")
    print("open chrome://tracing or https://ui.perfetto.dev and load it")


if __name__ == "__main__":
    main()
