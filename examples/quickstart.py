"""Quickstart: the incremental engine in a dozen lines.

Registers one range query and one k-NN query over a handful of objects,
then shows the defining behaviour of the framework: after the first
answer, the server only ever emits positive/negative updates — silent
when nothing changed.

Run:  python examples/quickstart.py
"""

from repro import IncrementalEngine, Point, Rect


def main() -> None:
    engine = IncrementalEngine()  # unit-square world, 64x64 grid

    # Three taxis report their positions at t=0.
    engine.report_object(1, Point(0.52, 0.51), t=0.0)
    engine.report_object(2, Point(0.58, 0.55), t=0.0)
    engine.report_object(3, Point(0.10, 0.90), t=0.0)

    # A dispatcher watches the downtown block and the 2 nearest taxis.
    engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
    engine.register_knn_query(200, Point(0.5, 0.5), k=2)

    print("t=0  first-time answers:")
    for update in engine.evaluate(0.0):
        print(f"     {update}")

    # t=5: taxi 1 leaves downtown, taxi 3 races toward the center.
    engine.report_object(1, Point(0.80, 0.20), t=5.0)
    engine.report_object(3, Point(0.49, 0.52), t=5.0)
    print("t=5  incremental updates:")
    for update in engine.evaluate(5.0):
        print(f"     {update}")

    # t=10: nobody moved — a snapshot server would retransmit both full
    # answers; the incremental server says nothing at all.
    print(f"t=10 updates when nothing changed: {engine.evaluate(10.0)}")

    print(f"range answer: {sorted(engine.answer_of(100))}")
    print(f"knn answer:   {sorted(engine.answer_of(200))}")


if __name__ == "__main__":
    main()
