"""Continuous aggregates: live occupancy counts and dense-area discovery.

A traffic-management desk keeps two kinds of standing aggregate queries
over the city: occupancy counts for a handful of monitored districts
(reported only when they change) and an on-line dense-cell monitor that
raises/clears congestion flags as grid cells cross a density threshold —
the "aggregate queries" use-case the paper cites for its grid.

Run:  python examples/city_heatmap.py
"""

from repro import Rect
from repro.aggregates import AggregateEngine, CellUpdate, CountUpdate
from repro.generator import MovingObjectSimulator, manhattan_city

DISTRICTS = {
    900: ("downtown", Rect(0.375, 0.375, 0.625, 0.625)),
    901: ("harbor", Rect(0.0, 0.0, 0.25, 0.25)),
    902: ("airport", Rect(0.75, 0.75, 1.0, 1.0)),
}
DENSITY_MONITOR = 999
THRESHOLD = 8


def render_heatmap(engine: AggregateEngine, width: int = 16) -> str:
    """A coarse ASCII heat map of cell occupancy."""
    glyphs = " .:*#@"
    lines = []
    for row in reversed(range(width)):
        cells = []
        for col in range(width):
            # Aggregate engine grid is width x width here by construction.
            count = engine.cell_count(row * width + col)
            cells.append(glyphs[min(count // 2, len(glyphs) - 1)])
        lines.append("".join(cells))
    return "\n".join(lines)


def main() -> None:
    city = manhattan_city(blocks=16)
    traffic = MovingObjectSimulator(city, object_count=600, seed=5)
    engine = AggregateEngine(grid_size=16)

    for report in traffic.initial_reports():
        engine.report_object(report.oid, report.location, report.t)
    for qid, (__, region) in DISTRICTS.items():
        engine.register_count_query(qid, region)
    engine.register_density_monitor(DENSITY_MONITOR, threshold=THRESHOLD)

    for update in engine.evaluate():
        if isinstance(update, CountUpdate):
            name = DISTRICTS[update.qid][0]
            print(f"t=0   {name:>8}: {update.count} vehicles")

    for cycle in range(1, 13):
        for report in traffic.tick(10.0):
            engine.report_object(report.oid, report.location, report.t)
        changes = engine.evaluate()
        for update in changes:
            if isinstance(update, CountUpdate):
                name = DISTRICTS[update.qid][0]
                print(f"t={traffic.now:<4.0f}{name:>8}: {update.count} vehicles")
            elif isinstance(update, CellUpdate):
                action = "congested" if update.sign == 1 else "cleared"
                print(f"t={traffic.now:<4.0f}cell {update.cell}: {action}")

    print(f"\noccupancy heat map at t={traffic.now:.0f} "
          f"(dense cells: {sorted(engine.dense_cells_of(DENSITY_MONITOR))}):")
    print(render_heatmap(engine))


if __name__ == "__main__":
    main()
