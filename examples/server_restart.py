"""Surviving a server restart: checkpoint, crash, restore, resync.

The storage manager persists the engine's object and query tables; on
restart the engine is rebuilt from the checkpoint, answers are
re-derived, and clients — who experienced the outage exactly like a
network disconnection — resynchronise through the ordinary wakeup
protocol.  Nothing is retransmitted that did not change.

Run:  python examples/server_restart.py
"""

import random

from repro import Client, LocationAwareServer, Point, Rect
from repro.core.checkpoint import restore_engine, save_engine
from repro.storage import BufferPool, InMemoryDiskManager


def main() -> None:
    rng = random.Random(8)
    pool = BufferPool(InMemoryDiskManager(), capacity=64)

    # --- the server before the crash ---------------------------------
    server = LocationAwareServer(grid_size=32)
    client = Client(client_id=1, server=server)
    server.register_range_query(1, 500, Rect(0.3, 0.3, 0.7, 0.7))
    client.track_query(500)
    for oid in range(300):
        server.receive_object_report(oid, Point(rng.random(), rng.random()), 0.0)
    server.evaluate_cycle(0.0)
    client.pump()
    client.send_commit(500)
    print(f"answer before crash: {len(client.answer_of(500))} objects")

    manifest = save_engine(server.engine, pool)
    pool.flush_all()
    print(f"checkpoint: {len(manifest.object_pages)} object pages, "
          f"{len(manifest.query_pages)} query pages")

    # --- crash: the client is cut off; the world keeps moving --------
    client.disconnect()
    moved = rng.sample(range(300), 30)

    # --- restart: restore the engine, rebind, replay missed reports --
    restored_server = LocationAwareServer(engine=restore_engine(manifest, pool))
    restored_server.register_client(1)
    restored_server.adopt_query(500, client_id=1)
    restored_server.commits = server.commits  # the committed-answer log
    # survived with the checkpoint (it is tiny: one frozenset per query)

    for oid in moved:
        restored_server.receive_object_report(
            oid, Point(rng.random(), rng.random()), 10.0
        )
    restored_server.evaluate_cycle(10.0)

    # --- the client reconnects to the restored server ----------------
    client.server = restored_server
    client.link = restored_server.link_of(1)
    client.reconnect()
    assert client.answer_of(500) == restored_server.engine.answer_of(500)
    print(f"answer after restore + resync: {len(client.answer_of(500))} objects "
          "(verified identical to the restored server's)")
    recovery_updates = restored_server.stats.delivered_messages
    print(f"recovery cost: {recovery_updates} update messages "
          f"({restored_server.stats.delivered_bytes} bytes) — only the delta")


if __name__ == "__main__":
    main()
