"""Every example script must run to completion.

The examples are the library's living documentation; this smoke suite
executes each one in-process (so coverage and import errors surface
here, not in a user's terminal).
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLE_SCRIPTS) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[s.stem for s in EXAMPLE_SCRIPTS]
)
def test_example_runs_to_completion(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
