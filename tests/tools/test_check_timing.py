"""The timing lint: ad-hoc clock reads outside repro.obs are build
failures, annotated exceptions and the obs subtree are not."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOL = REPO_ROOT / "tools" / "check_timing.py"

sys.path.insert(0, str(TOOL.parent))

from check_timing import check_file, check_tree, main  # noqa: E402


def write_module(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


class TestCheckFile:
    def test_flags_module_attribute_calls(self, tmp_path):
        path = write_module(
            tmp_path, "m.py", "import time\nstart = time.time()\n"
        )
        assert check_file(path) == ["2: time.time()"]

    def test_flags_aliased_module(self, tmp_path):
        path = write_module(
            tmp_path, "m.py", "import time as t\nx = t.perf_counter()\n"
        )
        assert check_file(path) == ["2: time.perf_counter()"]

    def test_flags_from_imports_and_aliases(self, tmp_path):
        path = write_module(
            tmp_path,
            "m.py",
            "from time import monotonic as mono\nx = mono()\n",
        )
        assert check_file(path) == ["2: monotonic()"]

    def test_flags_ns_variants(self, tmp_path):
        path = write_module(
            tmp_path, "m.py", "import time\nx = time.monotonic_ns()\n"
        )
        assert check_file(path) == ["2: time.monotonic_ns()"]

    def test_pragma_suppresses(self, tmp_path):
        path = write_module(
            tmp_path,
            "m.py",
            "import time\n"
            "x = time.time()  # timing: allowed — test fixture\n",
        )
        assert check_file(path) == []

    def test_non_clock_time_functions_pass(self, tmp_path):
        path = write_module(
            tmp_path, "m.py", "import time\ntime.sleep(0.1)\n"
        )
        assert check_file(path) == []

    def test_unrelated_names_pass(self, tmp_path):
        path = write_module(
            tmp_path,
            "m.py",
            "class Clock:\n"
            "    def time(self):\n"
            "        return 0\n"
            "x = Clock().time()\n",
        )
        assert check_file(path) == []


class TestCheckTree:
    def test_obs_subtree_is_exempt(self, tmp_path):
        write_module(
            tmp_path, "obs/clock.py", "import time\nx = time.time()\n"
        )
        write_module(
            tmp_path, "core/engine.py", "import time\nx = time.time()\n"
        )
        violations = check_tree(tmp_path)
        assert len(violations) == 1
        assert "core/engine.py" in violations[0]

    def test_repo_tree_is_clean(self):
        """The real src/repro/ passes its own gate."""
        assert main([]) == 0

    def test_missing_path_is_distinct_error(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2


class TestCli:
    def test_violation_fails_the_build(self, tmp_path):
        write_module(
            tmp_path, "bad.py", "from time import perf_counter\nperf_counter()\n"
        )
        proc = subprocess.run(
            [sys.executable, str(TOOL), str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "bad.py:2: perf_counter()" in proc.stdout
        assert "timing: allowed" in proc.stdout  # the fix is in the message
