"""Time-parameterised linear motion (predictive evaluation primitive)."""

import pytest

from repro.geometry import LinearMotion, Point, Rect, Velocity


class TestPositions:
    def test_position_at_report_time(self):
        m = LinearMotion(Point(0.5, 0.5), Velocity(0.1, 0), t0=10.0)
        assert m.position_at(10.0) == Point(0.5, 0.5)

    def test_position_extrapolates(self):
        m = LinearMotion(Point(0, 0), Velocity(0.1, 0.2), t0=0.0)
        assert m.position_at(5.0) == Point(0.5, 1.0)

    def test_segment_until(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 0), t0=0.0)
        s = m.segment_until(2.0)
        assert s.start == Point(0, 0) and s.end == Point(2, 0)

    def test_segment_until_before_t0_raises(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 0), t0=5.0)
        with pytest.raises(ValueError):
            m.segment_until(4.0)

    def test_bounding_rect_until(self):
        m = LinearMotion(Point(1, 1), Velocity(-1, 1), t0=0.0)
        assert m.bounding_rect_until(1.0) == Rect(0, 1, 1, 2)


class TestTimeInRect:
    def test_crossing_interval(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 1), t0=0.0)
        interval = m.time_in_rect(Rect(2, 2, 4, 4), 0.0, 10.0)
        assert interval == pytest.approx((2.0, 4.0))

    def test_never_entering(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 0), t0=0.0)
        assert m.time_in_rect(Rect(0, 2, 10, 3), 0.0, 10.0) is None

    def test_entering_after_window_closes(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 1), t0=0.0)
        assert m.time_in_rect(Rect(5, 5, 6, 6), 0.0, 4.0) is None

    def test_window_clamps_interval(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 1), t0=0.0)
        interval = m.time_in_rect(Rect(2, 2, 8, 8), 3.0, 5.0)
        assert interval == pytest.approx((3.0, 5.0))

    def test_stationary_inside_spans_whole_window(self):
        m = LinearMotion(Point(0.5, 0.5), Velocity.ZERO, t0=0.0)
        assert m.time_in_rect(Rect(0, 0, 1, 1), 2.0, 7.0) == (2.0, 7.0)

    def test_stationary_outside_is_none(self):
        m = LinearMotion(Point(2, 2), Velocity.ZERO, t0=0.0)
        assert m.time_in_rect(Rect(0, 0, 1, 1), 0.0, 100.0) is None

    def test_window_before_report_raises(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 0), t0=5.0)
        with pytest.raises(ValueError):
            m.time_in_rect(Rect(0, 0, 1, 1), 0.0, 10.0)

    def test_empty_window_raises(self):
        m = LinearMotion(Point(0, 0), Velocity(1, 0), t0=0.0)
        with pytest.raises(ValueError):
            m.time_in_rect(Rect(0, 0, 1, 1), 5.0, 4.0)

    def test_interval_endpoints_are_inside_rect(self):
        m = LinearMotion(Point(0.1, 0.9), Velocity(0.05, -0.04), t0=0.0)
        rect = Rect(0.3, 0.3, 0.6, 0.6)
        interval = m.time_in_rect(rect, 0.0, 30.0)
        assert interval is not None
        for t in interval:
            assert rect.expanded(1e-9).contains_point(m.position_at(t))
