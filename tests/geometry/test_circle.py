"""Circles: the region type backing continuous k-NN queries."""

import pytest

from repro.geometry import Circle, Point, Rect


class TestCircle:
    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Circle(Point(0, 0), -0.1)

    def test_zero_radius_contains_only_center(self):
        c = Circle(Point(0.5, 0.5), 0.0)
        assert c.contains_point(Point(0.5, 0.5))
        assert not c.contains_point(Point(0.5, 0.500001))

    def test_boundary_point_is_inside(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.contains_point(Point(1, 0))
        assert c.contains_point(Point(0, -1))

    def test_point_outside(self):
        assert not Circle(Point(0, 0), 1.0).contains_point(Point(1, 1))

    def test_intersects_rect_overlap(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.intersects_rect(Rect(0.5, 0.5, 2, 2))

    def test_intersects_rect_corner_gap(self):
        # Rect corner at (1,1) is sqrt(2) away: no intersection at r=1.
        c = Circle(Point(0, 0), 1.0)
        assert not c.intersects_rect(Rect(1.05, 1.05, 2, 2))

    def test_intersects_rect_containing_circle(self):
        c = Circle(Point(0.5, 0.5), 0.1)
        assert c.intersects_rect(Rect(0, 0, 1, 1))

    def test_contains_rect(self):
        c = Circle(Point(0, 0), 2.0)
        assert c.contains_rect(Rect(-1, -1, 1, 1))
        assert not c.contains_rect(Rect(-2, -2, 2, 2))

    def test_intersects_circle_touching(self):
        a = Circle(Point(0, 0), 1.0)
        b = Circle(Point(2, 0), 1.0)
        assert a.intersects_circle(b)
        assert not a.intersects_circle(Circle(Point(2.01, 0), 1.0))

    def test_bounding_rect(self):
        c = Circle(Point(0.5, 0.5), 0.25)
        assert c.bounding_rect() == Rect(0.25, 0.25, 0.75, 0.75)

    def test_with_radius_and_center(self):
        c = Circle(Point(0, 0), 1.0)
        assert c.with_radius(2.0) == Circle(Point(0, 0), 2.0)
        assert c.with_center(Point(1, 1)) == Circle(Point(1, 1), 1.0)
