"""Points and velocity vectors."""

import math

import pytest

from repro.geometry import Point, Velocity


class TestPoint:
    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        a, b = Point(0.2, 0.9), Point(0.7, 0.1)
        assert a.distance_to(b) == b.distance_to(a)

    def test_squared_distance_matches_distance(self):
        a, b = Point(0.25, 0.5), Point(0.75, 0.125)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_distance_to_self_is_zero(self):
        p = Point(0.3, 0.3)
        assert p.distance_to(p) == 0.0

    def test_translated(self):
        assert Point(1, 2).translated(0.5, -1) == Point(1.5, 1)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(1, 1)) == Point(0.5, 0.5)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_points_are_hashable_and_comparable_by_value(self):
        assert Point(1, 2) == Point(1, 2)
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_points_are_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 1.0  # type: ignore[misc]


class TestVelocity:
    def test_speed_is_magnitude(self):
        assert Velocity(3, 4).speed == 5.0

    def test_zero_constant(self):
        assert Velocity.ZERO.is_zero()
        assert Velocity.ZERO.speed == 0.0

    def test_nonzero_is_not_zero(self):
        assert not Velocity(0.0, 1e-12).is_zero()

    def test_scaled(self):
        assert Velocity(1, -2).scaled(2.0) == Velocity(2, -4)

    def test_displace_moves_linearly(self):
        moved = Velocity(0.1, 0.0).displace(Point(0, 0), 5.0)
        assert moved == Point(0.5, 0.0)

    def test_displace_zero_velocity_is_identity(self):
        origin = Point(0.4, 0.6)
        assert Velocity.ZERO.displace(origin, 100.0) == origin

    def test_displace_backwards_in_time(self):
        moved = Velocity(1.0, 1.0).displace(Point(1, 1), -1.0)
        assert moved == Point(0, 0)

    def test_speed_of_diagonal(self):
        assert Velocity(1, 1).speed == pytest.approx(math.sqrt(2))
