"""Segments and Liang-Barsky clipping (predictive trajectories)."""

import math

import pytest

from repro.geometry import Point, Rect, Segment


class TestBasics:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == 5.0

    def test_point_at_endpoints_and_middle(self):
        s = Segment(Point(0, 0), Point(2, 2))
        assert s.point_at(0.0) == Point(0, 0)
        assert s.point_at(1.0) == Point(2, 2)
        assert s.point_at(0.5) == Point(1, 1)

    def test_bounding_rect(self):
        s = Segment(Point(2, 0), Point(0, 1))
        assert s.bounding_rect() == Rect(0, 0, 2, 1)

    def test_heading(self):
        assert Segment(Point(0, 0), Point(1, 1)).heading() == pytest.approx(
            math.pi / 4
        )


class TestClipping:
    def test_segment_through_rect(self):
        s = Segment(Point(-1, 0.5), Point(2, 0.5))
        t0, t1 = s.clip_parameters(Rect(0, 0, 1, 1))
        assert t0 == pytest.approx(1 / 3)
        assert t1 == pytest.approx(2 / 3)

    def test_segment_inside_rect(self):
        s = Segment(Point(0.2, 0.2), Point(0.8, 0.8))
        assert s.clip_parameters(Rect(0, 0, 1, 1)) == (0.0, 1.0)

    def test_segment_missing_rect(self):
        s = Segment(Point(-1, 2), Point(2, 2))
        assert s.clip_parameters(Rect(0, 0, 1, 1)) is None
        assert not s.intersects_rect(Rect(0, 0, 1, 1))

    def test_segment_touching_corner(self):
        s = Segment(Point(0, 2), Point(2, 0))  # passes through (1,1)
        assert s.intersects_rect(Rect(0, 0, 1, 1))

    def test_degenerate_segment_inside(self):
        s = Segment(Point(0.5, 0.5), Point(0.5, 0.5))
        assert s.clip_parameters(Rect(0, 0, 1, 1)) == (0.0, 1.0)

    def test_degenerate_segment_outside(self):
        s = Segment(Point(2, 2), Point(2, 2))
        assert s.clip_parameters(Rect(0, 0, 1, 1)) is None

    def test_vertical_segment(self):
        s = Segment(Point(0.5, -1), Point(0.5, 2))
        t0, t1 = s.clip_parameters(Rect(0, 0, 1, 1))
        assert t0 == pytest.approx(1 / 3)
        assert t1 == pytest.approx(2 / 3)

    def test_clipped_points_are_inside(self):
        rect = Rect(0.25, 0.25, 0.75, 0.75)
        s = Segment(Point(0, 0), Point(1, 0.9))
        params = s.clip_parameters(rect)
        assert params is not None
        for t in params:
            p = s.point_at(t)
            assert rect.expanded(1e-9).contains_point(p)


class TestDistance:
    def test_distance_to_point_on_segment(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.distance_to_point(Point(0.5, 0)) == 0.0

    def test_distance_perpendicular(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.distance_to_point(Point(0.5, 2)) == 2.0

    def test_distance_beyond_endpoint(self):
        s = Segment(Point(0, 0), Point(1, 0))
        assert s.distance_to_point(Point(4, 4)) == 5.0

    def test_distance_degenerate_segment(self):
        s = Segment(Point(1, 1), Point(1, 1))
        assert s.distance_to_point(Point(4, 5)) == 5.0
