"""Rectangles: constructors, predicates, combinators, difference."""

import pytest

from repro.geometry import Point, Rect


class TestConstruction:
    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_zero_area_rect_is_allowed(self):
        r = Rect(0.5, 0.5, 0.5, 0.5)
        assert r.area == 0.0
        assert r.contains_point(Point(0.5, 0.5))

    def test_from_points_any_order(self):
        r = Rect.from_points(Point(1, 0), Point(0, 1))
        assert r == Rect(0, 0, 1, 1)

    def test_from_center(self):
        r = Rect.from_center(Point(0.5, 0.5), 0.2, 0.4)
        assert r == Rect(0.4, 0.3, 0.6, 0.7)

    def test_square(self):
        r = Rect.square(Point(0.5, 0.5), 0.2)
        assert r.width == pytest.approx(0.2)
        assert r.height == pytest.approx(0.2)
        assert r.center == Point(0.5, 0.5)


class TestPredicates:
    def test_boundary_points_are_inside(self):
        r = Rect(0, 0, 1, 1)
        for corner in r.corners():
            assert r.contains_point(corner)

    def test_outside_point(self):
        assert not Rect(0, 0, 1, 1).contains_point(Point(1.0001, 0.5))

    def test_contains_rect(self):
        outer, inner = Rect(0, 0, 1, 1), Rect(0.2, 0.2, 0.8, 0.8)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.contains_rect(outer)

    def test_intersects_shared_edge(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_intersects_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(1.01, 0, 2, 1))


class TestCombinators:
    def test_intersection(self):
        got = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert got == Rect(1, 1, 2, 2)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_union_bounds_both(self):
        a, b = Rect(0, 0, 1, 1), Rect(2, -1, 3, 0.5)
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    def test_expanded(self):
        assert Rect(0, 0, 1, 1).expanded(0.5) == Rect(-0.5, -0.5, 1.5, 1.5)

    def test_min_distance_inside_is_zero(self):
        assert Rect(0, 0, 1, 1).min_distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_min_distance_diagonal(self):
        assert Rect(0, 0, 1, 1).min_distance_to_point(Point(4, 5)) == 5.0

    def test_max_distance(self):
        assert Rect(0, 0, 3, 4).max_distance_to_point(Point(0, 0)) == 5.0


class TestDifference:
    """``A.difference(B)`` drives incremental range-query movement."""

    def test_disjoint_returns_self(self):
        a = Rect(0, 0, 1, 1)
        assert a.difference(Rect(2, 2, 3, 3)) == [a]

    def test_covered_returns_empty(self):
        assert Rect(0.2, 0.2, 0.8, 0.8).difference(Rect(0, 0, 1, 1)) == []

    def test_self_difference_is_empty(self):
        a = Rect(0, 0, 1, 1)
        assert a.difference(a) == []

    def test_pieces_are_disjoint_and_tile_the_difference(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0.25, 0.25, 0.75, 0.75)
        pieces = a.difference(b)
        assert len(pieces) == 4
        total = sum(p.area for p in pieces)
        assert total == pytest.approx(a.area - b.area)
        for i, p in enumerate(pieces):
            for q in pieces[i + 1 :]:
                inter = p.intersection(q)
                assert inter is None or inter.area == 0.0

    def test_pieces_cover_exactly_the_difference_pointwise(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(0.5, -1, 2, 0.5)  # overlaps a corner
        pieces = a.difference(b)
        steps = 20
        for i in range(steps + 1):
            for j in range(steps + 1):
                p = Point(i / steps, j / steps)
                in_diff = a.contains_point(p) and not b.contains_point(p)
                in_pieces = any(piece.contains_point(p) for piece in pieces)
                if in_diff:
                    assert in_pieces, p
                # Boundary points of b may fall on piece boundaries, so
                # only the forward implication is exact on a lattice.

    def test_moving_window_difference_is_two_bands(self):
        old = Rect(0, 0, 1, 1)
        new = Rect(0.1, 0.1, 1.1, 1.1)
        pieces = new.difference(old)
        assert sum(p.area for p in pieces) == pytest.approx(
            new.area - new.intersection(old).area
        )
