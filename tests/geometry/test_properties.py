"""Property-based tests on the geometry kernel (hypothesis)."""

from hypothesis import given, strategies as st

from repro.geometry import Point, Rect, Segment

coords = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


@st.composite
def points(draw):
    return Point(draw(coords), draw(coords))


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_commutes(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects(), points())
    def test_intersection_contains_iff_both_contain(self, a, b, p):
        inter = a.intersection(b)
        both = a.contains_point(p) and b.contains_point(p)
        if inter is None:
            assert not both
        else:
            assert inter.contains_point(p) == both

    @given(rects(), rects())
    def test_difference_area_identity(self, a, b):
        pieces = a.difference(b)
        inter = a.intersection(b)
        inter_area = inter.area if inter is not None else 0.0
        total = sum(p.area for p in pieces)
        assert abs(total - (a.area - inter_area)) <= 1e-6 * max(1.0, a.area)

    @given(rects(), rects(), points())
    def test_difference_membership(self, a, b, p):
        """p in (a - b) iff p is in exactly the difference pieces,
        modulo shared boundaries (where containment is inclusive)."""
        pieces = a.difference(b)
        in_pieces = any(piece.contains_point(p) for piece in pieces)
        if a.contains_point(p) and not b.contains_point(p):
            assert in_pieces
        if in_pieces:
            assert a.contains_point(p)

    @given(rects(), points())
    def test_min_distance_zero_iff_inside(self, r, p):
        if r.contains_point(p):
            assert r.min_distance_to_point(p) == 0.0
        else:
            assert r.min_distance_to_point(p) > 0.0

    @given(rects(), points())
    def test_min_le_max_distance(self, r, p):
        assert r.min_distance_to_point(p) <= r.max_distance_to_point(p) + 1e-12


class TestSegmentProperties:
    @given(points(), points(), rects())
    def test_clip_agrees_with_sampling(self, a, b, rect):
        """If dense sampling finds an interior point, clipping must agree."""
        segment = Segment(a, b)
        params = segment.clip_parameters(rect)
        hit_by_sampling = any(
            rect.contains_point(segment.point_at(i / 64)) for i in range(65)
        )
        if hit_by_sampling:
            assert params is not None
        if params is None:
            assert not hit_by_sampling

    @given(points(), points(), rects())
    def test_clip_interval_is_ordered_and_within_unit(self, a, b, rect):
        params = Segment(a, b).clip_parameters(rect)
        if params is not None:
            t0, t1 = params
            assert 0.0 <= t0 <= t1 <= 1.0

    @given(points(), points(), points())
    def test_distance_to_point_bounded_by_endpoints(self, a, b, p):
        segment = Segment(a, b)
        d = segment.distance_to_point(p)
        assert d <= a.distance_to(p) + 1e-9
        assert d <= b.distance_to(p) + 1e-9
