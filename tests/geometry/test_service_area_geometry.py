"""clamp_point and clip_or_pin — the service-area primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
coord = st.floats(min_value=-5, max_value=5, allow_nan=False, width=32)


class TestClampPoint:
    def test_inside_point_unchanged(self):
        assert UNIT.clamp_point(Point(0.3, 0.7)) == Point(0.3, 0.7)

    def test_outside_point_moves_to_boundary(self):
        assert UNIT.clamp_point(Point(2.0, -1.0)) == Point(1.0, 0.0)

    def test_boundary_point_unchanged(self):
        assert UNIT.clamp_point(Point(1.0, 0.0)) == Point(1.0, 0.0)

    @given(coord, coord)
    def test_result_is_always_inside(self, x, y):
        assert UNIT.contains_point(UNIT.clamp_point(Point(x, y)))

    @given(coord, coord)
    def test_clamping_is_idempotent(self, x, y):
        once = UNIT.clamp_point(Point(x, y))
        assert UNIT.clamp_point(once) == once

    @given(coord, coord)
    def test_clamp_is_nearest_point(self, x, y):
        """The clamp is the metric projection onto the rectangle."""
        p = Point(x, y)
        clamped = UNIT.clamp_point(p)
        assert p.distance_to(clamped) == pytest.approx(
            UNIT.min_distance_to_point(p)
        )


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


class TestClipOrPin:
    def test_inside_region_unchanged(self):
        region = Rect(0.2, 0.2, 0.4, 0.4)
        assert UNIT.clip_or_pin(region) == region

    def test_straddling_region_clipped(self):
        assert UNIT.clip_or_pin(Rect(0.9, 0.9, 1.5, 1.5)) == Rect(0.9, 0.9, 1.0, 1.0)

    def test_outside_region_pins_to_boundary(self):
        pinned = UNIT.clip_or_pin(Rect(2.0, 2.0, 3.0, 3.0))
        assert pinned == Rect(1.0, 1.0, 1.0, 1.0)

    @given(rects())
    def test_result_is_always_within_world(self, region):
        clipped = UNIT.clip_or_pin(region)
        assert UNIT.contains_rect(clipped)

    @given(rects(), coord, coord)
    def test_in_world_membership_is_preserved(self, region, x, y):
        """For a point inside the world, clipping the region never
        changes whether the point is a member."""
        p = Point(x, y)
        if UNIT.contains_point(p) and region.intersection(UNIT) is not None:
            clipped = UNIT.clip_or_pin(region)
            assert clipped.contains_point(p) == region.contains_point(p)
