"""The multiplexed load driver end to end against a live runtime."""

import pytest

from repro.faults import default_plan
from repro.service.loadgen import LoadConfig, LoadDriver


SMALL = dict(
    clients=200,
    objects=80,
    range_queries=12,
    knn_queries=3,
    predictive_queries=3,
    cycles=5,
    sessions=2,
    verify_samples=10,
)


class TestCleanRun:
    def test_run_is_clean_and_verified(self, make_runtime):
        runtime = make_runtime(grid_size=16, oracle=True)
        report = LoadDriver(runtime.tcp_address, LoadConfig(**SMALL)).run()
        assert report["ok"], report
        assert report["counts"]["welcome"] == SMALL["clients"]
        assert report["counts"].get("errors", 0) == 0
        assert report["divergences_total"] == 0
        assert report["verify"]["mismatches"] == []
        assert report["verify"]["sampled"] == 10
        # Every wire client registered exactly once server-side
        # (+1 for the driver's control session client).
        assert runtime.admission.clients_active == SMALL["clients"] + 1

    def test_runs_are_deterministic_in_traffic(self, make_runtime):
        first = make_runtime(grid_size=16)
        second = make_runtime(grid_size=16)
        cfg = LoadConfig(**SMALL)
        a = LoadDriver(first.tcp_address, cfg).run()
        b = LoadDriver(second.tcp_address, cfg).run()
        assert a["counts"]["uplink_lines"] == b["counts"]["uplink_lines"]
        assert a["counts"]["updates"] == b["counts"]["updates"]


class TestChaosOverRealTransport:
    def test_oracle_stays_clean_under_injected_faults(self, make_runtime):
        """The tentpole end-to-end claim: chaos on live sockets, the
        oracle cross-checking every cycle, zero divergences."""
        runtime = make_runtime(
            grid_size=16, oracle=True, fault_plan=default_plan(7)
        )
        cfg = LoadConfig(
            clients=60,
            objects=40,
            range_queries=8,
            knn_queries=2,
            predictive_queries=2,
            cycles=8,
            sessions=2,
            verify_samples=5,
        )
        report = LoadDriver(runtime.tcp_address, cfg).run()
        assert report["divergences_total"] == 0
        assert runtime.injector is not None
        assert runtime.injector.total_injected > 0
        # Scheduled wakeups reached the wire as begin/end markers with
        # incremental recovery updates in between.
        assert report["counts"].get("wakeups", 0) > 0
        assert report["counts"].get("wakeup_end", 0) > 0
        assert report["worker_errors"] == []


class TestConfig:
    def test_objects_cannot_exceed_clients(self):
        with pytest.raises(ValueError):
            LoadConfig(clients=10, objects=11)

    def test_sessions_must_be_positive(self):
        with pytest.raises(ValueError):
            LoadConfig(clients=10, objects=5, sessions=0)
