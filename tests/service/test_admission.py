"""Admission control: capacity verdicts and their exported series."""

import pytest

from repro.obs import MetricsRegistry
from repro.service.admission import (
    REASON_BACKPRESSURE,
    REASON_CLIENTS,
    REASON_SESSIONS,
    AdmissionConfig,
    AdmissionController,
)


def make(
    max_sessions: int = 2, max_clients: int = 3, max_backlog: int = 2
) -> tuple[AdmissionController, MetricsRegistry]:
    registry = MetricsRegistry()
    config = AdmissionConfig(
        max_sessions=max_sessions,
        max_clients=max_clients,
        max_backlog=max_backlog,
    )
    return AdmissionController(config, registry), registry


class TestSessions:
    def test_limit_and_release(self):
        admission, registry = make(max_sessions=2)
        assert admission.admit_session()
        assert admission.admit_session()
        assert not admission.admit_session()
        assert (
            registry.value_of(
                "service_admission_rejections_total",
                {"reason": REASON_SESSIONS},
            )
            == 1
        )
        admission.release_session()
        assert admission.admit_session()
        assert registry.value_of("service_sessions_active") == 2

    def test_release_never_goes_negative(self):
        admission, registry = make()
        admission.release_session()
        assert admission.sessions_active == 0
        assert registry.value_of("service_sessions_active") == 0


class TestClients:
    def test_limit(self):
        admission, registry = make(max_clients=3)
        assert all(admission.admit_client() for _ in range(3))
        assert not admission.admit_client()
        assert registry.value_of("service_clients_active") == 3
        assert admission.rejection_counts()[REASON_CLIENTS] == 1


class TestBacklog:
    def test_per_session_bound(self):
        admission, _ = make(max_backlog=2)
        assert admission.admit_uplink(0)
        assert admission.admit_uplink(1)
        assert not admission.admit_uplink(2)
        assert admission.rejection_counts()[REASON_BACKPRESSURE] == 1


class TestConfig:
    def test_frozen(self):
        config = AdmissionConfig()
        with pytest.raises(AttributeError):
            config.max_sessions = 5

    def test_rejection_counts_shape(self):
        admission, _ = make()
        assert set(admission.rejection_counts()) == {
            REASON_SESSIONS,
            REASON_CLIENTS,
            REASON_BACKPRESSURE,
        }
