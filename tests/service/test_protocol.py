"""Wire grammar: encode/decode validation and downlink rendering."""

import json

import pytest

from repro.net.messages import (
    FullAnswerMessage,
    UpdateMessage,
    WakeupMessage,
)
from repro.service.protocol import (
    IMMEDIATE_OPS,
    UPLINK_OPS,
    ProtocolError,
    busy_op,
    decode_line,
    downlink_op,
    encode,
    error_op,
    reject_op,
)


class TestEncode:
    def test_one_compact_line(self):
        raw = encode({"op": "ping"})
        assert raw.endswith(b"\n")
        assert b" " not in raw
        assert json.loads(raw) == {"op": "ping"}

    def test_roundtrip(self):
        op = {"op": "report", "client": 1, "oid": 2, "x": 0.5, "y": 0.5, "t": 1.0}
        assert decode_line(encode(op)) == op


class TestDecode:
    def test_accepts_str_and_bytes(self):
        assert decode_line('{"op": "ping"}')["op"] == "ping"
        assert decode_line(b'{"op": "ping"}\n')["op"] == "ping"

    @pytest.mark.parametrize(
        "line,code",
        [
            (b"", "empty"),
            (b"   \n", "empty"),
            (b"not json\n", "bad_json"),
            (b"[1, 2]\n", "bad_json"),
            (b'{"op": "explode"}\n', "bad_op"),
            (b'{"no_op": 1}\n', "bad_op"),
            (b'{"op": "report", "client": 1}\n', "missing_field"),
            (b'{"op": "wakeup"}\n', "missing_field"),
            (
                b'{"op": "register", "client": 1, "qid": 2, "kind": "cube"}\n',
                "bad_kind",
            ),
        ],
    )
    def test_rejections_carry_codes(self, line, code):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(line)
        assert excinfo.value.code == code

    def test_immediate_ops_are_uplink_ops(self):
        assert IMMEDIATE_OPS <= UPLINK_OPS


class TestDownlink:
    def test_update_message(self):
        assert downlink_op(UpdateMessage(qid=3, oid=7, sign=-1)) == {
            "op": "update",
            "qid": 3,
            "oid": 7,
            "sign": -1,
        }

    def test_full_answer_sorted(self):
        op = downlink_op(FullAnswerMessage(5, frozenset({9, 2, 4})))
        assert op == {"op": "answer", "qid": 5, "oids": [2, 4, 9]}

    def test_unencodable_message_raises(self):
        with pytest.raises(ProtocolError):
            downlink_op(WakeupMessage(1))


class TestHelpers:
    def test_shapes(self):
        assert error_op("x", "y") == {"op": "error", "code": "x", "detail": "y"}
        assert busy_op(2.0)["retry_after"] == 2.0
        assert reject_op("sessions", 1.0)["reason"] == "sessions"
