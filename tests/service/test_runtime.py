"""The live runtime over real sockets: protocol flow, backpressure,
outage recovery, markers, and the HTTP plane."""

import json
import time

import pytest

from repro.service.loadgen import http_get


def wait_for(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


REGION = dict(minx=0.2, miny=0.2, maxx=0.8, maxy=0.8)


class TestWireFlow:
    def test_full_cycle_flow(self, make_runtime, make_wire):
        runtime = make_runtime(grid_size=8)
        wire = make_wire(runtime)
        welcome = wire.request("hello", client=1, sync=True)
        assert welcome["op"] == "welcome"
        assert welcome["resumed"] is False
        assert welcome["protocol"] == 1
        wire.send("register", client=1, qid=5, kind="range", **REGION)
        wire.send("report", client=1, oid=42, x=0.5, y=0.5, t=0.0)
        assert wire.settle() == []  # consumed, no errors

        wire.send("tick", now=1.0)
        flushed, summary = wire.recv_until("cycle")
        assert summary["uplinks_applied"] == 2
        assert summary["uplink_errors"] == 0
        assert {"op": "update", "qid": 5, "oid": 42, "sign": 1} in flushed
        assert flushed[-1]["op"] == "cycle_end"

        answer = wire.request("query_answer", qid=5)
        assert answer == {"op": "answer_state", "qid": 5, "oids": [42]}

    def test_commit_marker_follows_flush(self, make_runtime, make_wire):
        runtime = make_runtime(grid_size=8)
        wire = make_wire(runtime)
        wire.request("hello", client=1, sync=True)
        wire.send("register", client=1, qid=5, kind="range", **REGION)
        wire.send("report", client=1, oid=7, x=0.5, y=0.5, t=0.0)
        wire.send("tick", now=1.0)
        wire.recv_until("cycle")

        wire.send("commit", qid=5)
        wire.send("tick", now=2.0)
        flushed, _ = wire.recv_until("cycle")
        assert {"op": "committed", "qid": 5} in flushed
        assert runtime.server.commits.committed_answer(5) == {7}

    def test_knn_and_predictive_registration(self, make_runtime, make_wire):
        runtime = make_runtime(grid_size=8)
        wire = make_wire(runtime)
        wire.request("hello", client=1)
        wire.send("report", client=1, oid=1, x=0.4, y=0.4, t=0.0)
        wire.send("register", client=1, qid=10, kind="knn", cx=0.5, cy=0.5, k=2)
        wire.send(
            "register", client=1, qid=11, kind="predictive", horizon=5.0, **REGION
        )
        wire.send("move", qid=10, kind="knn", cx=0.6, cy=0.6, t=1.0)
        wire.send("tick", now=1.0)
        flushed, summary = wire.recv_until("cycle")
        assert summary["uplink_errors"] == 0
        # A moving query's report commits its previous answer (the
        # paper's implicit-commit rule), so the marker hits the wire.
        assert {"op": "committed", "qid": 10} in flushed
        assert wire.request("query_answer", qid=10)["oids"] == [1]

    def test_resume_after_session_loss_with_wakeup(
        self, make_runtime, make_wire
    ):
        runtime = make_runtime(grid_size=8)
        first = make_wire(runtime)
        first.request("hello", client=7, sync=True)
        first.send("register", client=7, qid=5, kind="range", **REGION)
        first.send("report", client=7, oid=1, x=0.5, y=0.5, t=0.0)
        first.send("tick", now=1.0)
        first.recv_until("cycle")
        first.kill()  # the outage: session dies with updates owed
        wait_for(lambda: runtime.admission.sessions_active == 0)

        # Traffic the dark client misses (object 2 enters the region).
        feeder = make_wire(runtime)
        feeder.request("hello", client=99)
        feeder.send("report", client=99, oid=2, x=0.5, y=0.5, t=2.0)
        assert feeder.request("tick", now=2.0)["op"] == "cycle"

        second = make_wire(runtime)
        welcome = second.request("hello", client=7, sync=True)
        assert welcome["resumed"] is True
        second.send("wakeup", client=7)
        second.send("tick", now=3.0)
        flushed, _ = second.recv_until("cycle")
        kinds = [op["op"] for op in flushed]
        begin = kinds.index("wakeup_begin")
        end = kinds.index("wakeup_end")
        assert begin < end
        # Fold the recovery stream like a wire client: rollback to the
        # committed base (nothing) at wakeup_begin, then apply updates.
        mirror: set = set()
        for op in flushed[begin:]:
            if op["op"] == "update" and op["qid"] == 5:
                (mirror.add if op["sign"] > 0 else mirror.discard)(op["oid"])
            elif op["op"] == "answer" and op["qid"] == 5:
                mirror = set(op["oids"])
        assert mirror == {1, 2}
        assert runtime.server.engine.answer_of(5) == {1, 2}

    def test_client_busy_on_second_live_session(
        self, make_runtime, make_wire
    ):
        runtime = make_runtime()
        first = make_wire(runtime)
        first.request("hello", client=3)
        second = make_wire(runtime)
        reply = second.request("hello", client=3)
        assert reply["op"] == "error"
        assert reply["code"] == "client_busy"


class TestProtectionPaths:
    def test_backpressure_busy(self, make_runtime, make_wire):
        from repro.service.admission import AdmissionConfig

        runtime = make_runtime(
            admission=AdmissionConfig(max_backlog=2, retry_after=0.5)
        )
        wire = make_wire(runtime)
        wire.request("hello", client=1)
        for oid in range(4):
            wire.send("report", client=1, oid=oid, x=0.1, y=0.1, t=0.0)
        ops = wire.settle()
        busy = [op for op in ops if op["op"] == "busy"]
        assert len(busy) == 2
        assert busy[0]["retry_after"] == 0.5
        # The two admitted ops still apply on the next cycle.
        assert wire.request("tick", now=1.0)["uplinks_applied"] == 2

    def test_session_limit_rejects_connection(self, make_runtime, make_wire):
        from repro.service.admission import AdmissionConfig

        runtime = make_runtime(admission=AdmissionConfig(max_sessions=1))
        keeper = make_wire(runtime)
        keeper.request("hello", client=1)
        surplus = make_wire(runtime)
        reply = surplus.recv()
        assert reply["op"] == "reject"
        assert reply["reason"] == "sessions"

    def test_client_limit(self, make_runtime, make_wire):
        from repro.service.admission import AdmissionConfig

        runtime = make_runtime(admission=AdmissionConfig(max_clients=1))
        wire = make_wire(runtime)
        assert wire.request("hello", client=1)["op"] == "welcome"
        assert wire.request("hello", client=2)["op"] == "reject"

    def test_malformed_lines_answer_errors(self, make_runtime, make_wire):
        runtime = make_runtime()
        wire = make_wire(runtime)
        wire.send_raw(b"this is not json\n")
        assert wire.recv()["code"] == "bad_json"
        wire.send_raw(b'{"op": "fly"}\n')
        assert wire.recv()["code"] == "bad_op"
        wire.send("wakeup")  # missing client field
        assert wire.recv()["code"] == "missing_field"

    def test_unknown_move_does_not_poison_cycle(
        self, make_runtime, make_wire
    ):
        runtime = make_runtime(grid_size=8)
        wire = make_wire(runtime)
        wire.request("hello", client=1, sync=True)
        wire.send("register", client=1, qid=5, kind="range", **REGION)
        wire.send("move", qid=404, kind="range", t=1.0, **REGION)
        wire.send("report", client=1, oid=9, x=0.5, y=0.5, t=1.0)
        wire.send("tick", now=1.0)
        flushed, summary = wire.recv_until("cycle")
        assert summary["uplink_errors"] == 1
        assert summary["uplinks_applied"] == 2
        errors = [op for op in flushed if op["op"] == "error"]
        assert errors and errors[0]["code"] == "bad_op"
        # The good ops landed despite the bad one.
        assert {"op": "update", "qid": 5, "oid": 9, "sign": 1} in flushed


class TestCycleLoop:
    def test_interval_paced_cycles(self, make_runtime, make_wire):
        runtime = make_runtime(cycle_interval=0.05)
        wire = make_wire(runtime)
        wire.request("hello", client=1, sync=True)
        # cycle_end markers arrive without any tick from us.
        _, marker = wire.recv_until("cycle_end")
        assert marker["cycle"] >= 0
        wait_for(lambda: runtime.cycle_count >= 2)


class TestHttpPlane:
    def test_endpoints(self, make_runtime, make_wire):
        runtime = make_runtime(grid_size=8)
        wire = make_wire(runtime)
        wire.request("hello", client=1)
        wire.send("report", client=1, oid=1, x=0.5, y=0.5, t=0.0)
        wire.request("tick", now=1.0)

        status, body = http_get(runtime.http_address, "/healthz")
        assert (status, body) == (200, "ok")

        status, body = http_get(runtime.http_address, "/state")
        assert status == 200
        state = json.loads(body)
        assert state["clients"] == 1
        assert state["sessions"] == 1
        assert state["objects"] == 1
        assert state["cycle"] == 1
        assert state["oracle"] == {"attached": False}

        status, body = http_get(runtime.http_address, "/metrics")
        assert status == 200
        assert "service_sessions_active 1.0" in body
        assert "service_cycles_total 1.0" in body
        assert 'service_admission_rejections_total{reason="sessions"} 0.0' in body
        assert "server_cycle_seconds" in body  # existing repro.obs series

        status, _ = http_get(runtime.http_address, "/nope")
        assert status == 404


@pytest.mark.parametrize("module", ["repro.service", "repro.service.loadgen"])
def test_cli_help(module):
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", module, "--help"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0
    assert "usage" in proc.stdout.lower()
