"""Shared fixtures for the live-service tests: a background runtime
factory and a tiny blocking wire client speaking the line protocol."""

from __future__ import annotations

import json
import socket

import pytest

from repro.service.runtime import ServiceConfig, ServiceRuntime


class Wire:
    """A blocking test client for one session (line-JSON over TCP)."""

    def __init__(self, address: tuple[str, int], timeout: float = 30.0):
        self.sock = socket.create_connection(address, timeout=timeout)
        self.file = self.sock.makefile("rwb")

    def send(self, op: str, **fields) -> None:
        payload = {"op": op, **fields}
        self.file.write(json.dumps(payload).encode() + b"\n")
        self.file.flush()

    def send_raw(self, raw: bytes) -> None:
        self.file.write(raw)
        self.file.flush()

    def recv(self) -> dict:
        line = self.file.readline()
        assert line, "server closed the connection"
        return json.loads(line)

    def request(self, op: str, **fields) -> dict:
        self.send(op, **fields)
        return self.recv()

    def recv_until(self, terminal: str) -> tuple[list[dict], dict]:
        """Read ops until one named ``terminal``; returns (before, it)."""
        seen: list[dict] = []
        while True:
            op = self.recv()
            if op["op"] == terminal:
                return seen, op
            seen.append(op)

    def settle(self) -> list[dict]:
        """Confirm the server consumed everything sent so far; returns
        any downlink ops that arrived before the pong."""
        self.send("ping")
        ops, _ = self.recv_until("pong")
        return ops

    def kill(self) -> None:
        """Abrupt close (simulated outage): the server sees EOF.

        ``makefile`` holds its own reference to the socket, so both
        must be closed for the fd to actually close.
        """
        self.file.close()
        self.sock.close()

    def close(self) -> None:
        try:
            self.send("bye")
        except (OSError, ValueError):
            pass
        self.kill()


@pytest.fixture
def make_runtime():
    """Factory for background-thread runtimes on ephemeral ports."""
    runtimes: list[ServiceRuntime] = []

    def _make(**kwargs) -> ServiceRuntime:
        runtime = ServiceRuntime(ServiceConfig(**kwargs)).start()
        runtimes.append(runtime)
        return runtime

    yield _make
    for runtime in runtimes:
        runtime.stop()


@pytest.fixture
def make_wire():
    wires: list[Wire] = []

    def _make(runtime: ServiceRuntime, **kwargs) -> Wire:
        wire = Wire(runtime.tcp_address, **kwargs)
        wires.append(wire)
        return wire

    yield _make
    for wire in wires:
        wire.close()
