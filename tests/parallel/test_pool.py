"""Worker-pool configuration and lifecycle."""

import os

import pytest

from repro.parallel import ParallelConfig, WorkerPool


def _double(payload):
    return payload * 2


class TestParallelConfig:
    def test_zero_workers_resolves_to_cpu_count(self):
        config = ParallelConfig(workers=0)
        assert config.workers == (os.cpu_count() or 1)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelConfig(workers=-2)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ParallelConfig(backend="fibers")

    def test_negative_min_batch_rejected(self):
        with pytest.raises(ValueError, match="min_batch"):
            ParallelConfig(min_batch=-1)

    def test_auto_backend_resolution(self):
        assert ParallelConfig(workers=1).resolved_backend == "thread"
        assert ParallelConfig(workers=4).resolved_backend == "process"
        assert (
            ParallelConfig(workers=4, backend="thread").resolved_backend
            == "thread"
        )


class TestWorkerPool:
    def test_pool_starts_lazily(self):
        pool = WorkerPool(ParallelConfig(workers=2, backend="thread"))
        assert not pool.started
        futures = pool.submit(_double, [1, 2, 3])
        assert pool.started
        assert [f.result() for f in futures] == [2, 4, 6]
        pool.close()
        assert not pool.started

    def test_reset_recovers_for_next_submit(self):
        pool = WorkerPool(ParallelConfig(workers=2, backend="thread"))
        pool.submit(_double, [1])
        pool.reset()
        assert not pool.started
        futures = pool.submit(_double, [5])
        assert futures[0].result() == 10
        pool.close()

    def test_context_manager_closes(self):
        with WorkerPool(ParallelConfig(workers=2, backend="thread")) as pool:
            assert [f.result() for f in pool.submit(_double, [7])] == [14]
        assert not pool.started

    def test_close_is_idempotent(self):
        pool = WorkerPool(ParallelConfig(workers=1, backend="thread"))
        pool.close()
        pool.close()
