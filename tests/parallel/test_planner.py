"""Shard geometry and cohort planning for the parallel pipeline."""

import pytest

from repro.grid import Grid
from repro.geometry import Rect
from repro.parallel import plan_shards


@pytest.fixture
def grid():
    return Grid(Rect(0.0, 0.0, 1.0, 1.0), n=8)


class TestShardOfCell:
    def test_every_cell_maps_to_a_valid_shard(self, grid):
        for shards in (1, 2, 3, 4, 8):
            for cell in range(grid.n * grid.n):
                assert 0 <= grid.shard_of_cell(cell, shards) < shards

    def test_cells_in_same_row_share_a_shard(self, grid):
        for shards in (2, 3, 4):
            for row in range(grid.n):
                base = row * grid.n
                owners = {
                    grid.shard_of_cell(base + col, shards)
                    for col in range(grid.n)
                }
                assert len(owners) == 1

    def test_shard_ids_are_monotone_in_row(self, grid):
        for shards in (2, 4, 8):
            owners = [
                grid.shard_of_cell(row * grid.n, shards)
                for row in range(grid.n)
            ]
            assert owners == sorted(owners)
            assert owners[0] == 0
            assert owners[-1] == shards - 1

    def test_single_shard_owns_everything(self, grid):
        assert {
            grid.shard_of_cell(c, 1) for c in range(grid.n * grid.n)
        } == {0}

    def test_invalid_shard_count_rejected(self, grid):
        with pytest.raises(ValueError):
            grid.shard_of_cell(0, 0)


class TestShardRowBands:
    def test_bands_tile_the_rows(self, grid):
        for shards in (1, 2, 3, 4, 8):
            bands = grid.shard_row_bands(shards)
            assert len(bands) == shards
            covered = []
            for lo, hi in bands:
                covered.extend(range(lo, hi))
            assert covered == list(range(grid.n))

    def test_bands_agree_with_shard_of_cell(self, grid):
        for shards in (2, 3, 4):
            bands = grid.shard_row_bands(shards)
            for shard, (lo, hi) in enumerate(bands):
                for row in range(lo, hi):
                    assert grid.shard_of_cell(row * grid.n, shards) == shard

    def test_more_shards_than_rows_yields_empty_bands(self, grid):
        bands = grid.shard_row_bands(grid.n * 2)
        assert len(bands) == grid.n * 2
        nonempty = [b for b in bands if b[0] < b[1]]
        assert len(nonempty) == grid.n


class TestPlanShards:
    def _cohort(self, cells):
        return (tuple(cells), [], False, False)

    def test_in_band_cohort_goes_to_its_shard(self, grid):
        # Row 0 cells with 2 shards -> shard 0; row 7 -> shard 1.
        cohorts = [
            self._cohort([0, 1]),
            self._cohort([7 * grid.n, 7 * grid.n + 3]),
        ]
        plan = plan_shards(cohorts, grid, shards=2)
        assert plan.total == 2
        assert plan.boundary == []
        assert sorted(plan.shard_cohorts) == [0, 1]
        assert plan.shard_cohorts[0][0][0] == 0  # seq of first cohort
        assert plan.shard_cohorts[1][0][0] == 1

    def test_cross_band_cohort_lands_on_the_boundary(self, grid):
        # A transition from row 0 to row 7 straddles both shards.
        cohorts = [self._cohort([0, 7 * grid.n])]
        plan = plan_shards(cohorts, grid, shards=2)
        assert plan.shard_cohorts == {}
        assert len(plan.boundary) == 1
        assert plan.dispatched == 0

    def test_sequence_numbers_match_input_order(self, grid):
        cohorts = [
            self._cohort([0]),
            self._cohort([0, 7 * grid.n]),
            self._cohort([grid.n]),
        ]
        plan = plan_shards(cohorts, grid, shards=2)
        seqs = sorted(
            [seq for items in plan.shard_cohorts.values() for seq, *_ in items]
            + [seq for seq, *_ in plan.boundary]
        )
        assert seqs == [0, 1, 2]
        assert plan.boundary[0][0] == 1

    def test_single_shard_never_produces_boundary(self, grid):
        cohorts = [self._cohort([0, grid.n * grid.n - 1])]
        plan = plan_shards(cohorts, grid, shards=1)
        assert plan.boundary == []
        assert plan.dispatched == 1
