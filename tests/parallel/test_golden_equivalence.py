"""Golden equivalence of the parallel pipeline vs the cell-batched one.

The parallel pipeline is specified as byte-for-byte equivalent to the
serial cell-batched pipeline: identical update streams in identical
order, every round, for every workload.  These tests drive both
pipelines through the same randomized mixed workloads (all three query
kinds, query moves, unregistrations, object removals) and compare the
*ordered* streams — set equality is not enough here.

A deliberately small grid (8x8) with four shards makes shard-boundary
crossings common, exercising the coordinator's boundary-cohort pass;
``min_batch=0`` forces every batch through the pool instead of the
small-batch inline fallback.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IncrementalEngine
from repro.core.server import LocationAwareServer
from repro.geometry import Point, Rect, Velocity
from repro.parallel import ParallelConfig


def ordered_stream(updates) -> list[tuple[int, int, int]]:
    return [(u.qid, u.oid, u.sign) for u in updates]


def make_pair(parallelism, grid_size=8, horizon=30.0):
    parallel = IncrementalEngine(
        grid_size=grid_size,
        prediction_horizon=horizon,
        pipeline="parallel",
        parallelism=parallelism,
    )
    serial = IncrementalEngine(
        grid_size=grid_size,
        prediction_horizon=horizon,
        pipeline="cell-batched",
    )
    return parallel, serial


class PairDriver:
    """Feed both engines one random mixed workload, round by round."""

    def __init__(self, seed: int, parallelism, grid_size: int = 8):
        self.rng = random.Random(seed)
        self.parallel, self.serial = make_pair(
            parallelism, grid_size=grid_size
        )
        self.live_objects: set[int] = set()
        self.live_queries: dict[int, str] = {}
        self.next_oid = 0
        self.next_qid = 1000

    def both(self, method: str, *args) -> None:
        getattr(self.parallel, method)(*args)
        getattr(self.serial, method)(*args)

    def random_rect(self, max_side: float = 0.3) -> Rect:
        rng = self.rng
        x, y = rng.random(), rng.random()
        return Rect(
            x, y, x + rng.uniform(0.01, max_side), y + rng.uniform(0.01, max_side)
        )

    def register_random_query(self) -> None:
        rng = self.rng
        qid = self.next_qid
        self.next_qid += 1
        kind = rng.random()
        if kind < 0.55:
            self.both("register_range_query", qid, self.random_rect())
            self.live_queries[qid] = "range"
        elif kind < 0.8:
            self.both(
                "register_knn_query",
                qid,
                Point(rng.random(), rng.random()),
                rng.randint(1, 4),
            )
            self.live_queries[qid] = "knn"
        else:
            self.both(
                "register_predictive_query", qid, self.random_rect(), 10.0
            )
            self.live_queries[qid] = "predictive"

    def move_random_query(self, now: float) -> None:
        rng = self.rng
        qid = rng.choice(sorted(self.live_queries))
        kind = self.live_queries[qid]
        if kind == "range":
            self.both("move_range_query", qid, self.random_rect(), now)
        elif kind == "knn":
            self.both(
                "move_knn_query", qid, Point(rng.random(), rng.random()), now
            )
        else:
            self.both("move_predictive_query", qid, self.random_rect(), now)

    def report_random_object(self, now: float) -> None:
        rng = self.rng
        if self.live_objects and rng.random() < 0.7:
            oid = rng.choice(sorted(self.live_objects))
        else:
            oid = self.next_oid
            self.next_oid += 1
            self.live_objects.add(oid)
        velocity = Velocity.ZERO
        if rng.random() < 0.3:
            velocity = Velocity(rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05))
        self.both(
            "report_object",
            oid,
            Point(rng.uniform(-0.05, 1.05), rng.uniform(-0.05, 1.05)),
            now,
            velocity,
        )

    def run_round(self, now: float) -> None:
        rng = self.rng
        for _ in range(rng.randint(10, 50)):
            self.report_random_object(now)
        if rng.random() < 0.6:
            self.register_random_query()
        if self.live_queries and rng.random() < 0.4:
            self.move_random_query(now)
        if self.live_queries and rng.random() < 0.2:
            qid = rng.choice(sorted(self.live_queries))
            del self.live_queries[qid]
            self.both("unregister_query", qid)
        if self.live_objects and rng.random() < 0.2:
            oid = rng.choice(sorted(self.live_objects))
            self.live_objects.discard(oid)
            self.both("remove_object", oid)

    def evaluate_and_compare(self, now: float, round_no: int) -> None:
        got = ordered_stream(self.parallel.evaluate(now))
        want = ordered_stream(self.serial.evaluate(now))
        assert got == want, f"ordered streams diverged in round {round_no}"
        assert (
            self.parallel.complete_answers() == self.serial.complete_answers()
        ), f"answers diverged after round {round_no}"
        self.parallel.check_invariants()
        self.serial.check_invariants()

    def run(self, rounds: int = 10) -> None:
        now = 0.0
        try:
            for round_no in range(rounds):
                now += 1.0
                self.run_round(now)
                self.evaluate_and_compare(now, round_no)
            # A pure time advance: only predictive windows slide.
            self.evaluate_and_compare(now + 1.0, rounds)
        finally:
            self.parallel.close()


FORCED_POOL = ParallelConfig(workers=4, backend="thread", min_batch=0)


@pytest.mark.parametrize("seed", range(6))
def test_random_workloads_match_serial_stream_byte_for_byte(seed):
    PairDriver(seed, FORCED_POOL).run()


def test_process_backend_matches_serial_stream():
    config = ParallelConfig(workers=2, backend="process", min_batch=0)
    PairDriver(99, config).run(rounds=4)


def test_single_worker_matches_serial_stream():
    config = ParallelConfig(workers=1, backend="thread", min_batch=0)
    PairDriver(7, config).run(rounds=6)


def test_small_batches_fall_back_inline_and_match():
    # min_batch far above any round's report count: the pool is never
    # started and everything runs on the coordinator's serial path.
    config = ParallelConfig(workers=4, backend="thread", min_batch=10**6)
    driver = PairDriver(3, config)
    driver.run(rounds=6)
    assert driver.parallel._worker_pool is None


def test_integer_parallelism_shorthand():
    engine = IncrementalEngine(
        grid_size=8, pipeline="parallel", parallelism=2
    )
    assert engine.parallel_config.workers == 2
    engine.report_object(1, Point(0.5, 0.5), 0.0)
    engine.register_range_query(100, Rect(0.25, 0.25, 0.75, 0.75))
    assert ordered_stream(engine.evaluate(0.0)) == [(100, 1, 1)]
    engine.close()


def test_engine_is_reusable_after_close():
    config = ParallelConfig(workers=2, backend="thread", min_batch=0)
    engine = IncrementalEngine(
        grid_size=8, pipeline="parallel", parallelism=config
    )
    with engine:
        for step in range(3):
            engine.report_object(step, Point(0.1 * step, 0.1 * step), 0.0)
        engine.register_range_query(100, Rect(0.0, 0.0, 1.0, 1.0))
        engine.evaluate(0.0)
    # close() tore the pool down; the engine still evaluates.
    engine.report_object(50, Point(0.5, 0.5), 1.0)
    updates = engine.evaluate(1.0)
    assert (100, 50, 1) in ordered_stream(updates)
    engine.close()


def test_server_parallel_cycle():
    server = LocationAwareServer(
        grid_size=8,
        pipeline="parallel",
        parallelism=ParallelConfig(workers=2, backend="thread", min_batch=0),
    )
    with server:
        server.register_client(1)
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        server.register_range_query(1, 100, Rect(0.25, 0.25, 0.75, 0.75))
        result = server.evaluate_cycle(0.0)
        assert ordered_stream(result.updates) == [(100, 1, 1)]
