"""The (time bucket x grid cell) index over archived records."""

import pytest

from repro.geometry import Point, Rect
from repro.grid import Grid
from repro.history import TemporalGridIndex
from repro.storage.heapfile import RecordId

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def index() -> TemporalGridIndex:
    return TemporalGridIndex(Grid(UNIT, 8), bucket_seconds=10.0)


def rid(i: int) -> RecordId:
    return RecordId(0, i)


class TestMaintenance:
    def test_rejects_bad_bucket_width(self):
        with pytest.raises(ValueError):
            TemporalGridIndex(Grid(UNIT, 8), bucket_seconds=0.0)

    def test_entry_count_and_time_range(self, index):
        index.add(rid(0), Point(0.5, 0.5), 5.0)
        index.add(rid(1), Point(0.5, 0.5), 42.0)
        assert index.entry_count == 2
        assert index.time_range == (5.0, 42.0)

    def test_clear(self, index):
        index.add(rid(0), Point(0.5, 0.5), 5.0)
        index.clear()
        assert index.entry_count == 0
        assert index.time_range is None
        assert index.populated_bucket_count == 0

    def test_bucket_of(self, index):
        assert index.bucket_of(0.0) == 0
        assert index.bucket_of(9.99) == 0
        assert index.bucket_of(10.0) == 1


class TestCandidates:
    def test_pruning_by_space(self, index):
        index.add(rid(0), Point(0.1, 0.1), 5.0)
        index.add(rid(1), Point(0.9, 0.9), 5.0)
        got = set(index.candidates(Rect(0.0, 0.0, 0.2, 0.2), 0.0, 10.0))
        assert rid(0) in got and rid(1) not in got

    def test_pruning_by_time(self, index):
        index.add(rid(0), Point(0.5, 0.5), 5.0)
        index.add(rid(1), Point(0.5, 0.5), 500.0)
        got = set(index.candidates(UNIT, 0.0, 20.0))
        assert rid(0) in got and rid(1) not in got

    def test_candidates_overapproximate_within_bucket(self, index):
        # Same bucket, time outside the asked interval: still a candidate.
        index.add(rid(0), Point(0.5, 0.5), 9.0)
        got = set(index.candidates(UNIT, 0.0, 5.0))
        assert rid(0) in got  # caller must re-check exact time

    def test_empty_interval_raises(self, index):
        with pytest.raises(ValueError):
            list(index.candidates(UNIT, 10.0, 5.0))

    def test_region_outside_world(self, index):
        index.add(rid(0), Point(0.5, 0.5), 5.0)
        assert list(index.candidates(Rect(2, 2, 3, 3), 0.0, 10.0)) == []

    def test_candidates_in_interval(self, index):
        index.add(rid(0), Point(0.1, 0.1), 5.0)
        index.add(rid(1), Point(0.9, 0.9), 15.0)
        index.add(rid(2), Point(0.5, 0.5), 95.0)
        got = set(index.candidates_in_interval(0.0, 20.0))
        assert got == {rid(0), rid(1)}
