"""Douglas-Peucker trajectory compression."""

import random

import pytest

from repro.geometry import Point, Segment, Velocity
from repro.history.compression import (
    compression_ratio,
    douglas_peucker,
    simplify_trajectory,
)
from repro.storage import LocationRecord


def records_from(points: list[Point]) -> list[LocationRecord]:
    return [
        LocationRecord(1, p, Velocity.ZERO, float(i))
        for i, p in enumerate(points)
    ]


class TestDouglasPeucker:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            douglas_peucker([Point(0, 0)], -0.1)

    def test_short_inputs_kept_verbatim(self):
        assert douglas_peucker([], 0.1) == []
        assert douglas_peucker([Point(0, 0)], 0.1) == [0]
        assert douglas_peucker([Point(0, 0), Point(1, 1)], 0.1) == [0, 1]

    def test_collinear_points_collapse_to_endpoints(self):
        points = [Point(i / 10, i / 10) for i in range(11)]
        assert douglas_peucker(points, 1e-9) == [0, 10]

    def test_corner_is_preserved(self):
        # An L-shaped path: the corner must survive any tolerance that
        # is smaller than the corner's offset from the endpoints' chord.
        points = [Point(0, 0), Point(0.5, 0.0), Point(1.0, 0.0), Point(1.0, 0.5), Point(1, 1)]
        kept = douglas_peucker(points, 0.1)
        assert 0 in kept and 4 in kept
        assert 2 in kept  # the corner at (1, 0)

    def test_zero_tolerance_keeps_every_deviating_point(self):
        points = [Point(0, 0), Point(0.5, 0.1), Point(1, 0)]
        assert douglas_peucker(points, 0.0) == [0, 1, 2]

    def test_huge_tolerance_keeps_only_endpoints(self):
        rng = random.Random(1)
        points = [Point(rng.random(), rng.random()) for __ in range(50)]
        assert douglas_peucker(points, 10.0) == [0, 49]

    def test_error_bound_holds(self):
        """Every dropped point lies within tolerance of the simplified
        polyline — the algorithm's defining guarantee."""
        rng = random.Random(2)
        # A wiggly road-like path.
        points = []
        x, y = 0.0, 0.5
        for __ in range(200):
            x += 0.005
            y += rng.uniform(-0.004, 0.004)
            points.append(Point(x, y))
        tolerance = 0.01
        kept = douglas_peucker(points, tolerance)
        for i, p in enumerate(points):
            if i in kept:
                continue
            # Find the surrounding kept indices.
            left = max(k for k in kept if k < i)
            right = min(k for k in kept if k > i)
            chord = Segment(points[left], points[right])
            assert chord.distance_to_point(p) <= tolerance + 1e-12


class TestSimplifyTrajectory:
    def test_straight_drive_compresses_hard(self):
        records = records_from([Point(i / 100, 0.5) for i in range(101)])
        simplified = simplify_trajectory(records, 0.001)
        assert len(simplified) == 2
        assert simplified[0].t == 0.0 and simplified[-1].t == 100.0

    def test_survivors_keep_their_timestamps_and_order(self):
        rng = random.Random(3)
        records = records_from(
            [Point(rng.random(), rng.random()) for __ in range(40)]
        )
        simplified = simplify_trajectory(records, 0.05)
        times = [rec.t for rec in simplified]
        assert times == sorted(times)
        assert set(times) <= {rec.t for rec in records}

    def test_compression_ratio(self):
        assert compression_ratio(100, 5) == 0.05
        assert compression_ratio(0, 0) == 1.0
