"""Past range / trajectory / position / k-NN queries."""

import pytest

from repro.geometry import Point, Rect, Velocity
from repro.grid import Grid
from repro.history import HistoricalQueryEngine, HistoryStore
from repro.storage import BufferPool, InMemoryDiskManager, LocationRecord

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def store() -> HistoryStore:
    return HistoryStore(
        BufferPool(InMemoryDiskManager(), capacity=16),
        Grid(UNIT, 8),
        bucket_seconds=10.0,
    )


@pytest.fixture
def engine(store) -> HistoricalQueryEngine:
    # Object 1 walks east along y=0.5; object 2 sits still in a corner.
    for step in range(6):
        store.append(
            LocationRecord(
                1, Point(0.1 + 0.1 * step, 0.5), Velocity.ZERO, 10.0 * step
            )
        )
        store.append(
            LocationRecord(2, Point(0.9, 0.9), Velocity.ZERO, 10.0 * step)
        )
    return HistoricalQueryEngine(store)


class TestPastRange:
    def test_finds_visits_in_window(self, engine):
        visits = engine.past_range(Rect(0.25, 0.4, 0.45, 0.6), 0.0, 50.0)
        assert [(v.oid, v.t) for v in visits] == [(1, 20.0), (1, 30.0)]

    def test_time_filter_is_exact(self, engine):
        # t=20 sample is in bucket 2; asking [21, 29] must exclude it.
        visits = engine.past_range(Rect(0.25, 0.4, 0.45, 0.6), 21.0, 29.0)
        assert visits == []

    def test_objects_seen_in(self, engine):
        seen = engine.objects_seen_in(UNIT, 0.0, 100.0)
        assert seen == {1, 2}

    def test_results_sorted_by_time(self, engine):
        visits = engine.past_range(UNIT, 0.0, 100.0)
        times = [v.t for v in visits]
        assert times == sorted(times)


class TestTrajectory:
    def test_trajectory_between(self, engine):
        samples = engine.trajectory_between(1, 10.0, 30.0)
        assert [s.t for s in samples] == [10.0, 20.0, 30.0]

    def test_empty_interval_raises(self, engine):
        with pytest.raises(ValueError):
            engine.trajectory_between(1, 30.0, 10.0)

    def test_unknown_object(self, engine):
        assert engine.trajectory_between(99, 0.0, 100.0) == []


class TestPositionAt:
    def test_exact_sample_time(self, engine):
        position = engine.position_at(1, 20.0)
        assert position.x == pytest.approx(0.3)
        assert position.y == pytest.approx(0.5)

    def test_interpolates_between_samples(self, engine):
        position = engine.position_at(1, 25.0)
        assert position.x == pytest.approx(0.35)
        assert position.y == pytest.approx(0.5)

    def test_outside_archive_span_is_none(self, engine):
        assert engine.position_at(1, -5.0) is None
        assert engine.position_at(1, 500.0) is None

    def test_unknown_object_is_none(self, engine):
        assert engine.position_at(99, 10.0) is None

    def test_duplicate_timestamps(self, store):
        store.append(LocationRecord(5, Point(0.1, 0.1), Velocity.ZERO, 10.0))
        store.append(LocationRecord(5, Point(0.2, 0.2), Velocity.ZERO, 10.0))
        engine = HistoricalQueryEngine(store)
        assert engine.position_at(5, 10.0) is not None


class TestKnnAt:
    def test_nearest_at_instant(self, engine):
        # At t=25, object 1 is at (0.35, 0.5); object 2 at (0.9, 0.9).
        ranked = engine.knn_at(Point(0.35, 0.5), k=2, t=25.0)
        assert [oid for __, oid in ranked] == [1, 2]
        assert ranked[0][0] == pytest.approx(0.0)

    def test_k_must_be_positive(self, engine):
        with pytest.raises(ValueError):
            engine.knn_at(Point(0.5, 0.5), k=0, t=10.0)

    def test_empty_store(self, store):
        engine = HistoricalQueryEngine(store)
        assert engine.knn_at(Point(0.5, 0.5), k=3, t=10.0) == []


class TestRebuild:
    def test_queries_survive_index_rebuild(self, engine):
        before = engine.past_range(UNIT, 0.0, 100.0)
        engine.store.rebuild_index()
        after = engine.past_range(UNIT, 0.0, 100.0)
        assert before == after
        assert engine.store.temporal.entry_count == len(before)
