"""Update-memo R-tree (RUM-tree style)."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RumTree


class TestBasics:
    def test_rejects_bad_gc_ratio(self):
        with pytest.raises(ValueError):
            RumTree(gc_stale_ratio=0.0)
        with pytest.raises(ValueError):
            RumTree(gc_stale_ratio=1.5)

    def test_upsert_and_search(self):
        tree = RumTree()
        tree.upsert(1, Point(0.5, 0.5))
        assert set(tree.search(Rect(0.4, 0.4, 0.6, 0.6))) == {1}
        assert 1 in tree and len(tree) == 1

    def test_update_supersedes_old_location(self):
        tree = RumTree(gc_stale_ratio=1.0)  # keep stale entries around
        tree.upsert(1, Point(0.1, 0.1))
        tree.upsert(1, Point(0.9, 0.9))
        # The stale version must NOT satisfy queries at the old spot.
        assert set(tree.search(Rect(0.0, 0.0, 0.2, 0.2))) == set()
        assert set(tree.search(Rect(0.8, 0.8, 1.0, 1.0))) == {1}
        assert len(tree) == 1
        assert tree.physical_entry_count == 2  # stale version still stored

    def test_delete(self):
        tree = RumTree(gc_stale_ratio=1.0)
        tree.upsert(1, Point(0.5, 0.5))
        tree.delete(1)
        assert 1 not in tree
        assert set(tree.search(Rect(0, 0, 1, 1))) == set()
        with pytest.raises(KeyError):
            tree.delete(1)

    def test_location_of(self):
        tree = RumTree()
        tree.upsert(3, Point(0.25, 0.75))
        assert tree.location_of(3) == Point(0.25, 0.75)


class TestGarbageCollection:
    def test_gc_triggers_on_stale_ratio(self):
        tree = RumTree(gc_stale_ratio=0.4)
        for __ in range(10):
            tree.upsert(1, Point(0.5, 0.5))
        assert tree.gc_runs > 0
        assert tree.stale_ratio < 0.4

    def test_manual_gc_removes_exactly_the_stale(self):
        tree = RumTree(gc_stale_ratio=1.0)
        for oid in range(5):
            tree.upsert(oid, Point(0.1 * oid, 0.5))
        for oid in range(5):
            tree.upsert(oid, Point(0.1 * oid, 0.6))
        assert tree.physical_entry_count == 10
        removed = tree.garbage_collect()
        assert removed == 5
        assert tree.physical_entry_count == 5
        assert set(tree.search(Rect(0, 0, 1, 1))) == set(range(5))

    def test_queries_identical_before_and_after_gc(self):
        rng = random.Random(1)
        tree = RumTree(gc_stale_ratio=1.0)
        locations = {}
        for __ in range(300):
            oid = rng.randrange(40)
            locations[oid] = Point(rng.random(), rng.random())
            tree.upsert(oid, locations[oid])
        region = Rect(0.25, 0.25, 0.75, 0.75)
        before = set(tree.search(region))
        tree.garbage_collect()
        after = set(tree.search(region))
        want = {oid for oid, p in locations.items() if region.contains_point(p)}
        assert before == after == want


class TestOracle:
    def test_search_matches_dict_model_under_churn(self):
        rng = random.Random(2)
        tree = RumTree(gc_stale_ratio=0.3)
        model: dict[int, Point] = {}
        for step in range(500):
            oid = rng.randrange(60)
            if oid in model and rng.random() < 0.15:
                tree.delete(oid)
                del model[oid]
            else:
                location = Point(rng.random(), rng.random())
                tree.upsert(oid, location)
                model[oid] = location
            if step % 50 == 0:
                region = Rect.square(Point(rng.random(), rng.random()), 0.4)
                want = {
                    o for o, p in model.items() if region.contains_point(p)
                }
                assert set(tree.search(region)) == want

    def test_nearest_matches_brute_force(self):
        rng = random.Random(3)
        tree = RumTree(gc_stale_ratio=1.0)
        model: dict[int, Point] = {}
        for __ in range(400):  # heavy churn: many stale versions linger
            oid = rng.randrange(50)
            location = Point(rng.random(), rng.random())
            tree.upsert(oid, location)
            model[oid] = location
        for probe in (Point(0.5, 0.5), Point(0.05, 0.95)):
            for k in (1, 5, 20):
                got = tree.nearest(probe, k)
                ranked = sorted(
                    (p.distance_to(probe), oid) for oid, p in model.items()
                )
                want_dists = [d for d, __ in ranked[:k]]
                got_dists = sorted(
                    model[oid].distance_to(probe) for oid in got
                )
                assert got_dists == pytest.approx(sorted(want_dists))

    def test_nearest_k_exceeds_population(self):
        tree = RumTree()
        tree.upsert(1, Point(0.5, 0.5))
        tree.upsert(1, Point(0.6, 0.6))  # stale + live
        assert tree.nearest(Point(0, 0), 10) == [1]

    def test_nearest_rejects_bad_k(self):
        with pytest.raises(ValueError):
            RumTree().nearest(Point(0, 0), 0)
