"""R-tree: inserts, splits, deletes, searches."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RTree


def build_tree(count: int, seed: int = 1, max_entries: int = 8):
    rng = random.Random(seed)
    tree = RTree(max_entries=max_entries)
    items: dict[int, Rect] = {}
    for key in range(count):
        rect = Rect.square(Point(rng.random(), rng.random()), 0.05)
        tree.insert(key, rect)
        items[key] = rect
    return tree, items


class TestConstruction:
    def test_rejects_small_capacity(self):
        with pytest.raises(ValueError):
            RTree(max_entries=3)

    def test_rejects_bad_min_entries(self):
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=0)

    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.height == 1
        assert list(tree.search(Rect(0, 0, 1, 1))) == []
        assert tree.nearest(Point(0.5, 0.5), k=3) == []


class TestInsert:
    def test_len_and_contains(self):
        tree, __ = build_tree(50)
        assert len(tree) == 50
        assert 17 in tree and 50 not in tree

    def test_duplicate_key_rejected(self):
        tree, __ = build_tree(5)
        with pytest.raises(KeyError):
            tree.insert(3, Rect(0, 0, 1, 1))

    def test_tree_grows_in_height(self):
        tree, __ = build_tree(200, max_entries=4)
        assert tree.height >= 3
        tree.check_invariants()

    def test_rect_of(self):
        tree, items = build_tree(30)
        for key, rect in items.items():
            assert tree.rect_of(key) == rect

    def test_invariants_after_many_inserts(self):
        tree, __ = build_tree(500, max_entries=6)
        tree.check_invariants()


class TestSearch:
    def test_matches_brute_force(self):
        tree, items = build_tree(300, seed=7)
        for query in (
            Rect(0.0, 0.0, 0.3, 0.3),
            Rect(0.4, 0.4, 0.6, 0.6),
            Rect(0.0, 0.0, 1.0, 1.0),
            Rect(0.99, 0.99, 1.0, 1.0),
        ):
            want = {k for k, r in items.items() if r.intersects(query)}
            got = {entry.key for entry in tree.search(query)}
            assert got == want

    def test_search_point(self):
        tree = RTree()
        tree.insert(1, Rect(0, 0, 0.5, 0.5))
        tree.insert(2, Rect(0.4, 0.4, 1, 1))
        hits = {e.key for e in tree.search_point(Point(0.45, 0.45))}
        assert hits == {1, 2}
        assert {e.key for e in tree.search_point(Point(0.9, 0.1))} == set()

    def test_items_yields_everything(self):
        tree, items = build_tree(120)
        assert {e.key for e in tree.items()} == set(items)


class TestDelete:
    def test_delete_removes_key(self):
        tree, __ = build_tree(40)
        tree.delete(10)
        assert 10 not in tree
        assert len(tree) == 39
        with pytest.raises(KeyError):
            tree.delete(10)

    def test_delete_down_to_empty(self):
        tree, items = build_tree(60, max_entries=4)
        for key in list(items):
            tree.delete(key)
            tree.check_invariants()
        assert len(tree) == 0
        assert tree.height == 1

    def test_interleaved_insert_delete_matches_brute_force(self):
        rng = random.Random(3)
        tree = RTree(max_entries=5)
        live: dict[int, Rect] = {}
        next_key = 0
        for __ in range(400):
            if live and rng.random() < 0.4:
                key = rng.choice(list(live))
                tree.delete(key)
                del live[key]
            else:
                rect = Rect.square(Point(rng.random(), rng.random()), 0.04)
                tree.insert(next_key, rect)
                live[next_key] = rect
                next_key += 1
        tree.check_invariants()
        query = Rect(0.25, 0.25, 0.75, 0.75)
        want = {k for k, r in live.items() if r.intersects(query)}
        assert {e.key for e in tree.search(query)} == want

    def test_update_moves_entry(self):
        tree, __ = build_tree(20)
        tree.update(5, Rect(0.9, 0.9, 0.95, 0.95))
        assert tree.rect_of(5) == Rect(0.9, 0.9, 0.95, 0.95)
        assert len(tree) == 20


class TestNearest:
    def test_matches_brute_force(self):
        tree, items = build_tree(250, seed=11)
        for probe in (Point(0.5, 0.5), Point(0.0, 1.0), Point(0.87, 0.13)):
            for k in (1, 5, 20):
                got = [e.key for e in tree.nearest(probe, k)]
                want = sorted(
                    items,
                    key=lambda key: (
                        items[key].min_distance_to_point(probe),
                        key,
                    ),
                )[:k]
                got_dists = [items[key].min_distance_to_point(probe) for key in got]
                want_dists = [items[key].min_distance_to_point(probe) for key in want]
                assert got_dists == pytest.approx(want_dists)

    def test_k_larger_than_population(self):
        tree, __ = build_tree(5)
        assert len(tree.nearest(Point(0.5, 0.5), k=50)) == 5

    def test_nonpositive_k_rejected(self):
        tree, __ = build_tree(5)
        with pytest.raises(ValueError):
            tree.nearest(Point(0, 0), k=0)

    def test_results_in_distance_order(self):
        tree, items = build_tree(100, seed=5)
        probe = Point(0.3, 0.6)
        hits = tree.nearest(probe, k=10)
        dists = [e.rect.min_distance_to_point(probe) for e in hits]
        assert dists == sorted(dists)
