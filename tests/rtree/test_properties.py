"""Property-based R-tree tests: search/delete vs a brute-force oracle."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect
from repro.rtree import RTree, str_bulk_load

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


@st.composite
def rect_strategy(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


# Operations: (key, rect) inserts; negative ints request deletion of the
# key at that index of the live set (modulo size).
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), rect_strategy()),
        st.tuples(st.just("delete"), st.integers(0, 10_000)),
    ),
    max_size=80,
)


@settings(max_examples=60, deadline=None)
@given(ops_strategy, rect_strategy())
def test_search_matches_oracle_under_churn(ops, query):
    tree = RTree(max_entries=4)
    live: dict[int, Rect] = {}
    next_key = 0
    for op, payload in ops:
        if op == "insert":
            tree.insert(next_key, payload)
            live[next_key] = payload
            next_key += 1
        elif live:
            key = sorted(live)[payload % len(live)]
            tree.delete(key)
            del live[key]
    tree.check_invariants()
    want = {k for k, r in live.items() if r.intersects(query)}
    got = {e.key for e in tree.search(query)}
    assert got == want


@settings(max_examples=40, deadline=None)
@given(st.lists(rect_strategy(), min_size=1, max_size=120), coord, coord,
       st.integers(1, 8))
def test_nearest_distances_match_oracle(rects, x, y, k):
    items = list(enumerate(rects))
    tree = str_bulk_load(items, max_entries=4)
    tree.check_invariants()
    probe = Point(x, y)
    got = [e.rect.min_distance_to_point(probe) for e in tree.nearest(probe, k)]
    want = sorted(r.min_distance_to_point(probe) for r in rects)[:k]
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert abs(g - w) < 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(rect_strategy(), min_size=1, max_size=100))
def test_bulk_load_indexes_every_item(rects):
    tree = str_bulk_load(list(enumerate(rects)), max_entries=5)
    assert {e.key for e in tree.items()} == set(range(len(rects)))
    tree.check_invariants()
