"""STR bulk loading."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.rtree import RTree, str_bulk_load


def random_items(count: int, seed: int = 0) -> list[tuple[int, Rect]]:
    rng = random.Random(seed)
    return [
        (key, Rect.square(Point(rng.random(), rng.random()), 0.03))
        for key in range(count)
    ]


class TestBulkLoad:
    def test_empty(self):
        tree = str_bulk_load([])
        assert len(tree) == 0

    def test_single_leaf(self):
        items = random_items(10)
        tree = str_bulk_load(items, max_entries=16)
        assert len(tree) == 10
        assert tree.height == 1
        tree.check_invariants()

    @pytest.mark.parametrize("count", [17, 100, 777, 2000])
    def test_invariants_at_scale(self, count):
        tree = str_bulk_load(random_items(count), max_entries=16)
        assert len(tree) == count
        tree.check_invariants()

    def test_duplicate_keys_rejected(self):
        items = random_items(5) + random_items(5)
        with pytest.raises(ValueError):
            str_bulk_load(items)

    def test_search_matches_incremental_tree(self):
        items = random_items(600, seed=9)
        bulk = str_bulk_load(items, max_entries=8)
        incremental = RTree(max_entries=8)
        for key, rect in items:
            incremental.insert(key, rect)
        for query in (Rect(0, 0, 0.2, 0.2), Rect(0.3, 0.3, 0.7, 0.7)):
            got = {e.key for e in bulk.search(query)}
            want = {e.key for e in incremental.search(query)}
            assert got == want

    def test_bulk_tree_is_shallower_or_equal(self):
        items = random_items(1000, seed=2)
        bulk = str_bulk_load(items, max_entries=8)
        incremental = RTree(max_entries=8)
        for key, rect in items:
            incremental.insert(key, rect)
        assert bulk.height <= incremental.height

    def test_bulk_tree_supports_further_mutation(self):
        items = random_items(200, seed=4)
        tree = str_bulk_load(items, max_entries=8)
        tree.insert(10_000, Rect(0.1, 0.1, 0.12, 0.12))
        tree.delete(0)
        tree.delete(1)
        tree.check_invariants()
        assert len(tree) == 199
        hits = {e.key for e in tree.search(Rect(0.09, 0.09, 0.13, 0.13))}
        assert 10_000 in hits

    def test_str_tail_not_underfull(self):
        # 17 items with fanout 16 would naively leave a 1-entry leaf.
        tree = str_bulk_load(random_items(17), max_entries=16)
        tree.check_invariants()
