"""The black box under fire: forced divergences trip the recorder and
failing chaos runs ship their last-N protocol events with the report."""

from __future__ import annotations

import json

from repro.check import ConsistencyOracle
from repro.core.server import LocationAwareServer
from repro.faults import default_plan, run_chaos
from repro.faults import __main__ as chaos_cli
from repro.geometry import Point, Rect
from repro.obs import FlightRecorder


def test_forced_divergence_dumps_causal_chain(tmp_path):
    """Tampering with the committed-answer store (a commit the client
    never saw) must trip the recorder, and the JSONL dump must let the
    reader reconstruct the divergent report -> delivery -> commit chain.
    """
    recorder = FlightRecorder(capacity=512)
    recorder.auto_dump_prefix = tmp_path / "blackbox"
    server = LocationAwareServer(grid_size=8, recorder=recorder)
    server.register_client(1)
    server.register_range_query(1, 100, Rect(0.0, 0.0, 0.5, 0.5))
    oracle = ConsistencyOracle(server)

    # A clean cycle: object 7 enters the answer, the update delivers.
    server.receive_object_report(7, Point(0.1, 0.1), 0.0)
    oracle.begin_cycle()
    result = server.evaluate_cycle(1.0)
    assert oracle.end_cycle(0, result.updates) == []
    server.receive_commit(100)

    # Corrupt the committed base: an object the client never received.
    server.commits.commit(100, frozenset({7, 999}))
    oracle.begin_cycle()
    result = server.evaluate_cycle(2.0)
    found = oracle.end_cycle(1, result.updates)
    assert any(d.kind == "commit" for d in found)

    assert recorder.triggered == "oracle_divergence"
    dump = tmp_path / "blackbox.jsonl"
    assert dump.exists()
    events = [json.loads(line) for line in dump.read_text().splitlines()]

    def first(kind, **match):
        return next(
            e
            for e in events
            if e["kind"] == kind
            and all(e.get(k) == v for k, v in match.items())
        )

    # The full causal chain around the divergent query is in the dump,
    # in protocol order: the report, its delivery, the (healthy)
    # acknowledgement, then the check that caught the corruption.
    report = first("uplink_report", oid=7)
    delivery = first("downlink", qid=100, oid=7, ok=True)
    commit = first("commit", qid=100)
    divergence = first("oracle_divergence", qid=100, check="commit")
    trigger = first("trigger", reason="oracle_divergence")
    assert (
        report["seq"]
        < delivery["seq"]
        < commit["seq"]
        < divergence["seq"]
        < trigger["seq"]
    )
    # The divergence names exactly the phantom object.
    assert divergence["oids"] == [999]
    # And the trace overlay dump rode along.
    assert (tmp_path / "blackbox.trace.json").exists()


def test_failed_chaos_run_embeds_flight_events_and_metrics():
    """A run that cannot converge (zero wakeup rounds allowed) must
    carry the ring and a metrics snapshot in its report."""
    report = run_chaos(
        "cell-batched",
        default_plan(1),
        cycles=10,
        n_objects=30,
        max_wakeup_rounds=0,
    )
    assert not report.ok
    assert report.flight_events, "failing run shipped no flight events"
    kinds = {e["kind"] for e in report.flight_events}
    assert "fault" in kinds  # injections are part of the story
    assert report.metrics["fault_injected_total"]["series"]
    payload = report.to_dict()
    assert payload["flight_events"] == report.flight_events
    json.dumps(payload)  # CHAOS_REPORT.json embeds it verbatim


def test_clean_chaos_run_ships_no_flight_events():
    report = run_chaos(
        "cell-batched", default_plan(1), cycles=10, n_objects=20
    )
    assert report.ok
    assert report.flight_events == []
    assert report.metrics == {}
    assert "flight_events" not in report.to_dict()


def test_cli_writes_flight_dump_per_failure(tmp_path, capsys):
    rc = chaos_cli.main(
        [
            "--pipelines",
            "cell-batched",
            "--seeds",
            "1",
            "--cycles",
            "10",
            "--objects",
            "30",
            "--report",
            str(tmp_path / "CHAOS_REPORT.json"),
            "--flight-dir",
            str(tmp_path / "flight"),
        ]
    )
    assert rc == 0  # healthy matrix: no dumps
    assert not (tmp_path / "flight").exists()


def test_cli_flight_dump_on_failure(tmp_path, monkeypatch):
    from repro.faults.harness import ChaosReport

    failing = ChaosReport(pipeline="cell-batched", seed=9, cycles=1)
    failing.flight_events = [
        {"seq": 1, "t": 0.0, "cycle": 0, "kind": "fault", "fault": "drop"}
    ]
    monkeypatch.setattr(
        chaos_cli, "run_chaos", lambda *args, **kwargs: failing
    )
    rc = chaos_cli.main(
        [
            "--pipelines",
            "cell-batched",
            "--seeds",
            "9",
            "--flight-dir",
            str(tmp_path / "flight"),
        ]
    )
    assert rc == 1
    dump = tmp_path / "flight" / "CHAOS_FLIGHT_cell-batched_9.jsonl"
    assert dump.exists()
    (line,) = dump.read_text().splitlines()
    assert json.loads(line)["kind"] == "fault"
