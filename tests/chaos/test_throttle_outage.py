"""Chaos scenario: throttle exhaustion and outage in the same cycle.

A client behind a byte-budgeted downlink generates more update traffic
than fits each cycle (budget exhaustion), while disconnect/wakeup pairs
land *within* the same cycles — the interleaving where budget
accounting and recovery bookkeeping can double-charge or double-count.
The consistency oracle must stay clean throughout and after clean
convergence, and throttle drops must stay disjoint from outage drops in
the exported counters.
"""

import random

import pytest

from repro.check import ConsistencyOracle
from repro.core.server import LocationAwareServer
from repro.geometry import Point, Rect

BUDGET = 40  # two 17-byte updates per cycle
N_OBJECTS = 12
REGION = Rect(0.05, 0.05, 0.95, 0.95)


def churn(server: LocationAwareServer, rng: random.Random, now: float) -> None:
    """Move every object somewhere random: plenty of +/- updates."""
    for oid in range(N_OBJECTS):
        inside = rng.random() < 0.5
        x = rng.uniform(0.1, 0.9) if inside else rng.uniform(0.96, 0.99)
        server.receive_object_report(oid, Point(x, x), now)


@pytest.mark.parametrize("seed", [42, 7])
def test_same_cycle_throttle_and_outage_keeps_oracle_clean(seed):
    server = LocationAwareServer(grid_size=8)
    server.register_client(1, downlink_budget=BUDGET)
    server.register_range_query(1, qid=10, region=REGION)
    link = server.link_of(1)
    oracle = ConsistencyOracle(server)
    rng = random.Random(seed)
    churn(server, rng, 0.0)

    for cycle in range(16):
        now = float(cycle + 1)
        churn(server, rng, now)
        phase = cycle % 4
        if phase == 1:
            link.disconnect()  # this cycle's evaluation runs dark
        elif phase == 2:
            # Wakeup AND a fresh outage inside one cycle: the partial
            # recovery (what fits the budget) must commit correctly
            # even though the link is dark again before evaluation.
            server.receive_wakeup(1)
            link.disconnect()
        elif phase == 3:
            # Wakeup in the same cycle as budget exhaustion: recovery
            # diffs and the cycle's own updates compete for 40 bytes.
            server.receive_wakeup(1)
        oracle.begin_cycle()
        result = server.evaluate_cycle(now)
        oracle.end_cycle(cycle, result.updates)

    # Clean convergence: repeated wakeups, each shipping what fits.
    rounds = 0
    while not oracle.in_sync(1):
        rounds += 1
        assert rounds <= 50, "throttled recovery failed to converge"
        server.receive_wakeup(1)
    oracle.begin_cycle()
    result = server.evaluate_cycle(100.0)
    oracle.end_cycle(99, result.updates)

    assert oracle.divergences == [], "\n".join(map(str, oracle.divergences))

    # Both fault families actually happened, and their counters are
    # disjoint: every rejected delivery is either throttled or dropped
    # (outage), never both.
    registry = server.registry
    throttled = registry.value_of(
        "link_throttled_messages_total", {"client": "1"}
    )
    dropped = registry.value_of(
        "link_dropped_messages_total", {"client": "1"}
    )
    assert throttled > 0
    assert dropped > 0
    assert throttled + dropped == server.stats.dropped_messages
    assert link.throttled_messages == throttled


def test_throttled_rejections_never_charge_budget_during_outage():
    """Regression companion: a cycle's outage losses must not eat the
    budget that post-reconnect recovery relies on in the same cycle."""
    server = LocationAwareServer(grid_size=8)
    server.register_client(1, downlink_budget=BUDGET)
    server.register_range_query(1, qid=10, region=REGION)
    link = server.link_of(1)
    rng = random.Random(7)
    churn(server, rng, 0.0)
    server.evaluate_cycle(0.5)
    link.drain()

    link.disconnect()
    churn(server, rng, 1.0)
    server.evaluate_cycle(1.0)  # everything dropped in the outage
    assert link.remaining_budget == BUDGET  # outage losses cost nothing
    batch = server.receive_wakeup(1)  # same-"period" recovery
    # The recovery had the whole budget available, so something landed.
    assert link.drain() or batch is not None
    assert server.commits.committed_answer(10) is not None
