"""The seeded chaos suite: every pipeline, several seeds, zero
divergences allowed.

Each run injects link drops, duplicates, cross-query reorders, client
outages with scheduled wakeups, delayed uplinks and (for the parallel
pipeline) worker crashes — with the consistency oracle cross-checking
replay, snapshot, commit and desync derivations every cycle, and a
clean convergence phase at the end.
"""

import pytest

from repro.faults import PIPELINES, default_plan, run_chaos

SEEDS = [1, 2, 3, 4, 5]


@pytest.mark.parametrize("pipeline", PIPELINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_run_is_clean(pipeline, seed):
    report = run_chaos(pipeline, default_plan(seed), cycles=15, n_objects=30)
    assert sum(report.faults.values()) > 0, "plan injected no faults"
    assert report.divergences == [], "\n".join(
        str(d) for d in report.divergences
    )
    assert report.converged, (
        f"clients failed to converge after {report.wakeup_rounds} wakeup rounds"
    )


def test_chaos_runs_are_deterministic():
    """Same (pipeline, seed) -> identical fault counts and outcomes."""
    a = run_chaos("cell-batched", default_plan(1), cycles=10, n_objects=20)
    b = run_chaos("cell-batched", default_plan(1), cycles=10, n_objects=20)
    assert a.faults == b.faults
    assert a.wakeup_rounds == b.wakeup_rounds
    assert a.to_dict() == b.to_dict()


def test_parallel_chaos_exercises_worker_crashes():
    report = run_chaos("parallel", default_plan(2), cycles=15, n_objects=30)
    assert report.faults.get("worker_crash", 0) > 0
    assert report.ok


def test_report_shape():
    report = run_chaos("per-object", default_plan(3), cycles=5, n_objects=10)
    payload = report.to_dict()
    assert payload["pipeline"] == "per-object"
    assert payload["seed"] == 3
    assert payload["ok"] is True
    assert isinstance(payload["faults"], dict)
