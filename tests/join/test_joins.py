"""Spatial joins: the three implementations agree with each other."""

import random

import pytest

from repro.geometry import Point, Rect
from repro.grid import Grid
from repro.join import grid_join, nested_loop_join, pbsm_join

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def workload(n_objects: int, n_queries: int, side: float, seed: int):
    rng = random.Random(seed)
    objects = {
        oid: Point(rng.random(), rng.random()) for oid in range(n_objects)
    }
    queries = {
        qid: Rect.square(Point(rng.random(), rng.random()), side)
        for qid in range(n_queries)
    }
    return objects, queries


class TestAgreement:
    @pytest.mark.parametrize("grid_size", [1, 4, 16, 50])
    @pytest.mark.parametrize("side", [0.01, 0.1, 0.5])
    def test_all_joins_agree(self, grid_size, side):
        objects, queries = workload(150, 60, side, seed=grid_size)
        grid = Grid(UNIT, grid_size)
        reference = nested_loop_join(objects, queries)
        assert grid_join(objects, queries, grid) == reference
        assert pbsm_join(objects, queries, grid) == reference

    def test_empty_inputs(self):
        grid = Grid(UNIT, 8)
        assert nested_loop_join({}, {}) == set()
        assert grid_join({}, {}, grid) == set()
        assert pbsm_join({}, {}, grid) == set()
        objects, __ = workload(10, 0, 0.1, 0)
        assert grid_join(objects, {}, grid) == set()
        __, queries = workload(0, 10, 0.1, 0)
        assert pbsm_join({}, queries, grid) == set()

    def test_query_covering_everything(self):
        objects, __ = workload(40, 0, 0.1, 3)
        queries = {99: UNIT}
        grid = Grid(UNIT, 8)
        want = {(oid, 99) for oid in objects}
        assert grid_join(objects, queries, grid) == want
        assert pbsm_join(objects, queries, grid) == want

    def test_boundary_points_included(self):
        # Objects sitting exactly on query borders and cell borders.
        objects = {1: Point(0.5, 0.5), 2: Point(0.25, 0.25)}
        queries = {10: Rect(0.25, 0.25, 0.5, 0.5)}
        grid = Grid(UNIT, 4)  # cell boundaries at multiples of 0.25
        want = {(1, 10), (2, 10)}
        assert nested_loop_join(objects, queries) == want
        assert grid_join(objects, queries, grid) == want
        assert pbsm_join(objects, queries, grid) == want

    def test_duplicate_suppression_with_straddling_queries(self):
        # Queries spanning many cells must not produce duplicate pairs.
        objects, queries = workload(80, 10, 0.6, seed=5)
        grid = Grid(UNIT, 10)
        result = pbsm_join(objects, queries, grid)
        assert result == nested_loop_join(objects, queries)
