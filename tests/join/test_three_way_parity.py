"""Three-way join parity on seeded randomized workloads.

The hypothesis suite checks each smart join pairwise against the
nested-loop oracle; this one asserts all three algorithms return the
*identical* pair set on the same randomized workload — a single
equality chain per seed, over workloads that deliberately include
cell-boundary-aligned coordinates and degenerate (zero-area) query
rectangles, where tile-assignment disagreements would show up first.
"""

from __future__ import annotations

import random

import pytest

from repro.geometry import Point, Rect
from repro.grid import Grid
from repro.join import grid_join, nested_loop_join, pbsm_join

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def build_workload(seed: int, grid_size: int):
    """Random points and rects, ~25% snapped to cell boundaries."""
    rng = random.Random(seed)
    step = 1.0 / grid_size

    def coord() -> float:
        if rng.random() < 0.25:
            return round(rng.randint(0, grid_size) * step, 12)
        return rng.random()

    objects = {
        oid: Point(coord(), coord()) for oid in range(rng.randint(20, 120))
    }
    queries = {}
    for qid in range(rng.randint(5, 40)):
        x1, x2 = sorted((coord(), coord()))
        y1, y2 = sorted((coord(), coord()))
        queries[qid] = Rect(x1, y1, x2, y2)
    return objects, queries


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("grid_size", [1, 4, 16])
def test_all_three_joins_agree(seed, grid_size):
    objects, queries = build_workload(seed * 31 + grid_size, grid_size)
    grid = Grid(UNIT, grid_size)
    reference = nested_loop_join(objects, queries)
    assert grid_join(objects, queries, grid) == reference
    assert pbsm_join(objects, queries, grid) == reference


def test_empty_inputs_agree():
    grid = Grid(UNIT, 8)
    assert nested_loop_join({}, {}) == set()
    assert grid_join({}, {}, grid) == set()
    assert pbsm_join({}, {}, grid) == set()
