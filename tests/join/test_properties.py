"""Property-based join agreement (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect
from repro.grid import Grid
from repro.join import grid_join, nested_loop_join, pbsm_join

UNIT = Rect(0.0, 0.0, 1.0, 1.0)
coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


@st.composite
def object_sets(draw):
    pairs = draw(
        st.lists(st.tuples(coord, coord), min_size=0, max_size=50)
    )
    return {oid: Point(x, y) for oid, (x, y) in enumerate(pairs)}


@st.composite
def query_sets(draw):
    rects = []
    for __ in range(draw(st.integers(0, 20))):
        x1, x2 = sorted((draw(coord), draw(coord)))
        y1, y2 = sorted((draw(coord), draw(coord)))
        rects.append(Rect(x1, y1, x2, y2))
    return {qid: rect for qid, rect in enumerate(rects)}


@settings(max_examples=60, deadline=None)
@given(object_sets(), query_sets(), st.integers(1, 20))
def test_grid_join_equals_nested_loop(objects, queries, grid_size):
    grid = Grid(UNIT, grid_size)
    assert grid_join(objects, queries, grid) == nested_loop_join(objects, queries)


@settings(max_examples=60, deadline=None)
@given(object_sets(), query_sets(), st.integers(1, 20))
def test_pbsm_join_equals_nested_loop(objects, queries, grid_size):
    grid = Grid(UNIT, grid_size)
    assert pbsm_join(objects, queries, grid) == nested_loop_join(objects, queries)
