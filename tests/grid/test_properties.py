"""Property-based tests for the grid (hypothesis)."""

from hypothesis import given, strategies as st

from repro.geometry import Point, Rect
from repro.grid import Grid, GridIndex

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

unit_coords = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
grid_sizes = st.integers(min_value=1, max_value=24)


@st.composite
def unit_rects(draw):
    x1, x2 = sorted((draw(unit_coords), draw(unit_coords)))
    y1, y2 = sorted((draw(unit_coords), draw(unit_coords)))
    return Rect(x1, y1, x2, y2)


class TestPartitionProperties:
    @given(grid_sizes, unit_coords, unit_coords)
    def test_home_cell_contains_point(self, n, x, y):
        grid = Grid(UNIT, n)
        p = Point(x, y)
        assert grid.cell_rect(grid.cell_of(p)).contains_point(p)

    @given(grid_sizes, unit_rects())
    def test_clipping_is_sound_and_complete(self, n, rect):
        """Clipped cells really touch the rect (soundness, judged on the
        closed cell rects), and every home cell of a sampled in-rect
        point is clipped (completeness under the grid's half-open
        boundary convention — a point on a shared cell border belongs to
        the higher cell, so the lower cell need not appear)."""
        grid = Grid(UNIT, n)
        got = grid.cells_overlapping_set(rect)
        for cell in got:
            assert grid.cell_rect(cell).intersects(rect)
        for i in range(5):
            for j in range(5):
                p = Point(
                    rect.min_x + rect.width * i / 4,
                    rect.min_y + rect.height * j / 4,
                )
                assert grid.cell_of(p) in got

    @given(grid_sizes, unit_coords, unit_coords, unit_rects())
    def test_point_in_rect_implies_home_cell_clipped(self, n, x, y, rect):
        """The completeness property candidate retrieval relies on: if a
        point is inside a region, its home cell is in the region's clip."""
        grid = Grid(UNIT, n)
        p = Point(x, y)
        if rect.contains_point(p):
            assert grid.cell_of(p) in grid.cells_overlapping_set(rect)


class TestIndexProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), unit_coords, unit_coords),
            min_size=1,
            max_size=60,
        ),
        unit_rects(),
    )
    def test_candidate_retrieval_is_complete(self, placements, region):
        """objects_overlapping never misses an object inside the region."""
        index = GridIndex(Grid(UNIT, 9))
        latest: dict[int, Point] = {}
        for oid, x, y in placements:
            latest[oid] = Point(x, y)
            index.place_object_at(oid, latest[oid])
        candidates = index.objects_overlapping(region)
        for oid, location in latest.items():
            if region.contains_point(location):
                assert oid in candidates

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), unit_coords, unit_coords),
            min_size=1,
            max_size=80,
        )
    )
    def test_repeated_placement_keeps_one_home(self, moves):
        """However an object moves, it occupies exactly one cell."""
        index = GridIndex(Grid(UNIT, 7))
        for oid, x, y in moves:
            index.place_object_at(oid, Point(x, y))
        for oid in {oid for oid, __, __ in moves}:
            assert len(index.object_cells(oid)) == 1
