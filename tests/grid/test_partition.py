"""Grid geometry: cell addressing, clipping, rings."""

import pytest

from repro.geometry import Point, Rect
from repro.grid import Grid

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


class TestConstruction:
    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            Grid(UNIT, 0)

    def test_rejects_zero_area_world(self):
        with pytest.raises(ValueError):
            Grid(Rect(0, 0, 0, 1), 4)

    def test_cell_count(self):
        assert Grid(UNIT, 5).cell_count == 25

    def test_cell_dimensions(self):
        g = Grid(Rect(0, 0, 2, 1), 4)
        assert g.cell_width == 0.5
        assert g.cell_height == 0.25


class TestAddressing:
    def test_every_point_has_exactly_one_cell(self):
        g = Grid(UNIT, 4)
        steps = 17
        for i in range(steps):
            for j in range(steps):
                cell = g.cell_of(Point(i / (steps - 1), j / (steps - 1)))
                assert 0 <= cell < g.cell_count

    def test_cell_of_matches_cell_rect(self):
        g = Grid(UNIT, 8)
        p = Point(0.33, 0.71)
        assert g.cell_rect(g.cell_of(p)).contains_point(p)

    def test_max_edge_folds_into_last_cell(self):
        g = Grid(UNIT, 4)
        assert g.cell_of(Point(1.0, 1.0)) == g.cell_count - 1

    def test_out_of_world_points_clamp(self):
        g = Grid(UNIT, 4)
        assert g.cell_of(Point(-5, -5)) == 0
        assert g.cell_of(Point(5, 5)) == g.cell_count - 1

    def test_cell_rect_out_of_range(self):
        g = Grid(UNIT, 2)
        with pytest.raises(IndexError):
            g.cell_rect(4)

    def test_cell_rects_tile_the_world(self):
        g = Grid(UNIT, 3)
        total = sum(g.cell_rect(c).area for c in range(g.cell_count))
        assert total == pytest.approx(UNIT.area)


class TestClipping:
    def test_cells_overlapping_whole_world(self):
        g = Grid(UNIT, 4)
        assert g.cells_overlapping_set(UNIT) == frozenset(range(16))

    def test_cells_overlapping_one_cell_interior(self):
        g = Grid(UNIT, 4)
        r = Rect(0.26, 0.26, 0.49, 0.49)  # strictly inside cell (1,1)
        assert g.cells_overlapping_set(r) == frozenset({5})

    def test_cells_overlapping_outside_world_is_empty(self):
        g = Grid(UNIT, 4)
        assert g.cells_overlapping_set(Rect(2, 2, 3, 3)) == frozenset()

    def test_overlap_is_sound_and_complete(self):
        g = Grid(UNIT, 6)
        region = Rect(0.1, 0.35, 0.62, 0.8)
        got = g.cells_overlapping_set(region)
        want = frozenset(
            c for c in range(g.cell_count) if g.cell_rect(c).intersects(region)
        )
        assert got == want

    def test_cells_overlapping_into_matches_generator(self):
        g = Grid(UNIT, 6)
        scratch: list[int] = []
        for region in (
            UNIT,
            Rect(0.1, 0.35, 0.62, 0.8),
            Rect(0.26, 0.26, 0.49, 0.49),
        ):
            got = g.cells_overlapping_into(region, scratch)
            assert got is scratch  # contract: returns the buffer itself
            assert got == list(g.cells_overlapping(region))

    def test_cells_overlapping_into_clears_stale_contents(self):
        g = Grid(UNIT, 4)
        scratch = [99, 98, 97]
        assert g.cells_overlapping_into(Rect(2, 2, 3, 3), scratch) == []
        assert scratch == []  # off-world region leaves an emptied buffer


class TestRings:
    def test_ring_zero_is_center(self):
        g = Grid(UNIT, 5)
        assert list(g.ring_around(12, 0)) == [12]

    def test_ring_one_is_neighbors(self):
        g = Grid(UNIT, 5)
        assert set(g.ring_around(12, 1)) == set(g.neighbors_of(12))

    def test_rings_partition_the_grid(self):
        g = Grid(UNIT, 7)
        center = g.cell_of(Point(0.1, 0.9))
        seen: set[int] = set()
        for radius in range(g.max_ring_radius(center) + 1):
            ring = set(g.ring_around(center, radius))
            assert not ring & seen, "rings overlap"
            seen |= ring
        assert seen == set(range(g.cell_count))

    def test_ring_clamps_at_world_edge(self):
        g = Grid(UNIT, 4)
        corner = g.cell_of(Point(0.0, 0.0))
        ring = set(g.ring_around(corner, 1))
        assert ring == {1, 4, 5}

    def test_max_ring_radius_corner(self):
        g = Grid(UNIT, 8)
        assert g.max_ring_radius(0) == 7
        center = g.cell_of(Point(0.5, 0.5))
        assert g.max_ring_radius(center) == 4
