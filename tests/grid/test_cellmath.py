"""Scalar/batch home-cell bit-identity (the shared cellmath kernel).

``Grid.cell_of`` and the batch kernel ``point_cells_batch`` must agree
bit for bit on every coordinate — including cell-boundary points, the
world edge, and out-of-world coordinates that clamp — because the batch
ingest path substitutes one for the other and the equivalence contract
is byte-identical update streams.  Hypothesis hunts the boundary cases;
a deterministic sweep pins exact cell-edge multiples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.columnar.backend import numpy_or_none
from repro.geometry import Point, Rect
from repro.grid import Grid
from repro.grid.cellmath import clamp_axis_index, point_cell, point_cells_batch

UNIT = Rect(0.0, 0.0, 1.0, 1.0)

np = numpy_or_none()
needs_numpy = pytest.mark.skipif(np is None, reason="numpy not installed")

# Coordinates straddling the world: in-world, clamped, and boundary.
coords = st.floats(
    min_value=-0.5, max_value=1.5, allow_nan=False, allow_infinity=False
)
grid_sizes = st.integers(min_value=1, max_value=64)


@given(grid_sizes, coords, coords)
def test_scalar_kernel_matches_grid_cell_of(n, x, y):
    grid = Grid(UNIT, n)
    p = Point(min(max(x, 0.0), 1.0), min(max(y, 0.0), 1.0))
    assert (
        point_cell(p.x, p.y, 0.0, 0.0, grid.cell_width, grid.cell_height, n)
        == grid.cell_of(p)
    )


@given(grid_sizes, st.lists(st.tuples(coords, coords), min_size=1, max_size=64))
@needs_numpy
def test_batch_kernel_matches_scalar_on_arbitrary_points(n, points):
    grid = Grid(UNIT, n)
    xs = np.asarray([x for x, _ in points])
    ys = np.asarray([y for _, y in points])
    got = point_cells_batch(xs, ys, grid, np).tolist()
    want = [
        point_cell(x, y, 0.0, 0.0, grid.cell_width, grid.cell_height, n)
        for x, y in points
    ]
    assert got == want


@needs_numpy
@pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 64])
def test_batch_kernel_bit_identical_on_cell_boundaries(n):
    """Exact cell-edge multiples: k/n for every k, plus the nearest
    floats on either side — where truncate-vs-floor or rounding drift
    between the scalar and vectorized forms would first show."""
    grid = Grid(UNIT, n)
    edges = []
    for k in range(n + 1):
        edge = k / n
        edges.extend(
            (
                max(0.0, min(1.0, v))
                for v in (
                    edge,
                    float(np.nextafter(edge, -1.0)),
                    float(np.nextafter(edge, 2.0)),
                )
            )
        )
    xs = np.asarray([x for x in edges for _ in edges])
    ys = np.asarray([y for _ in edges for y in edges])
    got = point_cells_batch(xs, ys, grid, np).tolist()
    want = [grid.cell_of(Point(x, y)) for x, y in zip(xs.tolist(), ys.tolist())]
    assert got == want


@given(
    st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    grid_sizes,
)
def test_clamp_axis_index_stays_in_range(value, n):
    idx = clamp_axis_index(value, 0.0, 1.0 / n, n)
    assert 0 <= idx <= n - 1
