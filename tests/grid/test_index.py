"""GridIndex: placement, movement, retrieval, bucket reclamation."""

import pytest

from repro.geometry import Point, Rect
from repro.grid import Grid, GridIndex

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def index() -> GridIndex:
    return GridIndex(Grid(UNIT, 8))


class TestObjects:
    def test_place_and_lookup(self, index):
        index.place_object_at(1, Point(0.1, 0.1))
        assert index.contains_object(1)
        assert index.object_count == 1
        cell = index.grid.cell_of(Point(0.1, 0.1))
        assert index.object_cells(1) == frozenset({cell})
        assert 1 in index.objects_in_cell(cell)

    def test_move_updates_cells(self, index):
        index.place_object_at(1, Point(0.05, 0.05))
        old_cell = index.grid.cell_of(Point(0.05, 0.05))
        index.place_object_at(1, Point(0.95, 0.95))
        new_cell = index.grid.cell_of(Point(0.95, 0.95))
        assert index.object_cells(1) == frozenset({new_cell})
        assert 1 not in index.objects_in_cell(old_cell)
        assert index.object_count == 1

    def test_multi_cell_footprint(self, index):
        cells = index.grid.cells_overlapping_set(Rect(0.0, 0.0, 0.5, 0.1))
        index.place_object(2, cells)
        assert index.object_cells(2) == cells
        for cell in cells:
            assert 2 in index.objects_in_cell(cell)

    def test_remove_object(self, index):
        index.place_object_at(1, Point(0.5, 0.5))
        index.remove_object(1)
        assert not index.contains_object(1)
        assert index.object_count == 0
        with pytest.raises(KeyError):
            index.remove_object(1)

    def test_empty_footprint_rejected(self, index):
        with pytest.raises(ValueError):
            index.place_object(1, frozenset())

    def test_move_point_object_relocates(self, index):
        index.place_object_at(1, Point(0.05, 0.05))
        old_cell = index.grid.cell_of(Point(0.05, 0.05))
        new_cell = index.grid.cell_of(Point(0.95, 0.95))
        index.move_point_object(1, old_cell, new_cell)
        assert index.object_cells(1) == frozenset({new_cell})
        assert 1 not in index.objects_in_cell(old_cell)
        assert 1 in index.objects_in_cell(new_cell)

    def test_move_point_object_same_cell_is_noop(self, index):
        index.place_object_at(1, Point(0.5, 0.5))
        cell = index.grid.cell_of(Point(0.5, 0.5))
        before = index.objects_in_cell(cell)
        index.move_point_object(1, cell, cell)
        assert index.object_cells(1) == frozenset({cell})
        assert index.objects_in_cell(cell) is before  # bucket untouched


class TestQueries:
    def test_place_query_region(self, index):
        region = Rect(0.2, 0.2, 0.45, 0.3)
        index.place_query_region(7, region)
        assert index.query_cells(7) == index.grid.cells_overlapping_set(region)

    def test_region_outside_world_clamps(self, index):
        index.place_query_region(7, Rect(2, 2, 3, 3))
        assert len(index.query_cells(7)) == 1

    def test_move_query(self, index):
        index.place_query_region(7, Rect(0.0, 0.0, 0.1, 0.1))
        index.place_query_region(7, Rect(0.9, 0.9, 1.0, 1.0))
        assert index.query_count == 1
        old_cell = index.grid.cell_of(Point(0.05, 0.05))
        assert 7 not in index.queries_in_cell(old_cell)

    def test_remove_query(self, index):
        index.place_query_region(7, Rect(0, 0, 1, 1))
        index.remove_query(7)
        assert not index.contains_query(7)
        assert index.populated_cell_count == 0


class TestRetrieval:
    def test_objects_overlapping_returns_candidates(self, index):
        index.place_object_at(1, Point(0.51, 0.51))
        index.place_object_at(2, Point(0.99, 0.99))
        found = index.objects_overlapping(Rect(0.5, 0.5, 0.6, 0.6))
        assert 1 in found  # exact hit
        assert 2 not in found  # far away

    def test_candidates_may_exceed_exact_matches(self, index):
        # An object in the same cell but outside the rect is a candidate.
        index.place_object_at(1, Point(0.51, 0.51))
        found = index.objects_overlapping(Rect(0.5, 0.5, 0.505, 0.505))
        assert 1 in found

    def test_queries_colocated_with_object(self, index):
        index.place_object_at(1, Point(0.5, 0.5))
        index.place_query_region(7, Rect(0.45, 0.45, 0.55, 0.55))
        index.place_query_region(8, Rect(0.0, 0.0, 0.05, 0.05))
        colocated = index.queries_colocated_with_object(1)
        assert 7 in colocated and 8 not in colocated


class TestZeroCopyViews:
    """The *_in_cell accessors return live bucket storage, not copies."""

    def test_views_alias_bucket_storage(self, index):
        index.place_object_at(1, Point(0.5, 0.5))
        cell = index.grid.cell_of(Point(0.5, 0.5))
        view = index.objects_in_cell(cell)
        assert view == {1}
        index.place_object_at(2, Point(0.5, 0.5))
        assert view == {1, 2}  # reflects later mutations
        index.remove_object(1)
        assert view == {2}

    def test_empty_cell_view_is_shared_and_immutable(self, index):
        view = index.objects_in_cell(3)
        assert view == frozenset()
        assert view is index.queries_in_cell(5)  # one shared sentinel
        with pytest.raises(AttributeError):
            view.add(1)  # accidental mutation fails loudly

    def test_snapshot_survives_index_mutation(self, index):
        index.place_object_at(1, Point(0.5, 0.5))
        cell = index.grid.cell_of(Point(0.5, 0.5))
        snapshot = set(index.objects_in_cell(cell))
        index.remove_object(1)
        assert snapshot == {1}  # the copy, unlike the view, is stable


class TestBuckets:
    def test_empty_buckets_are_reclaimed(self, index):
        index.place_object_at(1, Point(0.5, 0.5))
        assert index.populated_cell_count == 1
        index.remove_object(1)
        assert index.populated_cell_count == 0

    def test_bucket_shared_by_object_and_query(self, index):
        index.place_object_at(1, Point(0.5, 0.5))
        cell = index.grid.cell_of(Point(0.5, 0.5))
        index.place_query(9, frozenset({cell}))
        bucket = index.bucket(cell)
        assert bucket is not None
        assert 1 in bucket.objects and 9 in bucket.queries
        index.remove_object(1)
        assert index.bucket(cell) is not None  # query keeps it alive
        index.remove_query(9)
        assert index.bucket(cell) is None


class TestOccupancySampling:
    def populated_index(self):
        index = GridIndex(Grid(UNIT, 4))
        # Cell of (0.1, 0.1) gets 3 objects, two other cells get 1 each.
        for oid, point in enumerate(
            [
                Point(0.1, 0.1),
                Point(0.12, 0.12),
                Point(0.15, 0.1),
                Point(0.6, 0.6),
                Point(0.9, 0.1),
            ]
        ):
            index.place_object_at(oid, point)
        index.place_query_region(100, Rect(0.0, 0.0, 0.3, 0.3))
        return index

    def test_population_gauges(self):
        from repro.obs import MetricsRegistry

        index, registry = self.populated_index(), MetricsRegistry()
        index.sample_occupancy(registry)
        assert registry.value_of("grid_indexed_objects") == 5.0
        assert registry.value_of("grid_indexed_queries") == 1.0
        # Object cells {3} plus the query's clipped cells (query-only
        # cells are populated too): 4x4 grid, region (0,0)-(0.3,0.3)
        # covers a 2x2 block.
        assert registry.value_of("grid_populated_cells") == 6.0

    def test_occupancy_histogram_counts_populated_cells(self):
        from repro.obs import MetricsRegistry

        index, registry = self.populated_index(), MetricsRegistry()
        index.sample_occupancy(registry)
        hist = registry.histogram("grid_cell_occupancy")
        assert hist.count == 3           # one observation per populated cell
        assert hist.sum == 5.0           # total objects across cells

    def test_hot_cells_ranked_by_occupancy(self):
        from repro.obs import MetricsRegistry

        index, registry = self.populated_index(), MetricsRegistry()
        index.sample_occupancy(registry, top_k=2)
        top = registry.value_of("grid_hot_cell_occupancy", {"rank": "0"})
        second = registry.value_of("grid_hot_cell_occupancy", {"rank": "1"})
        assert top == 3.0 and second == 1.0
        hot_id = registry.value_of("grid_hot_cell_id", {"rank": "0"})
        assert hot_id == float(index.grid.cell_of(Point(0.1, 0.1)))

    def test_stale_ranks_zeroed_when_world_shrinks(self):
        from repro.obs import MetricsRegistry

        index, registry = self.populated_index(), MetricsRegistry()
        index.sample_occupancy(registry, top_k=5)
        for oid in range(1, 5):
            index.remove_object(oid)
        index.sample_occupancy(registry, top_k=5)
        assert registry.value_of("grid_hot_cell_occupancy", {"rank": "0"}) == 1.0
        for rank in ("1", "2", "3", "4"):
            assert (
                registry.value_of("grid_hot_cell_occupancy", {"rank": rank}) == 0.0
            )
            assert registry.value_of("grid_hot_cell_id", {"rank": rank}) == -1.0

    def test_null_registry_short_circuits(self):
        from repro.obs import NULL_REGISTRY

        index = self.populated_index()
        index.sample_occupancy(NULL_REGISTRY)  # must not raise or record
        assert NULL_REGISTRY.to_dict() == {}
