"""Property-based aggregate tests (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.aggregates import AggregateEngine, CellUpdate, CountUpdate
from repro.geometry import Point, Rect

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
oid_st = st.integers(0, 19)

op_st = st.one_of(
    st.tuples(st.just("report"), oid_st, coord, coord),
    st.tuples(st.just("remove"), oid_st, coord, coord),
)
run_st = st.lists(st.lists(op_st, max_size=8), min_size=1, max_size=6)


@st.composite
def regions(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


@settings(max_examples=60, deadline=None)
@given(run_st, regions(), st.integers(1, 12))
def test_counts_match_model_and_deltas_are_minimal(run, region, grid_size):
    engine = AggregateEngine(grid_size=grid_size)
    engine.register_count_query(100, region)
    engine.evaluate()
    model: dict[int, Point] = {}
    last_reported = 0

    for batch in run:
        for op in batch:
            if op[0] == "report":
                __, oid, x, y = op
                model[oid] = Point(x, y)
                engine.report_object(oid, model[oid])
            else:
                __, oid, __, __ = op
                model.pop(oid, None)
                engine.remove_object(oid)
        updates = [u for u in engine.evaluate() if isinstance(u, CountUpdate)]
        want = sum(1 for p in model.values() if region.contains_point(p))
        # Exactness: a fresh recount matches the model.
        assert engine.count_of(100) == want
        # Minimality: an update arrives iff the count changed.
        if want != last_reported:
            assert updates == [CountUpdate(100, want)]
            last_reported = want
        else:
            assert updates == []


@settings(max_examples=60, deadline=None)
@given(run_st, st.integers(1, 4), st.integers(2, 10))
def test_density_monitor_matches_model(run, threshold, grid_size):
    engine = AggregateEngine(grid_size=grid_size)
    engine.register_density_monitor(500, threshold)
    engine.evaluate()
    model: dict[int, Point] = {}
    reported_dense: set[int] = set()

    for batch in run:
        for op in batch:
            if op[0] == "report":
                __, oid, x, y = op
                model[oid] = Point(x, y)
                engine.report_object(oid, model[oid])
            else:
                __, oid, __, __ = op
                model.pop(oid, None)
                engine.remove_object(oid)
        updates = [u for u in engine.evaluate() if isinstance(u, CellUpdate)]
        for update in updates:
            if update.sign == 1:
                assert update.cell not in reported_dense
                reported_dense.add(update.cell)
            else:
                assert update.cell in reported_dense
                reported_dense.discard(update.cell)
        # The incrementally maintained set equals a model recount.
        counts: dict[int, int] = {}
        for p in model.values():
            cell = engine.grid.cell_of(p)
            counts[cell] = counts.get(cell, 0) + 1
        want = {cell for cell, n in counts.items() if n >= threshold}
        assert reported_dense == want
        assert engine.dense_cells_of(500) == frozenset(want)
