"""Continuous counts and density monitors."""

import random

import pytest

from repro.aggregates import AggregateEngine, CellUpdate, CountUpdate
from repro.geometry import Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def engine() -> AggregateEngine:
    return AggregateEngine(grid_size=8)


class TestObjectStream:
    def test_report_and_move(self, engine):
        engine.report_object(1, Point(0.1, 0.1))
        cell_a = engine.grid.cell_of(Point(0.1, 0.1))
        assert engine.cell_count(cell_a) == 1
        engine.report_object(1, Point(0.9, 0.9))
        assert engine.cell_count(cell_a) == 0
        assert engine.cell_count(engine.grid.cell_of(Point(0.9, 0.9))) == 1

    def test_remove(self, engine):
        engine.report_object(1, Point(0.1, 0.1))
        engine.remove_object(1)
        assert engine.object_count == 0
        assert engine.cell_count(engine.grid.cell_of(Point(0.1, 0.1))) == 0
        engine.remove_object(1)  # tolerated

    def test_move_within_cell(self, engine):
        engine.report_object(1, Point(0.11, 0.11))
        engine.report_object(1, Point(0.12, 0.12))
        assert engine.cell_count(engine.grid.cell_of(Point(0.11, 0.11))) == 1


class TestCountQueries:
    def test_initial_count_reported(self, engine):
        engine.report_object(1, Point(0.5, 0.5))
        engine.register_count_query(100, Rect(0.4, 0.4, 0.6, 0.6))
        assert engine.evaluate() == [CountUpdate(100, 1)]

    def test_zero_count_is_still_reported_once(self, engine):
        engine.register_count_query(100, Rect(0.4, 0.4, 0.6, 0.6))
        assert engine.evaluate() == [CountUpdate(100, 0)]
        assert engine.evaluate() == []

    def test_silent_when_count_unchanged(self, engine):
        engine.report_object(1, Point(0.5, 0.5))
        engine.report_object(2, Point(0.9, 0.9))
        engine.register_count_query(100, Rect(0.4, 0.4, 0.6, 0.6))
        engine.evaluate()
        # One object leaves, another enters: net count unchanged.
        engine.report_object(1, Point(0.95, 0.95))
        engine.report_object(2, Point(0.45, 0.45))
        assert engine.evaluate() == []

    def test_count_changes_are_reported(self, engine):
        engine.report_object(1, Point(0.5, 0.5))
        engine.register_count_query(100, Rect(0.4, 0.4, 0.6, 0.6))
        engine.evaluate()
        engine.report_object(2, Point(0.55, 0.55))
        assert engine.evaluate() == [CountUpdate(100, 2)]

    def test_matches_brute_force_under_churn(self, engine):
        rng = random.Random(7)
        locations = {oid: Point(rng.random(), rng.random()) for oid in range(150)}
        for oid, location in locations.items():
            engine.report_object(oid, location)
        regions = {
            100 + i: Rect.square(Point(rng.random(), rng.random()), 0.3)
            for i in range(10)
        }
        for qid, region in regions.items():
            engine.register_count_query(qid, region)
        engine.evaluate()
        for __ in range(5):
            for oid in rng.sample(sorted(locations), 50):
                locations[oid] = Point(rng.random(), rng.random())
                engine.report_object(oid, locations[oid])
            engine.evaluate()
            for qid, region in regions.items():
                want = sum(
                    1 for p in locations.values() if region.contains_point(p)
                )
                assert engine.count_of(qid) == want

    def test_boundary_objects_counted_exactly(self, engine):
        # Object exactly on the region border counts (closed semantics).
        engine.report_object(1, Point(0.4, 0.4))
        engine.register_count_query(100, Rect(0.4, 0.4, 0.6, 0.6))
        assert engine.evaluate() == [CountUpdate(100, 1)]

    def test_duplicate_qid_rejected(self, engine):
        engine.register_count_query(100, UNIT)
        with pytest.raises(KeyError):
            engine.register_count_query(100, UNIT)
        with pytest.raises(KeyError):
            engine.register_density_monitor(100, 5)


class TestDensityMonitors:
    def test_threshold_must_be_positive(self, engine):
        with pytest.raises(ValueError):
            engine.register_density_monitor(100, 0)

    def test_cell_becomes_dense(self, engine):
        engine.register_density_monitor(100, threshold=3)
        assert engine.evaluate() == []
        for oid in range(3):
            engine.report_object(oid, Point(0.51 + oid * 0.001, 0.51))
        cell = engine.grid.cell_of(Point(0.51, 0.51))
        assert engine.evaluate() == [CellUpdate(100, cell, 1)]
        assert engine.dense_cells_of(100) == frozenset({cell})

    def test_cell_stops_being_dense(self, engine):
        engine.register_density_monitor(100, threshold=2)
        engine.report_object(1, Point(0.51, 0.51))
        engine.report_object(2, Point(0.52, 0.52))
        engine.evaluate()
        engine.report_object(2, Point(0.9, 0.9))
        cell = engine.grid.cell_of(Point(0.51, 0.51))
        assert engine.evaluate() == [CellUpdate(100, cell, -1)]
        assert engine.dense_cells_of(100) == frozenset()

    def test_stable_density_is_silent(self, engine):
        engine.register_density_monitor(100, threshold=2)
        engine.report_object(1, Point(0.51, 0.51))
        engine.report_object(2, Point(0.52, 0.52))
        engine.evaluate()
        engine.report_object(1, Point(0.515, 0.515))  # stays in cell
        assert engine.evaluate() == []

    def test_multiple_monitors_with_different_thresholds(self, engine):
        engine.register_density_monitor(100, threshold=1)
        engine.register_density_monitor(200, threshold=3)
        engine.report_object(1, Point(0.51, 0.51))
        updates = engine.evaluate()
        cell = engine.grid.cell_of(Point(0.51, 0.51))
        assert updates == [CellUpdate(100, cell, 1)]

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            CellUpdate(1, 2, 0)


class TestLifecycle:
    def test_unregister(self, engine):
        engine.register_count_query(100, UNIT)
        engine.register_density_monitor(200, 2)
        engine.unregister(100)
        engine.unregister(200)
        with pytest.raises(KeyError):
            engine.unregister(100)
        assert engine.evaluate() == []
