"""Service-area semantics: clamped locations, clipped regions.

Regression suite for a real bug: an object whose reported location (or
predicted trajectory) left the unit world could satisfy the un-clipped
portion of a query region that also hung off the map — geometry the
grid cannot index, so the incremental engine silently missed the
update while the TPR baseline reported it.  The fix makes the service
area authoritative for every engine: locations clamp into the world,
regions clip to it.
"""


from repro.baselines import (
    PerQueryEngine,
    QIndexEngine,
    SnapshotEngine,
    TprPredictiveEngine,
    VCIEngine,
)
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect, Velocity


class TestClamping:
    def test_off_world_report_is_clamped(self):
        engine = IncrementalEngine(grid_size=8)
        engine.report_object(1, Point(1.5, -0.5), 0.0)
        engine.evaluate(0.0)
        assert engine.objects[1].location == Point(1.0, 0.0)

    def test_edge_straddling_region_is_clipped(self):
        engine = IncrementalEngine(grid_size=8)
        engine.register_range_query(100, Rect(0.9, 0.9, 1.2, 1.2))
        engine.evaluate(0.0)
        assert engine.queries[100].region == Rect(0.9, 0.9, 1.0, 1.0)

    def test_fully_off_world_region_pins_to_boundary(self):
        engine = IncrementalEngine(grid_size=8)
        engine.report_object(1, Point(1.0, 1.0), 0.0)
        engine.register_range_query(100, Rect(2.0, 2.0, 3.0, 3.0))
        engine.evaluate(0.0)
        # Pinned at (1, 1): the clamped corner object is exactly there.
        assert engine.answer_of(100) == frozenset({1})


class TestCrossEngineAgreementAtTheEdge:
    def test_regression_trajectory_through_off_world_region_chunk(self):
        """The exact scenario that diverged: an object at the north
        edge whose trajectory crossed the off-world part of a region.
        Both engines must now agree (on the clipped geometry)."""
        region = Rect(0.7114, 0.9670, 0.7615, 1.0170)  # pokes above y=1
        incremental = IncrementalEngine(grid_size=64, prediction_horizon=60.0)
        tpr = TprPredictiveEngine(horizon=60.0)
        location = Point(0.6529, 1.0008)  # off-world report
        velocity = Velocity(0.0016456, 0.0004558)
        for engine in (incremental, tpr):
            engine.report_object(753, location, 5.0, velocity)
        incremental.register_predictive_query(22, region, 40.0, t=5.0)
        tpr.register_predictive_query(22, region, 40.0)
        incremental.evaluate(5.0)
        answers = tpr.evaluate(5.0)
        assert answers[22] == incremental.answer_of(22)

    def test_range_engines_agree_on_edge_workload(self):
        """Objects and queries pushed at/over the boundary: all range
        engines produce identical answers."""
        locations = {
            1: Point(1.0, 1.0),
            2: Point(0.99, 1.3),  # clamps to (0.99, 1.0)
            3: Point(-0.2, 0.5),  # clamps to (0.0, 0.5)
        }
        regions = {
            100: Rect(0.95, 0.95, 1.10, 1.10),
            200: Rect(-0.5, 0.4, 0.05, 0.6),
            300: Rect(1.5, 1.5, 2.0, 2.0),  # fully off-world
        }
        engines = [
            IncrementalEngine(grid_size=16),
            SnapshotEngine(grid_size=16),
            QIndexEngine(),
            PerQueryEngine(),
            VCIEngine(max_speed=0.01),
        ]
        for engine in engines:
            for oid, location in locations.items():
                engine.report_object(oid, location, 0.0)
            for qid, region in regions.items():
                engine.register_range_query(qid, region)
        engines[-1].rebuild(0.0)
        incremental = engines[0]
        incremental.evaluate(0.0)
        reference = {qid: incremental.answer_of(qid) for qid in regions}
        for engine in engines[1:]:
            answers = engine.evaluate(0.0)
            for qid in regions:
                assert answers[qid] == reference[qid], (type(engine), qid)

    def test_expected_edge_answers(self):
        engine = IncrementalEngine(grid_size=16)
        engine.report_object(1, Point(1.0, 1.0), 0.0)
        engine.report_object(2, Point(0.99, 1.3), 0.0)
        engine.report_object(3, Point(-0.2, 0.5), 0.0)
        engine.register_range_query(100, Rect(0.95, 0.95, 1.10, 1.10))
        engine.register_range_query(200, Rect(-0.5, 0.4, 0.05, 0.6))
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({1, 2})
        assert engine.answer_of(200) == frozenset({3})
