"""Engine work counters and per-phase wall-clock timings."""

from repro.core import IncrementalEngine
from repro.core.engine import EVALUATION_PHASES, EngineStats
from repro.geometry import Point, Rect


def test_fresh_engine_has_zero_stats():
    engine = IncrementalEngine(grid_size=8)
    assert engine.stats == EngineStats()


def test_counters_track_one_busy_evaluation():
    engine = IncrementalEngine(grid_size=8)
    engine.report_object(1, Point(0.5, 0.5), 0.0)
    engine.report_object(2, Point(0.6, 0.6), 0.0)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.7, 0.7))
    engine.register_knn_query(200, Point(0.5, 0.5), 1)
    engine.evaluate(0.0)

    assert engine.stats.evaluations == 1
    assert engine.stats.object_reports == 2
    assert engine.stats.query_registrations == 2
    assert engine.stats.knn_repairs == 1  # first-time k-NN solve
    assert engine.stats.updates_emitted == 3  # 2 range positives + 1 knn


def test_counters_accumulate_across_evaluations():
    engine = IncrementalEngine(grid_size=8)
    engine.report_object(1, Point(0.5, 0.5), 0.0)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
    engine.evaluate(0.0)
    engine.move_range_query(100, Rect(0.1, 0.1, 0.2, 0.2), 1.0)
    engine.remove_object(1)
    engine.evaluate(1.0)
    engine.unregister_query(100)
    engine.evaluate(2.0)

    assert engine.stats.evaluations == 3
    assert engine.stats.query_moves == 1
    assert engine.stats.object_removals == 1
    assert engine.stats.query_unregistrations == 1


def test_quiet_evaluations_only_bump_the_evaluation_count():
    engine = IncrementalEngine(grid_size=8)
    engine.evaluate(0.0)
    engine.evaluate(1.0)
    assert engine.stats.evaluations == 2
    assert engine.stats.updates_emitted == 0
    assert engine.stats.knn_repairs == 0


def test_scripted_multi_batch_scenario_counts_everything():
    """Counters across a scripted three-batch life cycle, both pipelines."""
    for pipeline in ("cell-batched", "per-object"):
        engine = IncrementalEngine(grid_size=8, pipeline=pipeline)
        # Batch 1: population + a query of each kind.
        for oid in range(6):
            engine.report_object(oid, Point(0.1 + 0.1 * oid, 0.5), 0.0)
        engine.register_range_query(100, Rect(0.0, 0.4, 0.35, 0.6))
        engine.register_knn_query(200, Point(0.2, 0.5), 2)
        engine.register_predictive_query(300, Rect(0.5, 0.4, 0.9, 0.6), 10.0)
        engine.evaluate(0.0)
        # Batch 2: moves on both sides plus a departure.
        engine.report_object(0, Point(0.9, 0.9), 1.0)
        engine.move_range_query(100, Rect(0.5, 0.4, 0.95, 0.6), 1.0)
        engine.remove_object(5)
        engine.evaluate(1.0)
        # Batch 3: tear-down.
        engine.unregister_query(200)
        engine.evaluate(2.0)

        stats = engine.stats
        assert stats.evaluations == 3
        assert stats.object_reports == 7
        assert stats.object_removals == 1
        assert stats.query_registrations == 3
        assert stats.query_moves == 1
        assert stats.query_unregistrations == 1
        assert stats.knn_repairs >= 1


def test_last_report_wins_within_a_batch():
    """A device reporting twice in one period supersedes itself: the
    batch applies (and counts) only the last buffered report."""
    engine = IncrementalEngine(grid_size=8)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
    engine.evaluate(0.0)

    engine.report_object(1, Point(0.5, 0.5), 1.0)  # inside the region...
    engine.report_object(1, Point(0.9, 0.9), 1.0)  # ...superseded: outside
    updates = engine.evaluate(1.0)

    assert engine.stats.object_reports == 1
    assert updates == []
    assert engine.answer_of(100) == frozenset()
    assert engine.objects[1].location == Point(0.9, 0.9)


def test_phase_seconds_cover_every_evaluation_phase():
    engine = IncrementalEngine(grid_size=8)
    assert engine.stats.phase_seconds == {}
    engine.report_object(1, Point(0.5, 0.5), 0.0)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
    engine.evaluate(0.0)

    assert set(engine.stats.phase_seconds) == set(EVALUATION_PHASES)
    assert all(t >= 0.0 for t in engine.stats.phase_seconds.values())


def test_phase_seconds_accumulate_across_evaluations():
    engine = IncrementalEngine(grid_size=8)
    engine.report_object(1, Point(0.5, 0.5), 0.0)
    engine.evaluate(0.0)
    first = dict(engine.stats.phase_seconds)
    engine.report_object(1, Point(0.6, 0.6), 1.0)
    engine.evaluate(1.0)
    second = engine.stats.phase_seconds
    assert set(second) == set(EVALUATION_PHASES)
    for name, seconds in second.items():
        assert seconds >= first[name]


def test_knn_repairs_count_only_dirty_queries():
    engine = IncrementalEngine(grid_size=8)
    for oid in range(4):
        engine.report_object(oid, Point(0.1 + 0.05 * oid, 0.5), 0.0)
    engine.register_knn_query(200, Point(0.1, 0.5), 2)
    engine.evaluate(0.0)
    repairs_after_setup = engine.stats.knn_repairs
    # An object far from the circle moves: no repair needed.
    engine.report_object(3, Point(0.9, 0.9), 1.0)
    engine.evaluate(1.0)
    assert engine.stats.knn_repairs == repairs_after_setup
