"""Recovery under a throttled downlink (the commit/delivery fixes).

The scenario that motivated this PR's bugfixes: a client behind a
byte-budgeted link disconnects, misses a burst of updates, and wakes
up — but the recovery response itself doesn't fit the budget.  The
server must commit only what was delivered, so that repeated wakeups
re-send exactly the missing remainder and the client converges to
``engine.answer_of(qid)``.
"""

from repro.core.client import Client
from repro.core.server import LocationAwareServer
from repro.geometry import Point, Rect

REGION = Rect(0.2, 0.2, 0.8, 0.8)
BUDGET = 40  # two 17-byte updates per cycle / per wakeup


def make_stack():
    server = LocationAwareServer(grid_size=8)
    client = Client(1, server, downlink_budget=BUDGET)
    server.register_range_query(1, qid=10, region=REGION)
    client.track_query(10)
    return server, client


class TestRecoveryUnderThrottle:
    def test_client_converges_over_repeated_wakeups(self):
        server, client = make_stack()
        client.disconnect()
        for oid in range(8):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)  # 8 updates, all lost in the outage

        client.reconnect()  # first wakeup: only 2 updates fit
        assert len(client.answer_of(10)) == 2
        assert server.commits.committed_answer(10) == client.answer_of(10)

        wakeups = 1
        while client.answer_of(10) != server.engine.answer_of(10):
            wakeups += 1
            assert wakeups <= 10, "recovery failed to converge"
            client.reconnect()
        assert wakeups == 4  # ceil(8 / 2) wakeups to ship 8 updates
        assert server.commits.committed_answer(10) == server.engine.answer_of(10)

    def test_commit_after_partial_delivery_is_not_ahead_of_client(self):
        """The headline regression: the committed answer must equal what
        the client holds after a partially-delivered recovery, never the
        full live answer."""
        server, client = make_stack()
        client.disconnect()
        for oid in range(8):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)
        client.reconnect()
        committed = server.commits.committed_answer(10)
        assert committed == client.answer_of(10)
        assert len(committed) == 2
        assert committed != server.engine.answer_of(10)
        # Second wakeup ships the next slice of the missing delta.
        client.reconnect()
        assert len(client.answer_of(10)) == 4
        assert server.commits.committed_answer(10) == client.answer_of(10)

    def test_throttled_cycle_commit_reflects_delivery(self):
        """An explicit commit after a throttled cycle records the
        delivered subset, not the full engine answer."""
        server, client = make_stack()
        for oid in range(8):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)
        result = server.evaluate_cycle(1.0)
        assert result.delivered_updates == 2
        assert result.dropped_updates == 6
        client.send_commit(10)
        assert server.commits.committed_answer(10) == client.answer_of(10)
        assert len(server.commits.committed_answer(10)) == 2
        # The next wakeup completes the answer from the honest base.
        rounds = 0
        while client.answer_of(10) != server.engine.answer_of(10):
            rounds += 1
            assert rounds <= 10
            client.reconnect()
        assert client.answer_of(10) == server.engine.answer_of(10)

    def test_unthrottled_recovery_still_single_shot(self):
        """No budget, no faults: one wakeup fully resynchronises (the
        original Section 3.3 behaviour is unchanged)."""
        server = LocationAwareServer(grid_size=8)
        client = Client(1, server)
        server.register_range_query(1, qid=10, region=REGION)
        client.track_query(10)
        client.disconnect()
        for oid in range(8):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)
        client.reconnect()
        assert client.answer_of(10) == server.engine.answer_of(10)
        assert server.commits.committed_answer(10) == client.answer_of(10)


class TestNaiveRecoveryAccounting:
    def test_wakeup_uplink_is_recorded(self):
        """`recover_naive` now records the wakeup uplink it responds to,
        like `receive_wakeup` always did."""
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        server.register_range_query(1, qid=10, region=REGION)
        server.evaluate_cycle(0.0)
        before = server.stats.uplink_messages
        server.recover_naive(1)
        assert server.stats.uplink_messages == before + 1
        assert server.stats.by_type["uplink:WakeupMessage"] == 1

    def test_undelivered_full_answer_is_not_committed(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1, downlink_budget=20)  # < 16 + 8*2 bytes
        server.register_range_query(1, qid=10, region=REGION)
        for oid in range(4):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)
        server.link_of(1).disconnect()
        bytes_sent = server.recover_naive(1)
        assert bytes_sent == 0  # 48-byte answer over a 20-byte budget
        assert server.commits.committed_answer(10) == frozenset()
