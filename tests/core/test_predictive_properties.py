"""Property-based tests for predictive query processing (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core import IncrementalEngine, apply_updates
from repro.geometry import LinearMotion, Point, Rect, Velocity

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
speed = st.floats(min_value=-0.0078125, max_value=0.0078125, allow_nan=False, width=32)
oid_st = st.integers(0, 9)

report_st = st.tuples(oid_st, coord, coord, speed, speed)
batch_st = st.lists(report_st, max_size=6)
run_st = st.lists(batch_st, min_size=1, max_size=5)

HORIZON = 50.0
PREDICTION_HORIZON = 100.0


@st.composite
def regions(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    return Rect(x1, y1, x2, y2)


def oracle_membership(engine: IncrementalEngine, qid: int) -> set[int]:
    """Brute-force predicted membership from raw engine state."""
    query = engine.queries[qid]
    members = set()
    for oid, state in engine.objects.items():
        start = max(engine.now, state.t)
        end = min(
            engine.now + query.horizon, state.t + engine.prediction_horizon
        )
        if end < start:
            continue
        motion = LinearMotion(state.location, state.velocity, state.t)
        if motion.time_in_rect(query.region, start, end) is not None:
            members.add(oid)
    return members


@settings(max_examples=50, deadline=None)
@given(run_st, regions(), st.integers(2, 12))
def test_predictive_answers_match_oracle(run, region, grid_size):
    engine = IncrementalEngine(
        grid_size=grid_size, prediction_horizon=PREDICTION_HORIZON
    )
    engine.register_predictive_query(500, region, HORIZON)
    engine.evaluate(0.0)
    previous = set(engine.answer_of(500))

    now = 0.0
    for batch in run:
        now += 7.0
        for oid, x, y, vx, vy in batch:
            engine.report_object(oid, Point(x, y), now, Velocity(vx, vy))
        updates = engine.evaluate(now)
        engine.check_invariants()

        got = set(engine.answer_of(500))
        assert got == oracle_membership(engine, 500)

        replayed = apply_updates(previous, [u for u in updates if u.qid == 500])
        assert replayed == got
        previous = got


@settings(max_examples=50, deadline=None)
@given(batch_st, regions())
def test_window_drift_without_reports_matches_oracle(batch, region):
    """Answers stay oracle-correct as time passes with NO new reports —
    the sliding-window refresh is doing the work."""
    engine = IncrementalEngine(grid_size=8, prediction_horizon=PREDICTION_HORIZON)
    engine.register_predictive_query(500, region, HORIZON)
    for oid, x, y, vx, vy in batch:
        engine.report_object(oid, Point(x, y), 0.0, Velocity(vx, vy))
    engine.evaluate(0.0)
    for now in (10.0, 25.0, 49.0, 80.0, 120.0):
        engine.evaluate(now)
        assert set(engine.answer_of(500)) == oracle_membership(engine, 500)
