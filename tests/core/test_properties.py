"""Property-based tests on the engine's central invariants.

Two properties carry the whole design:

1. **Oracle equivalence** — after any sequence of buffered reports,
   moves, removals and evaluations, every answer set equals a
   brute-force recomputation over current state.
2. **Update-stream consistency** — a client that starts from the
   previously reported answers and applies the emitted updates in order
   arrives at exactly the new answers.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import IncrementalEngine, apply_updates
from repro.geometry import Point, Rect

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
oid_st = st.integers(0, 14)
qid_st = st.integers(100, 107)

# One scripted action per tuple; a batch is a list of actions, a run is
# a list of batches separated by evaluate() calls.
action_st = st.one_of(
    st.tuples(st.just("report"), oid_st, coord, coord),
    st.tuples(st.just("remove"), oid_st, coord, coord),
    st.tuples(st.just("move_q"), qid_st, coord, coord),
)
run_st = st.lists(st.lists(action_st, max_size=8), min_size=1, max_size=6)


def brute_force_range_answers(engine: IncrementalEngine) -> dict[int, set[int]]:
    answers: dict[int, set[int]] = {}
    for qid, query in engine.queries.items():
        answers[qid] = {
            oid
            for oid, state in engine.objects.items()
            if query.region.contains_point(state.location)
        }
    return answers


@settings(max_examples=60, deadline=None)
@given(run_st, st.integers(1, 12))
def test_range_answers_match_oracle_and_streams_are_consistent(run, grid_size):
    engine = IncrementalEngine(grid_size=grid_size)
    for qid in range(100, 108):
        engine.register_range_query(qid, Rect.square(Point(0.5, 0.5), 0.3))
    previous = {qid: set() for qid in range(100, 108)}
    engine.evaluate(0.0)
    # Registration itself emits the (empty) first-time answers.
    previous = {qid: set(engine.answer_of(qid)) for qid in range(100, 108)}

    now = 0.0
    for batch in run:
        now += 1.0
        for action in batch:
            if action[0] == "report":
                __, oid, x, y = action
                engine.report_object(oid, Point(x, y), now)
            elif action[0] == "remove":
                oid = action[1]
                if oid in engine.objects or oid in engine._pending_reports:
                    engine.remove_object(oid)
                else:
                    # Unknown ids now fail fast with a KeyError.
                    with pytest.raises(KeyError, match=str(oid)):
                        engine.remove_object(oid)
            else:
                __, qid, x, y = action
                engine.move_range_query(qid, Rect.square(Point(x, y), 0.3), now)
        updates = engine.evaluate(now)
        engine.check_invariants()

        # Property 1: oracle equivalence.
        oracle = brute_force_range_answers(engine)
        for qid in range(100, 108):
            assert set(engine.answer_of(qid)) == oracle[qid]

        # Property 2: update-stream consistency.
        for qid in range(100, 108):
            own_updates = [u for u in updates if u.qid == qid]
            replayed = apply_updates(previous[qid], own_updates)
            assert replayed == set(engine.answer_of(qid)), qid
            previous[qid] = replayed


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(oid_st, coord, coord), min_size=1, max_size=25),
    st.lists(st.tuples(oid_st, coord, coord), max_size=25),
    st.integers(1, 6),
)
def test_knn_answers_match_oracle(initial, moves, k):
    engine = IncrementalEngine(grid_size=10)
    locations: dict[int, Point] = {}
    for oid, x, y in initial:
        locations[oid] = Point(x, y)
        engine.report_object(oid, locations[oid], 0.0)
    center = Point(0.5, 0.5)
    engine.register_knn_query(500, center, k)
    engine.evaluate(0.0)

    for step, (oid, x, y) in enumerate(moves, start=1):
        locations[oid] = Point(x, y)
        engine.report_object(oid, locations[oid], float(step))
        engine.evaluate(float(step))
        want = {
            o
            for __, o in sorted(
                (p.distance_to(center), o) for o, p in locations.items()
            )[:k]
        }
        assert set(engine.answer_of(500)) == want


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(oid_st, coord, coord), min_size=1, max_size=30))
def test_no_duplicate_live_memberships(reports):
    """After any run, answer sets and reverse lists agree exactly."""
    engine = IncrementalEngine(grid_size=8)
    engine.register_range_query(100, Rect(0.25, 0.25, 0.75, 0.75))
    for step, (oid, x, y) in enumerate(reports):
        engine.report_object(oid, Point(x, y), float(step))
        if step % 3 == 0:
            engine.evaluate(float(step))
    engine.evaluate(float(len(reports)))
    engine.check_invariants()
