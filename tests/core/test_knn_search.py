"""Expanding-ring k-NN search over the grid."""

import random

import pytest

from repro.core.knn import knn_search
from repro.core.state import ObjectState
from repro.geometry import Point, Rect, Velocity
from repro.grid import Grid, GridIndex

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


def populate(count: int, seed: int, grid_size: int = 12):
    rng = random.Random(seed)
    index = GridIndex(Grid(UNIT, grid_size))
    objects: dict[int, ObjectState] = {}
    for oid in range(count):
        location = Point(rng.random(), rng.random())
        objects[oid] = ObjectState(oid, location, Velocity.ZERO, 0.0)
        index.place_object_at(oid, location)
    return index, objects


def brute(objects, center, k, exclude=None):
    ranked = sorted(
        (state.location.distance_to(center), oid)
        for oid, state in objects.items()
        if not (exclude and oid in exclude)
    )
    return ranked[:k]


class TestKnnSearch:
    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, k, seed):
        index, objects = populate(120, seed)
        for center in (Point(0.5, 0.5), Point(0.02, 0.98), Point(0.9, 0.1)):
            got = knn_search(index, objects, center, k)
            want = brute(objects, center, k)
            assert [oid for __, oid in got] == [oid for __, oid in want]
            for (gd, __), (wd, __) in zip(got, want):
                assert gd == pytest.approx(wd)

    def test_population_smaller_than_k(self):
        index, objects = populate(4, seed=3)
        got = knn_search(index, objects, Point(0.5, 0.5), 10)
        assert len(got) == 4

    def test_empty_population(self):
        index = GridIndex(Grid(UNIT, 8))
        assert knn_search(index, {}, Point(0.5, 0.5), 3) == []

    def test_exclusion(self):
        index, objects = populate(60, seed=4)
        center = Point(0.4, 0.6)
        full = knn_search(index, objects, center, 5)
        excluded = {full[0][1], full[1][1]}
        got = knn_search(index, objects, center, 5, exclude=excluded)
        want = brute(objects, center, 5, exclude=excluded)
        assert [oid for __, oid in got] == [oid for __, oid in want]

    def test_k_must_be_positive(self):
        index, objects = populate(5, seed=5)
        with pytest.raises(ValueError):
            knn_search(index, objects, Point(0, 0), 0)

    def test_results_sorted_by_distance(self):
        index, objects = populate(80, seed=6)
        got = knn_search(index, objects, Point(0.3, 0.3), 12)
        distances = [d for d, __ in got]
        assert distances == sorted(distances)

    def test_center_outside_world(self):
        index, objects = populate(40, seed=7)
        got = knn_search(index, objects, Point(2.0, 2.0), 3)
        want = brute(objects, Point(2.0, 2.0), 3)
        assert [oid for __, oid in got] == [oid for __, oid in want]

    def test_tie_break_by_oid(self):
        index = GridIndex(Grid(UNIT, 8))
        objects = {}
        # Two objects equidistant from the probe.
        for oid, location in ((5, Point(0.4, 0.5)), (2, Point(0.6, 0.5))):
            objects[oid] = ObjectState(oid, location, Velocity.ZERO, 0.0)
            index.place_object_at(oid, location)
        got = knn_search(index, objects, Point(0.5, 0.5), 1)
        assert got[0][1] == 2  # smaller oid wins the tie
