"""Predictive range query processing."""

import pytest

from repro.core import IncrementalEngine, Update
from repro.geometry import Point, Rect, Velocity


@pytest.fixture
def engine():
    return IncrementalEngine(grid_size=8, prediction_horizon=100.0)


REGION = Rect(0.4, 0.4, 0.5, 0.5)


class TestMembership:
    def test_object_heading_into_region(self, engine):
        # Reaches x=0.4 at t=30, inside a 50 s horizon.
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.01, 0.0))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        updates = engine.evaluate(0.0)
        assert updates == [Update.positive(100, 1)]

    def test_object_too_slow_for_horizon(self, engine):
        # Reaches x=0.4 at t=60 > 50 s horizon.
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.005, 0.0))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        assert engine.evaluate(0.0) == []

    def test_object_heading_away(self, engine):
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(-0.01, 0.0))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        assert engine.evaluate(0.0) == []

    def test_stationary_object_inside_region(self, engine):
        engine.report_object(1, Point(0.45, 0.45), 0.0)
        engine.register_predictive_query(100, REGION, horizon=50.0)
        assert engine.evaluate(0.0) == [Update.positive(100, 1)]

    def test_stationary_object_outside_region(self, engine):
        engine.report_object(1, Point(0.2, 0.2), 0.0)
        engine.register_predictive_query(100, REGION, horizon=50.0)
        assert engine.evaluate(0.0) == []


class TestWindowDrift:
    def test_object_enters_answer_as_window_slides(self, engine):
        # Reaches region at t=60; enters the 50 s window at t=10.
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.005, 0.0))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        assert engine.evaluate(0.0) == []
        assert engine.evaluate(5.0) == []
        assert engine.evaluate(15.0) == [Update.positive(100, 1)]

    def test_object_leaves_answer_after_passing_through(self, engine):
        # Crosses the region during t in [30, 40], then exits.
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.01, 0.0))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({1})
        # At t=45 the object is at x=0.55, beyond the region, moving away.
        assert engine.evaluate(45.0) == [Update.negative(100, 1)]


class TestUpdatesAndMoves:
    def test_velocity_change_updates_answer(self, engine):
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.01, 0.0))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        engine.evaluate(0.0)
        # The object turns around.
        engine.report_object(1, Point(0.15, 0.45), 5.0, Velocity(-0.01, 0.0))
        assert engine.evaluate(5.0) == [Update.negative(100, 1)]

    def test_example_iii_shape(self, engine):
        """Example III: only changed predictions produce tuples."""
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.01, 0.0))
        engine.report_object(2, Point(0.45, 0.1), 0.0, Velocity(0.0, 0.01))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({1, 2})
        # Object 1 keeps its course (re-reports consistent data): silent.
        # Object 2 veers off: negative update.
        engine.report_object(1, Point(0.15, 0.45), 5.0, Velocity(0.01, 0.0))
        engine.report_object(2, Point(0.45, 0.15), 5.0, Velocity(0.01, 0.0))
        updates = engine.evaluate(5.0)
        assert updates == [Update.negative(100, 2)]

    def test_moving_predictive_query(self, engine):
        engine.report_object(1, Point(0.45, 0.45), 0.0)
        engine.register_predictive_query(100, REGION, horizon=50.0)
        engine.evaluate(0.0)
        engine.move_predictive_query(100, Rect(0.8, 0.8, 0.9, 0.9), 1.0)
        assert engine.evaluate(1.0) == [Update.negative(100, 1)]


class TestEdges:
    def test_object_drifting_off_world_keeps_a_home_cell(self, engine):
        """Regression: a predictive object whose whole predicted
        trajectory lies outside the world must clamp to a border cell
        instead of crashing with an empty footprint."""
        engine.register_predictive_query(100, REGION, horizon=50.0)
        engine.report_object(1, Point(0.99, 0.5), 0.0, Velocity(0.01, 0.0))
        engine.evaluate(0.0)
        engine.report_object(1, Point(1.5, 0.5), 60.0, Velocity(0.01, 0.0))
        engine.evaluate(60.0)  # must not raise
        engine.check_invariants()
        assert engine.answer_of(100) == frozenset()

    def test_report_after_long_silence_still_valid(self, engine):
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.01, 0.0))
        engine.register_predictive_query(100, REGION, horizon=50.0)
        engine.evaluate(0.0)
        # No report for 90 s: the trusted extrapolation span has run out,
        # so the window clamps empty and membership drops.
        updates = engine.evaluate(150.0)
        assert updates == [Update.negative(100, 1)]


class TestValidation:
    def test_horizon_must_fit_prediction_horizon(self, engine):
        with pytest.raises(ValueError):
            engine.register_predictive_query(100, REGION, horizon=1000.0)
        with pytest.raises(ValueError):
            engine.register_predictive_query(101, REGION, horizon=0.0)
