"""The update algebra: construction, diffing, application."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Update, UpdateBatch, UpdateList, apply_updates, diff_answers


class TestUpdate:
    def test_signs(self):
        assert Update.positive(1, 2).is_positive
        assert not Update.negative(1, 2).is_positive

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            Update(1, 2, 0)

    def test_paper_notation(self):
        assert str(Update.positive(1, 5)) == "(Q1, +p5)"
        assert str(Update.negative(2, 7)) == "(Q2, -p7)"


class TestDiff:
    def test_identical_sets_produce_nothing(self):
        assert diff_answers(1, {1, 2}, {1, 2}) == []

    def test_pure_additions(self):
        updates = diff_answers(1, set(), {3, 1, 2})
        assert updates == [
            Update.positive(1, 1),
            Update.positive(1, 2),
            Update.positive(1, 3),
        ]

    def test_pure_removals(self):
        updates = diff_answers(1, {3, 1}, set())
        assert updates == [Update.negative(1, 1), Update.negative(1, 3)]

    def test_negatives_precede_positives(self):
        updates = diff_answers(9, {1}, {2})
        assert updates == [Update.negative(9, 1), Update.positive(9, 2)]


class TestApply:
    def test_round_trip(self):
        old, new = {1, 2, 3}, {2, 4}
        assert apply_updates(old, diff_answers(7, old, new)) == new

    def test_apply_does_not_mutate_input(self):
        answer = {1, 2}
        apply_updates(answer, [Update.negative(1, 1)])
        assert answer == {1, 2}

    def test_redundant_updates_are_idempotent(self):
        answer = apply_updates({1}, [Update.positive(9, 1), Update.negative(9, 5)])
        assert answer == {1}

    def test_order_matters_for_conflicts(self):
        ups = [Update.negative(1, 5), Update.positive(1, 5)]
        assert apply_updates({5}, ups) == {5}
        assert apply_updates({5}, list(reversed(ups))) == set()


updates_strategy = st.lists(
    st.builds(
        Update,
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=50),
        st.sampled_from([1, -1]),
    ),
    max_size=60,
)


class TestUpdateBatch:
    def test_push_materialises_lazily(self):
        batch = UpdateBatch()
        batch.push(1, 5, 1)
        batch.push(2, 7, -1)
        assert len(batch) == 2
        assert list(batch) == [Update.positive(1, 5), Update.negative(2, 7)]
        assert batch[1] == Update.negative(2, 7)
        assert batch[0:1] == [Update.positive(1, 5)]

    def test_equals_update_list(self):
        batch = UpdateBatch.from_updates([Update.positive(3, 9)])
        assert batch == [Update.positive(3, 9)]
        assert [Update.positive(3, 9)] == batch
        assert batch != [Update.negative(3, 9)]
        assert UpdateBatch() == []

    def test_extend_columns_splices_slices(self):
        batch = UpdateBatch()
        batch.extend_columns([1, 2], [10, 20], [1, -1])
        assert batch.to_list() == [
            Update.positive(1, 10),
            Update.negative(2, 20),
        ]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch([1], [2, 3], [1])

    def test_update_list_same_emission_api(self):
        materialized = UpdateList()
        materialized.push(1, 5, 1)
        materialized.extend_columns([2], [6], [-1])
        assert materialized == [Update.positive(1, 5), Update.negative(2, 6)]
        assert list(materialized.tuples()) == [(1, 5, 1), (2, 6, -1)]

    @given(updates_strategy)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_is_identity(self, updates):
        """batch → materialized Update list → batch is the identity."""
        batch = UpdateBatch.from_updates(updates)
        materialized = batch.to_list()
        assert materialized == updates
        rebuilt = UpdateBatch.from_updates(materialized)
        assert rebuilt == batch
        assert rebuilt.qids == batch.qids
        assert rebuilt.oids == batch.oids
        assert rebuilt.signs == batch.signs

    @given(updates_strategy)
    @settings(max_examples=200, deadline=None)
    def test_fifo_order_preserved_per_qid(self, updates):
        batch = UpdateBatch.from_updates(updates)
        for qid in {u.qid for u in updates}:
            assert [u for u in batch if u.qid == qid] == [
                u for u in updates if u.qid == qid
            ]

    @given(updates_strategy, st.sets(st.integers(0, 50)))
    @settings(max_examples=200, deadline=None)
    def test_apply_updates_batch_matches_list(self, updates, answer):
        batch = UpdateBatch.from_updates(updates)
        assert apply_updates(answer, batch) == apply_updates(answer, updates)

    def test_diff_answers_into_batch(self):
        into = UpdateBatch()
        out = diff_answers(9, {1, 3}, {2, 3}, into=into)
        assert out is into
        assert into == [Update.negative(9, 1), Update.positive(9, 2)]
        # Appends after existing content, preserving FIFO.
        diff_answers(4, set(), {7}, into=into)
        assert into[-1] == Update.positive(4, 7)
