"""The update algebra: construction, diffing, application."""

import pytest

from repro.core import Update, apply_updates, diff_answers


class TestUpdate:
    def test_signs(self):
        assert Update.positive(1, 2).is_positive
        assert not Update.negative(1, 2).is_positive

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            Update(1, 2, 0)

    def test_paper_notation(self):
        assert str(Update.positive(1, 5)) == "(Q1, +p5)"
        assert str(Update.negative(2, 7)) == "(Q2, -p7)"


class TestDiff:
    def test_identical_sets_produce_nothing(self):
        assert diff_answers(1, {1, 2}, {1, 2}) == []

    def test_pure_additions(self):
        updates = diff_answers(1, set(), {3, 1, 2})
        assert updates == [
            Update.positive(1, 1),
            Update.positive(1, 2),
            Update.positive(1, 3),
        ]

    def test_pure_removals(self):
        updates = diff_answers(1, {3, 1}, set())
        assert updates == [Update.negative(1, 1), Update.negative(1, 3)]

    def test_negatives_precede_positives(self):
        updates = diff_answers(9, {1}, {2})
        assert updates == [Update.negative(9, 1), Update.positive(9, 2)]


class TestApply:
    def test_round_trip(self):
        old, new = {1, 2, 3}, {2, 4}
        assert apply_updates(old, diff_answers(7, old, new)) == new

    def test_apply_does_not_mutate_input(self):
        answer = {1, 2}
        apply_updates(answer, [Update.negative(1, 1)])
        assert answer == {1, 2}

    def test_redundant_updates_are_idempotent(self):
        answer = apply_updates({1}, [Update.positive(9, 1), Update.negative(9, 5)])
        assert answer == {1}

    def test_order_matters_for_conflicts(self):
        ups = [Update.negative(1, 5), Update.positive(1, 5)]
        assert apply_updates({5}, ups) == {5}
        assert apply_updates({5}, list(reversed(ups))) == set()
