"""Naive recovery must keep the same observability bookkeeping as the
incremental wakeup path (the ablation compares strategies, not gaps).

Regression: ``recover_naive`` used to skip the flight recorder's
``wakeup_begin``/``wakeup_end`` events and never attributed the
full-answer members in the freshness tracker, so a naive-recovery run
looked artificially quiet next to ``receive_wakeup``.
"""

from repro.core.server import LocationAwareServer
from repro.geometry import Point, Rect
from repro.obs import FlightRecorder

REGION = Rect(0.1, 0.1, 0.9, 0.9)


def make_server(budget: int | None = None) -> LocationAwareServer:
    server = LocationAwareServer(
        grid_size=8, recorder=FlightRecorder(capacity=256)
    )
    server.register_client(1, downlink_budget=budget)
    server.register_range_query(1, qid=10, region=REGION)
    for oid in range(4):
        server.receive_object_report(oid, Point(0.5, 0.5), 0.0)
    server.evaluate_cycle(1.0)
    return server


def events_of(server: LocationAwareServer, kind: str) -> list[dict]:
    return [
        event
        for event in server.recorder.events()
        if event["kind"] == kind and event.get("via") == "naive"
    ]


class TestRecorderParity:
    def test_naive_recovery_brackets_with_wakeup_events(self):
        server = make_server()
        server.link_of(1).disconnect()
        server.recover_naive(1)
        begins = events_of(server, "wakeup_begin")
        ends = events_of(server, "wakeup_end")
        assert len(begins) == 1
        assert begins[0]["client"] == 1
        assert len(ends) == 1
        assert ends[0]["recovered"] == 1  # one query's answer delivered

    def test_rejected_answer_reports_zero_recovered(self):
        # Budget below one FullAnswerMessage: delivery is rejected.
        server = make_server(budget=16)
        server.link_of(1).disconnect()
        server.recover_naive(1)
        ends = events_of(server, "wakeup_end")
        assert len(ends) == 1
        assert ends[0]["recovered"] == 0


class TestFreshnessParity:
    def test_delivered_answer_members_are_attributed(self):
        server = make_server()
        before = server.freshness.stage_summary()
        delivered_before = (
            before.get("delivery", {}).get("positive", {}).get("count", 0)
        )
        server.link_of(1).disconnect()
        server.recover_naive(1)
        after = server.freshness.stage_summary()
        delivered_after = after["delivery"]["positive"]["count"]
        # All four answer members attributed by the full-answer delivery.
        assert delivered_after == delivered_before + 4

    def test_rejected_answer_counts_undelivered(self):
        server = make_server(budget=16)
        server.link_of(1).disconnect()
        before = server.registry.value_of(
            "freshness_undelivered_updates_total"
        )
        server.recover_naive(1)
        after = server.registry.value_of("freshness_undelivered_updates_total")
        assert after == before + 4  # every member of the rejected answer


def test_naive_and_incremental_wakeup_record_symmetrically():
    """Same outage, both strategies: both paths emit one begin/end pair."""
    naive = make_server()
    naive.link_of(1).disconnect()
    naive.recover_naive(1)

    incremental = make_server()
    incremental.link_of(1).disconnect()
    incremental.receive_wakeup(1)

    def kinds(server):
        return [
            event["kind"]
            for event in server.recorder.events()
            if event["kind"] in ("wakeup_begin", "wakeup_end")
        ]

    assert kinds(naive) == kinds(incremental) == ["wakeup_begin", "wakeup_end"]
