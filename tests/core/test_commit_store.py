"""CommittedAnswerStore unit tests and server engine adoption."""

import pytest

from repro.core import CommittedAnswerStore, IncrementalEngine, LocationAwareServer, Update
from repro.geometry import Point, Rect


class TestCommittedAnswerStore:
    def test_default_committed_answer_is_empty(self):
        store = CommittedAnswerStore()
        assert store.committed_answer(1) == frozenset()

    def test_commit_and_read_back(self):
        store = CommittedAnswerStore()
        store.commit(1, frozenset({1, 2, 3}))
        assert store.committed_answer(1) == frozenset({1, 2, 3})
        assert store.tracked_queries() == {1}

    def test_recommit_overwrites(self):
        store = CommittedAnswerStore()
        store.commit(1, frozenset({1}))
        store.commit(1, frozenset({2}))
        assert store.committed_answer(1) == frozenset({2})

    def test_forget(self):
        store = CommittedAnswerStore()
        store.commit(1, frozenset({1}))
        store.forget(1)
        assert store.committed_answer(1) == frozenset()
        store.forget(99)  # tolerated

    def test_recovery_updates_are_the_exact_diff(self):
        store = CommittedAnswerStore()
        store.commit(7, frozenset({1, 2}))
        updates = store.recovery_updates(7, frozenset({1, 3, 4}))
        assert updates == [
            Update.negative(7, 2),
            Update.positive(7, 3),
            Update.positive(7, 4),
        ]

    def test_recovery_from_no_commit_is_full_positive_answer(self):
        store = CommittedAnswerStore()
        updates = store.recovery_updates(7, frozenset({5, 6}))
        assert updates == [Update.positive(7, 5), Update.positive(7, 6)]

    def test_recovery_when_nothing_changed_is_empty(self):
        store = CommittedAnswerStore()
        store.commit(7, frozenset({1}))
        assert store.recovery_updates(7, frozenset({1})) == []


class TestEngineAdoption:
    def test_server_adopts_restored_engine(self):
        engine = IncrementalEngine(grid_size=8)
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        engine.register_range_query(500, Rect(0.4, 0.4, 0.6, 0.6))
        engine.evaluate(0.0)

        server = LocationAwareServer(engine=engine)
        server.register_client(1)
        server.adopt_query(500, client_id=1)
        assert server.queries_of(1) == frozenset({500})
        # The adopted query keeps flowing updates through the server.
        server.receive_object_report(1, Point(0.9, 0.9), 1.0)
        result = server.evaluate_cycle(1.0)
        assert len(result.updates) == 1

    def test_adopt_unknown_query_raises(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        with pytest.raises(KeyError):
            server.adopt_query(999, client_id=1)

    def test_adopt_requires_known_client(self):
        engine = IncrementalEngine(grid_size=8)
        engine.register_range_query(500, Rect(0, 0, 1, 1))
        engine.evaluate(0.0)
        server = LocationAwareServer(engine=engine)
        with pytest.raises(KeyError):
            server.adopt_query(500, client_id=42)
