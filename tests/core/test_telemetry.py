"""Registry/tracer instrumentation across engine and server."""

import pytest

from repro.core import IncrementalEngine, LocationAwareServer
from repro.core.engine import EVALUATION_PHASES
from repro.geometry import Point, Rect
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullTracer,
    prometheus_text,
)


def busy_engine(**kwargs) -> IncrementalEngine:
    engine = IncrementalEngine(grid_size=8, **kwargs)
    engine.report_object(1, Point(0.5, 0.5), 0.0)
    engine.report_object(2, Point(0.2, 0.8), 0.0)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.7, 0.7))
    engine.register_knn_query(200, Point(0.5, 0.5), 1)
    engine.evaluate(0.0)
    return engine


class TestEngineRegistry:
    def test_counters_match_stats_snapshot(self):
        engine = busy_engine()
        reg = engine.registry
        assert reg.value_of("engine_evaluations_total") == 1.0
        assert reg.value_of("engine_object_reports_total") == 2.0
        assert reg.value_of("engine_query_registrations_total") == 2.0
        assert reg.value_of("engine_knn_repairs_total") == 1.0
        assert reg.value_of("engine_updates_emitted_total") == float(
            engine.stats.updates_emitted
        )

    def test_population_gauges_track_engine(self):
        engine = busy_engine()
        assert engine.registry.value_of("engine_objects") == 2.0
        assert engine.registry.value_of("engine_queries") == 2.0
        engine.remove_object(1)
        engine.evaluate(1.0)
        assert engine.registry.value_of("engine_objects") == 1.0

    def test_phase_counters_back_phase_seconds(self):
        engine = busy_engine()
        for phase in EVALUATION_PHASES:
            assert engine.registry.value_of(
                "engine_phase_seconds_total", {"phase": phase}
            ) == engine.stats.phase_seconds[phase]

    def test_two_engines_have_isolated_registries(self):
        a = busy_engine()
        b = IncrementalEngine(grid_size=8)
        assert b.registry.value_of("engine_evaluations_total") == 0.0
        assert a.registry is not b.registry

    def test_injected_registry_is_used(self):
        reg = MetricsRegistry()
        engine = IncrementalEngine(grid_size=8, registry=reg)
        engine.evaluate(0.0)
        assert engine.registry is reg
        assert reg.value_of("engine_evaluations_total") == 1.0

    def test_grid_occupancy_sampled_per_evaluation(self):
        engine = busy_engine()
        snap = engine.registry.to_dict()
        assert snap["grid_cell_occupancy"]["series"][0]["count"] >= 2
        assert engine.registry.value_of("grid_indexed_objects") == 2.0
        hot = engine.registry.value_of(
            "grid_hot_cell_occupancy", {"rank": "0"}
        )
        assert hot >= 1.0

    def test_exports_as_prometheus_text(self):
        engine = busy_engine()
        text = prometheus_text(engine.registry)
        assert "engine_evaluations_total 1.0" in text
        assert 'engine_phase_seconds_total{phase="object_reports"}' in text


class TestEngineTracer:
    def test_every_phase_emits_a_span(self):
        engine = busy_engine()
        names = {record.name for record in engine.tracer.events}
        assert set(EVALUATION_PHASES) <= names
        assert "evaluate" in names

    def test_phase_spans_nest_under_evaluate(self):
        engine = busy_engine()
        depths = {r.name: r.depth for r in engine.tracer.events}
        assert depths["evaluate"] == 0
        assert all(depths[phase] == 1 for phase in EVALUATION_PHASES)

    def test_null_tracer_keeps_phase_metrics(self):
        engine = busy_engine(tracer=NullTracer())
        assert engine.tracer.events == []
        assert set(engine.stats.phase_seconds) == set(EVALUATION_PHASES)

    def test_raising_phase_still_records_lap_and_span(self):
        """Satellite regression: an exception mid-phase must not lose
        the elapsed time (or the span) of the phase that failed."""
        engine = IncrementalEngine(grid_size=8)
        engine.register_knn_query(200, Point(0.5, 0.5), 1)

        def boom(knn_dirty, updates):
            raise RuntimeError("repair failed")

        engine._repair_knn = boom
        with pytest.raises(RuntimeError):
            engine.evaluate(0.0)

        stats = engine.stats
        assert stats.evaluations == 1
        assert "knn_repair" in stats.phase_seconds
        assert stats.phase_seconds["registrations"] > 0.0
        failed = [r for r in engine.tracer.events if r.name == "knn_repair"]
        assert failed and failed[0].error
        outer = [r for r in engine.tracer.events if r.name == "evaluate"]
        assert outer and outer[0].error


class TestNullRegistryEngine:
    def test_evaluation_still_correct(self):
        engine = busy_engine(registry=NULL_REGISTRY)
        assert engine.answer_of(100) == frozenset({1})
        assert engine.registry.to_dict() == {}

    def test_stats_surface_goes_dark_not_broken(self):
        engine = busy_engine(registry=NULL_REGISTRY)
        assert engine.stats.evaluations == 0
        assert engine.stats.phase_seconds == {}


class TestServerTelemetry:
    def make_server(self) -> LocationAwareServer:
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        server.register_range_query(1, 100, Rect(0.4, 0.4, 0.7, 0.7))
        return server

    def test_server_shares_engine_registry_and_tracer(self):
        server = self.make_server()
        assert server.registry is server.engine.registry
        assert server.tracer is server.engine.tracer

    def test_cycle_latency_histogram(self):
        server = self.make_server()
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)
        server.evaluate_cycle(1.0)
        hist = server.registry.histogram("server_cycle_seconds")
        assert hist.count == 2
        assert hist.sum > 0.0

    def test_cycle_spans_nest_engine_phases(self):
        server = self.make_server()
        server.evaluate_cycle(0.0)
        depths = {r.name: r.depth for r in server.tracer.events}
        assert depths["cycle"] == 0
        assert depths["evaluate"] == 1
        assert depths["downlink"] == 1
        assert depths["object_reports"] == 2

    def test_delivery_counters_and_savings_gauge(self):
        server = self.make_server()
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        result = server.evaluate_cycle(0.0)
        assert result.delivered_updates == 1
        reg = server.registry
        assert reg.value_of("server_updates_delivered_total") == 1.0
        assert reg.value_of("server_incremental_bytes_total") == float(
            result.incremental_bytes
        )
        assert reg.value_of("server_savings_ratio") == pytest.approx(
            result.savings_ratio
        )

    def test_wakeup_recovery_counters(self):
        server = self.make_server()
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)
        server.receive_commit(100)
        server.link_of(1).disconnect()
        server.receive_object_report(1, Point(0.9, 0.9), 1.0)
        server.evaluate_cycle(1.0)  # negative update lost in transit
        sent = server.receive_wakeup(1)
        reg = server.registry
        assert reg.value_of("server_wakeups_total") == 1.0
        assert reg.value_of("server_recovery_updates_total") == float(len(sent))
        assert len(sent) == 1


class TestSavingsRatioGuards:
    """Satellite: zero-denominator cycles must yield 0.0, not raise."""

    def test_cycle_result_with_no_queries(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        result = server.evaluate_cycle(0.0)
        assert result.complete_bytes == 0
        assert result.savings_ratio == 0.0

    def test_server_ratio_before_any_cycle(self):
        assert LocationAwareServer(grid_size=8).savings_ratio() == 0.0

    def test_server_ratio_after_empty_cycles_only(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        server.evaluate_cycle(0.0)
        server.evaluate_cycle(1.0)
        assert server.savings_ratio() == 0.0
        assert server.registry.value_of("server_savings_ratio") == 0.0

    def test_server_ratio_accumulates_across_cycles(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        server.register_range_query(1, 100, Rect(0.0, 0.0, 1.0, 1.0))
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)  # one positive update ships
        server.evaluate_cycle(1.0)  # quiet: 0 incremental, >0 complete
        ratio = server.savings_ratio()
        assert 0.0 < ratio < 1.0
