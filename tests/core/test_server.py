"""The location-aware server: routing, accounting, persistence."""

import pytest

from repro.core import Client, LocationAwareServer
from repro.geometry import Point, Rect
from repro.storage import BufferPool, HistoryRepository, InMemoryDiskManager

REGION = Rect(0.4, 0.4, 0.6, 0.6)


class TestClientManagement:
    def test_register_and_lookup(self):
        server = LocationAwareServer(grid_size=8)
        link = server.register_client(7)
        assert server.link_of(7) is link
        with pytest.raises(KeyError):
            server.register_client(7)

    def test_query_ownership(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        server.register_client(2)
        server.register_range_query(1, 100, REGION)
        server.register_knn_query(2, 200, Point(0.5, 0.5), 3)
        assert server.queries_of(1) == frozenset({100})
        assert server.queries_of(2) == frozenset({200})

    def test_register_query_for_unknown_client_raises(self):
        server = LocationAwareServer(grid_size=8)
        with pytest.raises(KeyError):
            server.register_range_query(99, 100, REGION)

    def test_unregister_query(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        server.register_range_query(1, 100, REGION)
        server.unregister_query(100)
        assert server.queries_of(1) == frozenset()
        with pytest.raises(KeyError):
            server.unregister_query(100)


class TestRouting:
    def test_updates_reach_only_the_owner(self):
        server = LocationAwareServer(grid_size=8)
        alice = Client(1, server)
        bob = Client(2, server)
        server.register_range_query(1, 100, REGION)
        alice.track_query(100)
        server.register_range_query(2, 200, Rect(0.8, 0.8, 0.9, 0.9))
        bob.track_query(200)
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)
        alice.pump()
        bob.pump()
        assert alice.answer_of(100) == frozenset({1})
        assert bob.answer_of(200) == frozenset()

    def test_dropped_vs_delivered_counts(self):
        server = LocationAwareServer(grid_size=8)
        client = Client(1, server)
        server.register_range_query(1, 100, REGION)
        client.track_query(100)
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        result = server.evaluate_cycle(0.0)
        assert result.delivered_updates == 1 and result.dropped_updates == 0
        client.disconnect()
        server.receive_object_report(1, Point(0.9, 0.9), 1.0)
        result = server.evaluate_cycle(1.0)
        assert result.delivered_updates == 0 and result.dropped_updates == 1


class TestAccounting:
    def test_incremental_bytes_match_update_count(self):
        server = LocationAwareServer(grid_size=8)
        Client(1, server)
        server.register_range_query(1, 100, REGION)
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        result = server.evaluate_cycle(0.0)
        assert result.incremental_bytes == len(result.updates) * 17

    def test_complete_bytes_cover_all_queries(self):
        server = LocationAwareServer(grid_size=8)
        Client(1, server)
        server.register_range_query(1, 100, REGION)
        server.register_range_query(1, 200, REGION)
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        result = server.evaluate_cycle(0.0)
        # Two answers of one member each: 2 * (16 + 8).
        assert result.complete_bytes == 48

    def test_quiet_cycle_still_pays_complete_bytes(self):
        """The crux of Figure 5: a cycle with no changes costs zero
        incremental bytes but full retransmission cost for a snapshot
        server."""
        server = LocationAwareServer(grid_size=8)
        Client(1, server)
        server.register_range_query(1, 100, REGION)
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)
        result = server.evaluate_cycle(1.0)  # nothing changed
        assert result.incremental_bytes == 0
        assert result.complete_bytes == 24

    def test_savings_ratio(self):
        server = LocationAwareServer(grid_size=8)
        Client(1, server)
        server.register_range_query(1, 100, REGION)
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        result = server.evaluate_cycle(0.0)
        assert result.savings_ratio == pytest.approx(17 / 24)


class TestHistoryPersistence:
    def test_superseded_locations_are_archived(self):
        history = HistoryRepository(BufferPool(InMemoryDiskManager(), 8))
        server = LocationAwareServer(grid_size=8, history=history)
        Client(1, server)
        server.receive_object_report(1, Point(0.1, 0.1), 0.0)
        server.evaluate_cycle(0.0)
        server.receive_object_report(1, Point(0.2, 0.2), 5.0)
        server.evaluate_cycle(5.0)
        server.receive_object_report(1, Point(0.3, 0.3), 10.0)
        server.evaluate_cycle(10.0)
        trajectory = history.trajectory_of(1)
        assert [(t, x) for t, x, __ in trajectory] == [(0.0, 0.1), (5.0, 0.2)]

    def test_first_report_is_not_archived(self):
        history = HistoryRepository(BufferPool(InMemoryDiskManager(), 8))
        server = LocationAwareServer(grid_size=8, history=history)
        server.receive_object_report(1, Point(0.1, 0.1), 0.0)
        assert history.appended_count == 0

    def test_recover_naive_costs_full_answers(self):
        server = LocationAwareServer(grid_size=8)
        client = Client(1, server)
        server.register_range_query(1, 100, REGION)
        client.track_query(100)
        for oid in range(20):
            server.receive_object_report(oid, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)
        client.disconnect()
        naive_bytes = server.recover_naive(1)
        assert naive_bytes == 16 + 20 * 8
