"""End-to-end simulation harness."""


from repro.core.simulation import Simulation, SimulationConfig
from repro.generator import WorkloadConfig


def small_config(**overrides) -> SimulationConfig:
    defaults = dict(
        object_count=200,
        workload=WorkloadConfig(range_queries=100, side=0.05, seed=1),
        grid_size=16,
        blocks=6,
        seed=2,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestBootstrap:
    def test_initial_cycle_recorded(self):
        sim = Simulation(small_config())
        assert len(sim.results) == 1
        assert sim.server.engine.object_count == 200
        assert sim.server.engine.query_count == 100

    def test_mixed_workload_bootstrap(self):
        sim = Simulation(
            small_config(
                workload=WorkloadConfig(
                    range_queries=30, knn_queries=10, predictive_queries=5, seed=3
                )
            )
        )
        assert sim.server.engine.query_count == 45


class TestRunning:
    def test_run_appends_results(self):
        sim = Simulation(small_config())
        results = sim.run(4)
        assert len(results) == 4
        assert len(sim.results) == 5

    def test_client_mirrors_server_answers(self):
        sim = Simulation(small_config())
        sim.run(5)
        for qid in sim.workload.specs:
            assert sim.client.answer_of(qid) == sim.server.engine.answer_of(qid)

    def test_engine_invariants_hold_under_load(self):
        sim = Simulation(
            small_config(
                workload=WorkloadConfig(
                    range_queries=50, knn_queries=10, predictive_queries=5,
                    moving_fraction=0.6, seed=4,
                )
            )
        )
        for __ in range(5):
            sim.step()
            sim.server.engine.check_invariants()

    def test_incremental_answers_match_snapshot_recomputation(self):
        """The server's evolved answers equal a from-scratch recompute."""
        sim = Simulation(small_config())
        sim.run(5)
        engine = sim.server.engine
        for qid, spec in sim.workload.specs.items():
            want = {
                oid
                for oid, state in engine.objects.items()
                if spec.region().contains_point(state.location)
            }
            assert set(engine.answer_of(qid)) == want


class TestAccounting:
    def test_report_fraction_limits_churn(self):
        quiet = Simulation(small_config(object_report_fraction=0.0, seed=9))
        quiet.run(3)
        busy = Simulation(small_config(object_report_fraction=1.0, seed=9))
        busy.run(3)
        assert quiet.mean_incremental_kb() <= busy.mean_incremental_kb()

    def test_zero_report_fraction_with_stationary_queries_is_silent(self):
        sim = Simulation(
            small_config(
                object_report_fraction=0.0,
                workload=WorkloadConfig(
                    range_queries=50, moving_fraction=0.0, seed=5
                ),
            )
        )
        results = sim.run(3)
        assert all(r.incremental_bytes == 0 for r in results)
        assert all(r.complete_bytes > 0 for r in results)

    def test_incremental_beats_complete_on_paper_workload(self):
        sim = Simulation(
            small_config(
                object_count=500,
                workload=WorkloadConfig(
                    range_queries=500, side=0.03, moving_fraction=0.5, seed=6
                ),
            )
        )
        sim.run(6)
        assert sim.mean_incremental_kb() < sim.mean_complete_kb()

    def test_mean_kb_skips_bootstrap_cycle(self):
        sim = Simulation(small_config())
        assert sim.mean_incremental_kb() == 0.0  # no post-bootstrap cycles
        sim.run(1)
        assert sim.mean_incremental_kb() >= 0.0
