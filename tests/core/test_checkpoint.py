"""Engine checkpoint / restore through the storage manager."""

import os
import random


from repro.core import IncrementalEngine
from repro.core.checkpoint import restore_engine, save_engine
from repro.geometry import Point, Rect, Velocity
from repro.storage import BufferPool, DiskManager, InMemoryDiskManager


def populated_engine(seed: int = 0) -> IncrementalEngine:
    rng = random.Random(seed)
    engine = IncrementalEngine(grid_size=16, prediction_horizon=100.0)
    for oid in range(80):
        velocity = (
            Velocity(rng.uniform(-0.01, 0.01), rng.uniform(-0.01, 0.01))
            if oid % 4 == 0
            else Velocity.ZERO
        )
        engine.report_object(
            oid, Point(rng.random(), rng.random()), 0.0, velocity
        )
    for i in range(20):
        engine.register_range_query(
            100 + i, Rect.square(Point(rng.random(), rng.random()), 0.2)
        )
    for i in range(5):
        engine.register_knn_query(200 + i, Point(rng.random(), rng.random()), 3)
    for i in range(5):
        engine.register_predictive_query(
            300 + i,
            Rect.square(Point(rng.random(), rng.random()), 0.2),
            horizon=50.0,
        )
    engine.evaluate(10.0)
    return engine


class TestRoundTrip:
    def test_answers_survive_checkpoint(self):
        engine = populated_engine()
        pool = BufferPool(InMemoryDiskManager(), capacity=16)
        manifest = save_engine(engine, pool)
        restored = restore_engine(manifest, pool)
        assert restored.object_count == engine.object_count
        assert restored.query_count == engine.query_count
        for qid in engine.queries:
            assert restored.answer_of(qid) == engine.answer_of(qid), qid
        restored.check_invariants()

    def test_object_state_is_preserved(self):
        engine = populated_engine()
        pool = BufferPool(InMemoryDiskManager(), capacity=16)
        restored = restore_engine(save_engine(engine, pool), pool)
        for oid, state in engine.objects.items():
            mirror = restored.objects[oid]
            assert mirror.location == state.location
            assert mirror.velocity == state.velocity
            assert mirror.t == state.t

    def test_clock_is_preserved(self):
        engine = populated_engine()
        pool = BufferPool(InMemoryDiskManager(), capacity=16)
        restored = restore_engine(save_engine(engine, pool), pool)
        assert restored.now == engine.now

    def test_restored_engine_keeps_evolving_correctly(self):
        engine = populated_engine()
        pool = BufferPool(InMemoryDiskManager(), capacity=16)
        restored = restore_engine(save_engine(engine, pool), pool)
        rng = random.Random(9)
        for step in range(1, 4):
            now = 10.0 + step
            for oid in rng.sample(range(80), 30):
                p = Point(rng.random(), rng.random())
                engine.report_object(oid, p, now)
                restored.report_object(oid, p, now)
            engine.evaluate(now)
            restored.evaluate(now)
        for qid in engine.queries:
            assert restored.answer_of(qid) == engine.answer_of(qid)

    def test_empty_engine_round_trips(self):
        engine = IncrementalEngine(grid_size=8)
        pool = BufferPool(InMemoryDiskManager(), capacity=4)
        restored = restore_engine(save_engine(engine, pool), pool)
        assert restored.object_count == 0
        assert restored.query_count == 0


class TestDurability:
    def test_checkpoint_survives_process_restart(self, tmp_path):
        """Full durability loop: save, flush, close the file, reopen
        with a fresh buffer pool, restore."""
        path = os.path.join(tmp_path, "checkpoint.pages")
        engine = populated_engine(seed=3)

        disk = DiskManager(path)
        pool = BufferPool(disk, capacity=8)
        manifest = save_engine(engine, pool)
        pool.flush_all()
        disk.close()

        with DiskManager(path) as disk2:
            restored = restore_engine(manifest, BufferPool(disk2, capacity=8))
            for qid in engine.queries:
                assert restored.answer_of(qid) == engine.answer_of(qid)
