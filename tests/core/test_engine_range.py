"""Incremental range query processing."""

import pytest

from repro.core import IncrementalEngine, Update
from repro.geometry import Point, Rect


@pytest.fixture
def engine():
    return IncrementalEngine(grid_size=8)


class TestFirstAnswer:
    def test_initial_positives(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.report_object(2, Point(0.1, 0.1), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        updates = engine.evaluate(0.0)
        assert Update.positive(100, 1) in updates
        assert engine.answer_of(100) == frozenset({1})

    def test_empty_region(self, engine):
        engine.report_object(1, Point(0.9, 0.9), 0.0)
        engine.register_range_query(100, Rect(0.0, 0.0, 0.1, 0.1))
        assert engine.evaluate(0.0) == []
        assert engine.answer_of(100) == frozenset()

    def test_boundary_object_included(self, engine):
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({1})


class TestObjectMovement:
    def test_enter_and_leave(self, engine):
        engine.report_object(1, Point(0.1, 0.1), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)

        engine.report_object(1, Point(0.55, 0.55), 1.0)
        assert engine.evaluate(1.0) == [Update.positive(100, 1)]

        engine.report_object(1, Point(0.9, 0.9), 2.0)
        assert engine.evaluate(2.0) == [Update.negative(100, 1)]

    def test_move_within_region_is_silent(self, engine):
        engine.report_object(1, Point(0.52, 0.52), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.report_object(1, Point(0.58, 0.58), 1.0)
        assert engine.evaluate(1.0) == []

    def test_move_outside_all_queries_is_silent(self, engine):
        engine.report_object(1, Point(0.1, 0.1), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.report_object(1, Point(0.2, 0.2), 1.0)
        assert engine.evaluate(1.0) == []

    def test_long_jump_across_grid(self, engine):
        """An object teleporting across many cells still updates correctly."""
        engine.report_object(1, Point(0.05, 0.05), 0.0)
        engine.register_range_query(100, Rect(0.0, 0.0, 0.1, 0.1))
        engine.register_range_query(200, Rect(0.9, 0.9, 1.0, 1.0))
        engine.evaluate(0.0)
        engine.report_object(1, Point(0.95, 0.95), 1.0)
        updates = engine.evaluate(1.0)
        assert set(updates) == {Update.negative(100, 1), Update.positive(200, 1)}

    def test_one_object_many_queries(self, engine):
        for qid in range(100, 110):
            engine.register_range_query(qid, Rect(0.4, 0.4, 0.6, 0.6))
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        updates = engine.evaluate(0.0)
        assert len(updates) == 10 and all(u.is_positive for u in updates)

    def test_rereport_same_location_is_silent(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.report_object(1, Point(0.55, 0.55), 1.0)
        assert engine.evaluate(1.0) == []

    def test_last_report_wins_within_batch(self, engine):
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.report_object(1, Point(0.1, 0.1), 0.5)
        assert engine.evaluate(1.0) == []
        assert engine.objects[1].location == Point(0.1, 0.1)


class TestQueryMovement:
    def test_move_produces_negatives_then_positives(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.report_object(2, Point(0.75, 0.75), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.move_range_query(100, Rect(0.7, 0.7, 0.8, 0.8), 1.0)
        updates = engine.evaluate(1.0)
        assert updates == [Update.negative(100, 1), Update.positive(100, 2)]

    def test_overlapping_move_keeps_shared_members(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        # New region still contains object 1: no updates at all.
        engine.move_range_query(100, Rect(0.52, 0.52, 0.62, 0.62), 1.0)
        assert engine.evaluate(1.0) == []
        assert engine.answer_of(100) == frozenset({1})

    def test_simultaneous_object_and_query_moves(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        # Query moves away from the object AND the object chases it.
        engine.move_range_query(100, Rect(0.7, 0.7, 0.8, 0.8), 1.0)
        engine.report_object(1, Point(0.75, 0.75), 1.0)
        updates = engine.evaluate(1.0)
        # Net effect: object still in answer; any -/+ pair must cancel.
        assert engine.answer_of(100) == frozenset({1})
        applied = set()
        for update in updates:
            if update.is_positive:
                applied.add(update.oid)
            else:
                applied.discard(update.oid)

    def test_move_unknown_query_raises(self, engine):
        engine.move_range_query(999, Rect(0, 0, 1, 1), 0.0)
        with pytest.raises(KeyError):
            engine.evaluate(0.0)

    def test_query_moving_off_world_empties_answer(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.move_range_query(100, Rect(1.5, 1.5, 1.6, 1.6), 1.0)
        updates = engine.evaluate(1.0)
        assert updates == [Update.negative(100, 1)]
        assert engine.answer_of(100) == frozenset()


class TestClock:
    def test_time_cannot_go_backwards(self, engine):
        engine.evaluate(5.0)
        with pytest.raises(ValueError):
            engine.evaluate(4.0)

    def test_evaluate_without_time_reuses_now(self, engine):
        engine.evaluate(5.0)
        engine.evaluate()
        assert engine.now == 5.0
