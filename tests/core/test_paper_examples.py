"""Executable versions of the paper's worked examples (Figures 1-3).

The published figures are images whose exact coordinates are not
recoverable from the text, so each scenario below reconstructs the
*described situation* with concrete coordinates and asserts the exact
update stream the paper's prose derives:

* Example I  — mixed stationary/moving objects and queries; only
  membership *changes* are reported.
* Example II — k-NN queries as circular regions: an intruder evicts the
  furthest neighbour; a departing member is replaced by the next-nearest.
* Example III — predictive queries: tuples are emitted only for objects
  whose predicted membership changed.
"""

import pytest

from repro.core import IncrementalEngine, Update
from repro.geometry import Point, Rect, Velocity


class TestFigure1RangeQueries:
    """Example I: nine objects, five range queries, snapshots T0 -> T1."""

    def build(self):
        engine = IncrementalEngine(grid_size=10)
        # Objects p1..p9 (black/stationary and white/moving in the figure).
        self.at_t0 = {
            1: Point(0.15, 0.80),  # moving
            2: Point(0.35, 0.60),  # moving
            3: Point(0.55, 0.85),  # moving
            4: Point(0.70, 0.30),  # moving
            5: Point(0.10, 0.55),  # stationary, inside Q1
            6: Point(0.45, 0.45),  # stationary, inside Q3 at T0
            7: Point(0.30, 0.15),  # stationary, inside Q2 at T0
            8: Point(0.62, 0.50),  # stationary, inside Q3 after it moves
            9: Point(0.90, 0.90),  # stationary, never matches
        }
        for oid, location in self.at_t0.items():
            engine.report_object(oid, location, 0.0)
        # Queries Q1, Q3, Q5 move at T1; Q2, Q4 are stationary.
        self.q_t0 = {
            101: Rect(0.05, 0.50, 0.20, 0.65),  # Q1: contains p5
            102: Rect(0.25, 0.10, 0.40, 0.25),  # Q2: contains p7 at T0
            103: Rect(0.40, 0.40, 0.55, 0.55),  # Q3: contains p6 at T0
            104: Rect(0.60, 0.70, 0.80, 0.85),  # Q4: empty at T0
            105: Rect(0.10, 0.75, 0.25, 0.90),  # Q5: contains p1 at T0
        }
        for qid, region in self.q_t0.items():
            engine.register_range_query(qid, region, 0.0)
        return engine

    def test_t0_first_time_answers(self):
        engine = self.build()
        updates = engine.evaluate(0.0)
        assert set(updates) == {
            Update.positive(101, 5),
            Update.positive(102, 7),
            Update.positive(103, 6),
            Update.positive(105, 1),
        }

    def test_t1_incremental_updates(self):
        engine = self.build()
        engine.evaluate(0.0)

        # T1: objects p1..p4 move; queries Q1, Q3, Q5 move.
        engine.report_object(1, Point(0.15, 0.60), 1.0)  # into moved Q1
        engine.report_object(2, Point(0.30, 0.17), 1.0)  # into Q2
        engine.report_object(3, Point(0.65, 0.75), 1.0)  # into Q4
        engine.report_object(4, Point(0.72, 0.32), 1.0)  # still nowhere
        engine.move_range_query(101, Rect(0.08, 0.53, 0.23, 0.68), 1.0)
        engine.move_range_query(103, Rect(0.55, 0.42, 0.70, 0.57), 1.0)
        engine.move_range_query(105, Rect(0.30, 0.75, 0.45, 0.90), 1.0)

        updates = engine.evaluate(1.0)
        assert set(updates) == {
            Update.positive(101, 1),  # p1 moved into Q1's new region
            Update.positive(102, 2),  # p2 moved into stationary Q2
            Update.negative(103, 6),  # Q3 moved away from p6 ...
            Update.positive(103, 8),  # ... onto p8
            Update.positive(104, 3),  # p3 moved into stationary Q4
            Update.negative(105, 1),  # Q5 moved away from p1
        }
        # p5 stayed inside Q1 across its small move: correctly silent.
        assert engine.answer_of(101) == frozenset({1, 5})
        # p4 and p9 never matched anything: correctly absent everywhere.
        assert engine.objects[4].answered == set()
        assert engine.objects[9].answered == set()


class TestFigure2KnnQueries:
    """Example II: two 3-NN queries, object moves reshape the circles."""

    def build(self):
        engine = IncrementalEngine(grid_size=10)
        self.locations = {
            1: Point(0.20, 0.50),
            2: Point(0.25, 0.55),
            3: Point(0.28, 0.45),
            4: Point(0.45, 0.50),  # just outside Q1's initial circle
            5: Point(0.75, 0.50),
            6: Point(0.80, 0.55),
            7: Point(0.83, 0.45),
            8: Point(0.90, 0.50),  # next-nearest to Q2 after p7
        }
        for oid, location in self.locations.items():
            engine.report_object(oid, location, 0.0)
        engine.register_knn_query(201, Point(0.25, 0.50), k=3, t=0.0)
        engine.register_knn_query(202, Point(0.80, 0.50), k=3, t=0.0)
        return engine

    def test_t0_first_time_answers(self):
        engine = self.build()
        engine.evaluate(0.0)
        assert engine.answer_of(201) == frozenset({1, 2, 3})
        assert engine.answer_of(202) == frozenset({5, 6, 7})

    def test_t1_intruder_and_departure(self):
        engine = self.build()
        engine.evaluate(0.0)

        # p4 intrudes into Q1's circle; p7 departs from Q2's.
        engine.report_object(4, Point(0.24, 0.51), 1.0)
        engine.report_object(7, Point(0.83, 0.05), 1.0)
        updates = engine.evaluate(1.0)

        # Q1: the furthest neighbour (p3 at distance ~0.058) is evicted.
        assert Update.negative(201, 3) in updates
        assert Update.positive(201, 4) in updates
        # Q2: p8 becomes nearer than the departed p7.
        assert Update.negative(202, 7) in updates
        assert Update.positive(202, 8) in updates
        assert len(updates) == 4

        assert engine.answer_of(201) == frozenset({1, 2, 4})
        assert engine.answer_of(202) == frozenset({5, 6, 8})

    def test_circle_radius_tracks_kth_neighbour(self):
        engine = self.build()
        engine.evaluate(0.0)
        q1 = engine.queries[201]
        expected = max(
            self.locations[oid].distance_to(Point(0.25, 0.50))
            for oid in (1, 2, 3)
        )
        assert q1.radius == pytest.approx(expected)


class TestFigure3PredictiveQueries:
    """Example III: five predictive objects, a query about the future."""

    def build(self):
        engine = IncrementalEngine(grid_size=10, prediction_horizon=100.0)
        # Region of interest; horizon T = 40 seconds ahead.
        self.region = Rect(0.45, 0.45, 0.55, 0.55)
        # p1 and p2 will cross the region within the horizon.
        engine.report_object(1, Point(0.20, 0.50), 0.0, Velocity(0.010, 0.0))
        engine.report_object(2, Point(0.50, 0.20), 0.0, Velocity(0.0, 0.010))
        # p3 moves parallel to the region, missing it.
        engine.report_object(3, Point(0.20, 0.80), 0.0, Velocity(0.010, 0.0))
        # p4 heads for the region but is too slow for the horizon.
        engine.report_object(4, Point(0.05, 0.50), 0.0, Velocity(0.002, 0.0))
        # p5 sits still outside the region.
        engine.report_object(5, Point(0.70, 0.70), 0.0)
        engine.register_predictive_query(301, self.region, horizon=40.0, t=0.0)
        return engine

    def test_t0_answer_is_p1_p2(self):
        engine = self.build()
        updates = engine.evaluate(0.0)
        assert set(updates) == {Update.positive(301, 1), Update.positive(301, 2)}

    def test_t1_only_changed_predictions_produce_tuples(self):
        engine = self.build()
        engine.evaluate(0.0)

        # T1 = 10: p1 keeps course (no tuple despite reporting), p2 veers
        # away (negative), p3 turns toward the region (positive).
        engine.report_object(1, Point(0.30, 0.50), 10.0, Velocity(0.010, 0.0))
        engine.report_object(2, Point(0.50, 0.30), 10.0, Velocity(0.010, 0.0))
        engine.report_object(3, Point(0.30, 0.80), 10.0, Velocity(0.006, -0.009))
        updates = engine.evaluate(10.0)
        assert set(updates) == {
            Update.negative(301, 2),
            Update.positive(301, 3),
        }
        assert engine.answer_of(301) == frozenset({1, 3})
