"""Property tests for moving k-NN queries (carried centers)."""

from hypothesis import given, settings, strategies as st

from repro.core import IncrementalEngine, apply_updates
from repro.geometry import Point

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)

population_st = st.lists(
    st.tuples(coord, coord), min_size=1, max_size=30
)
center_path_st = st.lists(st.tuples(coord, coord), min_size=1, max_size=8)


@settings(max_examples=50, deadline=None)
@given(population_st, center_path_st, st.integers(1, 6), st.integers(2, 12))
def test_moving_knn_tracks_oracle_along_any_path(
    population, path, k, grid_size
):
    """Wherever the query center wanders, the answer equals brute force
    and the emitted update stream replays to it."""
    engine = IncrementalEngine(grid_size=grid_size)
    locations = {
        oid: Point(x, y) for oid, (x, y) in enumerate(population)
    }
    for oid, location in locations.items():
        engine.report_object(oid, location, 0.0)
    center = Point(0.5, 0.5)
    engine.register_knn_query(900, center, k)
    engine.evaluate(0.0)
    previous = set(engine.answer_of(900))

    now = 0.0
    for x, y in path:
        now += 1.0
        center = Point(x, y)
        engine.move_knn_query(900, center, now)
        updates = engine.evaluate(now)
        engine.check_invariants()

        want = {
            oid
            for __, oid in sorted(
                (p.distance_to(center), oid) for oid, p in locations.items()
            )[:k]
        }
        got = set(engine.answer_of(900))
        assert got == want

        replayed = apply_updates(previous, [u for u in updates if u.qid == 900])
        assert replayed == got
        previous = got


@settings(max_examples=40, deadline=None)
@given(population_st, st.integers(1, 6))
def test_knn_radius_invariant(population, k):
    """After any evaluation, the stored circle radius equals the distance
    of the furthest answer member (or 0 for an empty answer)."""
    engine = IncrementalEngine(grid_size=8)
    for oid, (x, y) in enumerate(population):
        engine.report_object(oid, Point(x, y), 0.0)
    engine.register_knn_query(900, Point(0.5, 0.5), k)
    engine.evaluate(0.0)
    query = engine.queries[900]
    if query.answer:
        furthest = max(
            engine.objects[oid].location.distance_to(query.center)
            for oid in query.answer
        )
        assert abs(query.radius - furthest) < 1e-12
    else:
        assert query.radius == 0.0


@settings(max_examples=40, deadline=None)
@given(population_st, st.integers(1, 4))
def test_knn_answer_members_lie_within_circle(population, k):
    engine = IncrementalEngine(grid_size=8)
    for oid, (x, y) in enumerate(population):
        engine.report_object(oid, Point(x, y), 0.0)
    engine.register_knn_query(900, Point(0.25, 0.75), k)
    engine.evaluate(0.0)
    query = engine.queries[900]
    circle = query.circle()
    for oid in query.answer:
        # Allow boundary tolerance: the radius IS the k-th distance.
        location = engine.objects[oid].location
        assert location.distance_to(query.center) <= query.radius + 1e-12
        assert circle.with_radius(query.radius + 1e-9).contains_point(location)
