"""Object/query lifecycle: removal, unregistration, id management."""

import pytest

from repro.core import IncrementalEngine, Update
from repro.geometry import Point, Rect


@pytest.fixture
def engine():
    return IncrementalEngine(grid_size=8)


class TestObjectRemoval:
    def test_removal_emits_negatives_for_all_memberships(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.register_range_query(200, Rect(0.4, 0.4, 0.7, 0.7))
        engine.evaluate(0.0)
        engine.remove_object(1)
        updates = engine.evaluate(1.0)
        assert set(updates) == {Update.negative(100, 1), Update.negative(200, 1)}
        assert engine.object_count == 0

    def test_removal_of_nonmember_is_silent(self, engine):
        engine.report_object(1, Point(0.1, 0.1), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.remove_object(1)
        assert engine.evaluate(1.0) == []

    def test_removal_of_unknown_object_raises_keyerror_naming_id(self, engine):
        with pytest.raises(KeyError, match="999"):
            engine.remove_object(999)
        # Nothing was buffered by the failed call.
        assert engine.evaluate(0.0) == []

    def test_removal_of_pending_report_same_batch_is_allowed(self, engine):
        engine.report_object(7, Point(0.1, 0.1), 0.0)
        engine.remove_object(7)
        assert engine.evaluate(0.0) == []
        assert engine.object_count == 0

    def test_report_then_remove_in_same_batch(self, engine):
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.remove_object(1)
        assert engine.evaluate(0.0) == []
        assert engine.object_count == 0

    def test_remove_then_report_in_same_batch(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.remove_object(1)
        engine.report_object(1, Point(0.56, 0.56), 1.0)
        assert engine.evaluate(1.0) == []  # object survives, still inside
        assert engine.object_count == 1


class TestQueryLifecycle:
    def test_unregistration_stops_updates(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.unregister_query(100)
        engine.report_object(1, Point(0.1, 0.1), 1.0)
        assert engine.evaluate(1.0) == []
        assert engine.query_count == 0

    def test_unregistration_cleans_reverse_lists(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.unregister_query(100)
        engine.evaluate(1.0)
        assert engine.objects[1].answered == set()
        engine.check_invariants()

    def test_duplicate_qid_rejected(self, engine):
        engine.register_range_query(100, Rect(0, 0, 1, 1))
        with pytest.raises(KeyError):
            engine.register_range_query(100, Rect(0, 0, 0.5, 0.5))
        engine.evaluate(0.0)
        with pytest.raises(KeyError):
            engine.register_knn_query(100, Point(0, 0), 1)

    def test_unregister_unknown_query_raises_keyerror_naming_id(self, engine):
        with pytest.raises(KeyError, match="999"):
            engine.unregister_query(999)
        # Nothing was buffered by the failed call.
        assert engine.evaluate(0.0) == []

    def test_unregister_pending_registration_same_batch_is_allowed(self, engine):
        engine.register_range_query(100, Rect(0, 0, 1, 1))
        engine.unregister_query(100)
        assert engine.evaluate(0.0) == []
        assert engine.query_count == 0

    def test_reregister_after_unregister(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.evaluate(0.0)
        engine.unregister_query(100)
        engine.evaluate(1.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        updates = engine.evaluate(2.0)
        assert updates == [Update.positive(100, 1)]

    def test_mixed_kinds_coexist(self, engine):
        engine.report_object(1, Point(0.55, 0.55), 0.0)
        engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
        engine.register_knn_query(200, Point(0.5, 0.5), 1)
        engine.register_predictive_query(300, Rect(0.5, 0.5, 0.6, 0.6), 30.0)
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({1})
        assert engine.answer_of(200) == frozenset({1})
        assert engine.answer_of(300) == frozenset({1})
        engine.check_invariants()


class TestIntrospection:
    def test_counts(self, engine):
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        engine.report_object(2, Point(0.6, 0.6), 0.0)
        engine.register_range_query(100, Rect(0, 0, 1, 1))
        engine.evaluate(0.0)
        assert engine.object_count == 2
        assert engine.query_count == 1

    def test_complete_answers(self, engine):
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        engine.register_range_query(100, Rect(0, 0, 1, 1))
        engine.register_range_query(200, Rect(0.9, 0.9, 1, 1))
        engine.evaluate(0.0)
        assert engine.complete_answers() == {
            100: frozenset({1}),
            200: frozenset(),
        }

    def test_answer_of_unknown_query_raises(self, engine):
        with pytest.raises(KeyError):
            engine.answer_of(12345)
