"""Out-of-sync clients and the committed-answer recovery protocol (Fig. 4)."""

import pytest

from repro.core import Client, LocationAwareServer, Update
from repro.geometry import Point, Rect

REGION = Rect(0.4, 0.4, 0.6, 0.6)
INSIDE = Point(0.5, 0.5)
OUTSIDE = Point(0.9, 0.9)


def make_pair():
    server = LocationAwareServer(grid_size=8)
    client = Client(client_id=1, server=server)
    return server, client


class TestFigure4Timeline:
    """The paper's exact walkthrough: answer (p1, p2) committed at T1;
    the client misses (-p2) and later changes while disconnected; on
    wakeup the server ships the committed-vs-current diff."""

    def test_recovery_diff_matches_paper(self):
        server, client = make_pair()
        server.register_range_query(1, 500, REGION, 0.0)
        client.track_query(500)
        for oid, location in ((1, INSIDE), (2, Point(0.55, 0.55))):
            server.receive_object_report(oid, location, 0.0)
        server.receive_object_report(3, OUTSIDE, 0.0)
        server.receive_object_report(4, OUTSIDE, 0.0)
        server.evaluate_cycle(0.0)
        client.pump()
        assert client.answer_of(500) == frozenset({1, 2})

        # T1: commit (p1, p2) — the client acknowledges explicitly.
        client.send_commit(500)

        # Client disconnects; the world keeps changing.
        client.disconnect()
        server.receive_object_report(2, OUTSIDE, 1.0)  # -p2, lost
        server.evaluate_cycle(1.0)
        server.receive_object_report(3, Point(0.45, 0.45), 2.0)  # +p3, lost
        server.receive_object_report(4, Point(0.42, 0.58), 2.0)  # +p4, lost
        server.evaluate_cycle(2.0)
        assert server.engine.answer_of(500) == frozenset({1, 3, 4})
        assert client.answer_of(500) == frozenset({1, 2})  # stale

        # T3: wakeup.  The recovery delta is exactly (-p2, +p3, +p4).
        sent = server.receive_wakeup(1)
        assert sent == [
            Update.negative(500, 2),
            Update.positive(500, 3),
            Update.positive(500, 4),
        ]
        client.pump()
        assert client.answer_of(500) == frozenset({1, 3, 4})

    def test_naive_client_would_be_wrong_without_recovery(self):
        """Reproduces the paper's erroneous-result motivation: applying
        post-outage updates without recovery leaves a stale member."""
        server, client = make_pair()
        server.register_range_query(1, 500, REGION, 0.0)
        client.track_query(500)
        server.receive_object_report(1, INSIDE, 0.0)
        server.receive_object_report(2, Point(0.55, 0.55), 0.0)
        server.evaluate_cycle(0.0)
        client.pump()

        client.disconnect()
        server.receive_object_report(2, OUTSIDE, 1.0)
        server.evaluate_cycle(1.0)  # (-p2) lost

        # Client silently reconnects WITHOUT the wakeup protocol.
        client.link.reconnect()
        server.receive_object_report(3, Point(0.5, 0.45), 2.0)
        server.evaluate_cycle(2.0)  # (+p3) delivered
        client.pump()
        # The stale p2 is still in the client answer: exactly the bug.
        assert client.answer_of(500) == frozenset({1, 2, 3})
        assert server.engine.answer_of(500) == frozenset({1, 3})


class TestCommitTriggers:
    def test_moving_query_uplink_commits(self):
        server, client = make_pair()
        server.register_range_query(1, 500, REGION, 0.0)
        client.track_query(500)
        server.receive_object_report(1, INSIDE, 0.0)
        server.evaluate_cycle(0.0)
        client.pump()
        assert server.commits.committed_answer(500) == frozenset()
        # Any movement report from the query commits its latest answer.
        server.receive_range_query_move(500, REGION, 1.0)
        client.note_uplink_commit(500)
        assert server.commits.committed_answer(500) == frozenset({1})

    def test_stationary_query_needs_explicit_commit(self):
        server, client = make_pair()
        server.register_range_query(1, 500, REGION, 0.0)
        client.track_query(500)
        server.receive_object_report(1, INSIDE, 0.0)
        server.evaluate_cycle(0.0)
        assert server.commits.committed_answer(500) == frozenset()
        client.send_commit(500)
        assert server.commits.committed_answer(500) == frozenset({1})

    def test_wakeup_commits_recovered_answer(self):
        server, client = make_pair()
        server.register_range_query(1, 500, REGION, 0.0)
        client.track_query(500)
        server.receive_object_report(1, INSIDE, 0.0)
        server.evaluate_cycle(0.0)
        client.disconnect()
        client.reconnect()
        assert server.commits.committed_answer(500) == frozenset({1})

    def test_commit_for_unknown_query_raises(self):
        server, __ = make_pair()
        with pytest.raises(KeyError):
            server.receive_commit(999)


class TestClientRollback:
    def test_uncommitted_updates_roll_back_on_wakeup(self):
        """Updates delivered after the last commit but before an outage
        must not survive the recovery diff (they are folded back in by
        the diff itself when still valid)."""
        server, client = make_pair()
        server.register_range_query(1, 500, REGION, 0.0)
        client.track_query(500)
        server.receive_object_report(1, INSIDE, 0.0)
        server.evaluate_cycle(0.0)
        client.pump()
        client.send_commit(500)  # committed: {1}

        # Delivered but never committed: +p2.
        server.receive_object_report(2, Point(0.58, 0.58), 1.0)
        server.evaluate_cycle(1.0)
        client.pump()
        assert client.answer_of(500) == frozenset({1, 2})

        # Outage; meanwhile p2 leaves again (the client never learns).
        client.disconnect()
        server.receive_object_report(2, OUTSIDE, 2.0)
        server.evaluate_cycle(2.0)

        client.reconnect()
        assert client.answer_of(500) == frozenset({1})
        assert client.answer_of(500) == server.engine.answer_of(500)

    def test_repeated_disconnects(self):
        server, client = make_pair()
        server.register_range_query(1, 500, REGION, 0.0)
        client.track_query(500)
        positions = [INSIDE, OUTSIDE, Point(0.45, 0.5), OUTSIDE, INSIDE]
        server.receive_object_report(1, positions[0], 0.0)
        server.evaluate_cycle(0.0)
        client.pump()
        client.send_commit(500)
        for step, location in enumerate(positions[1:], start=1):
            client.disconnect()
            server.receive_object_report(1, location, float(step))
            server.evaluate_cycle(float(step))
            client.reconnect()
            assert client.answer_of(500) == server.engine.answer_of(500)
