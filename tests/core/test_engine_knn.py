"""Incremental k-NN query processing."""

import random

import pytest

from repro.core import IncrementalEngine, Update
from repro.geometry import Point


@pytest.fixture
def engine():
    return IncrementalEngine(grid_size=8)


def place_line(engine, xs, t=0.0):
    """Objects 0..n-1 along y=0.5 at the given x positions."""
    for oid, x in enumerate(xs):
        engine.report_object(oid, Point(x, 0.5), t)


class TestFirstAnswer:
    def test_initial_k_nearest(self, engine):
        place_line(engine, [0.50, 0.52, 0.56, 0.70, 0.90])
        engine.register_knn_query(100, Point(0.5, 0.5), k=3)
        updates = engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({0, 1, 2})
        assert all(u.is_positive for u in updates)

    def test_radius_is_kth_distance(self, engine):
        place_line(engine, [0.50, 0.52, 0.56])
        engine.register_knn_query(100, Point(0.5, 0.5), k=3)
        engine.evaluate(0.0)
        assert engine.queries[100].radius == pytest.approx(0.06)

    def test_underfull_population(self, engine):
        place_line(engine, [0.1, 0.9])
        engine.register_knn_query(100, Point(0.5, 0.5), k=5)
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({0, 1})

    def test_k_must_be_positive(self, engine):
        with pytest.raises(ValueError):
            engine.register_knn_query(100, Point(0.5, 0.5), k=0)


class TestMaintenance:
    def test_intruder_evicts_furthest(self, engine):
        place_line(engine, [0.50, 0.52, 0.56, 0.90])
        engine.register_knn_query(100, Point(0.5, 0.5), k=3)
        engine.evaluate(0.0)
        # Object 3 moves inside the circle, displacing object 2.
        engine.report_object(3, Point(0.51, 0.5), 1.0)
        updates = engine.evaluate(1.0)
        assert set(updates) == {Update.negative(100, 2), Update.positive(100, 3)}
        assert engine.answer_of(100) == frozenset({0, 1, 3})

    def test_departing_member_is_replaced(self, engine):
        place_line(engine, [0.50, 0.52, 0.56, 0.60])
        engine.register_knn_query(100, Point(0.5, 0.5), k=3)
        engine.evaluate(0.0)
        engine.report_object(1, Point(0.95, 0.5), 1.0)
        updates = engine.evaluate(1.0)
        assert set(updates) == {Update.negative(100, 1), Update.positive(100, 3)}
        assert engine.queries[100].radius == pytest.approx(0.10)

    def test_member_moving_within_circle_is_silent(self, engine):
        place_line(engine, [0.50, 0.52, 0.56, 0.90])
        engine.register_knn_query(100, Point(0.5, 0.5), k=3)
        engine.evaluate(0.0)
        engine.report_object(1, Point(0.53, 0.5), 1.0)
        assert engine.evaluate(1.0) == []

    def test_underfull_query_captures_new_arrivals(self, engine):
        place_line(engine, [0.5])
        engine.register_knn_query(100, Point(0.5, 0.5), k=3)
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({0})
        # A brand-new object appears far away; with k unfilled it joins.
        engine.report_object(50, Point(0.05, 0.05), 1.0)
        updates = engine.evaluate(1.0)
        assert updates == [Update.positive(100, 50)]

    def test_removal_of_member_triggers_replacement(self, engine):
        place_line(engine, [0.50, 0.52, 0.56, 0.60])
        engine.register_knn_query(100, Point(0.5, 0.5), k=3)
        engine.evaluate(0.0)
        engine.remove_object(1)
        updates = engine.evaluate(1.0)
        assert Update.negative(100, 1) in updates
        assert Update.positive(100, 3) in updates
        assert engine.answer_of(100) == frozenset({0, 2, 3})

    def test_moving_knn_query(self, engine):
        place_line(engine, [0.1, 0.2, 0.8, 0.9])
        engine.register_knn_query(100, Point(0.0, 0.5), k=2)
        engine.evaluate(0.0)
        assert engine.answer_of(100) == frozenset({0, 1})
        engine.move_knn_query(100, Point(1.0, 0.5), 1.0)
        updates = engine.evaluate(1.0)
        assert engine.answer_of(100) == frozenset({2, 3})
        assert set(updates) == {
            Update.negative(100, 0),
            Update.negative(100, 1),
            Update.positive(100, 2),
            Update.positive(100, 3),
        }


class TestOracle:
    def test_randomised_maintenance_matches_brute_force(self, engine):
        rng = random.Random(42)
        locations = {oid: Point(rng.random(), rng.random()) for oid in range(60)}
        for oid, location in locations.items():
            engine.report_object(oid, location, 0.0)
        centers = {100 + i: Point(rng.random(), rng.random()) for i in range(8)}
        for qid, center in centers.items():
            engine.register_knn_query(qid, center, k=4)
        engine.evaluate(0.0)
        for step in range(1, 10):
            for oid in rng.sample(sorted(locations), 20):
                locations[oid] = Point(rng.random(), rng.random())
                engine.report_object(oid, locations[oid], float(step))
            engine.evaluate(float(step))
            engine.check_invariants()
            for qid, center in centers.items():
                want = {
                    oid
                    for __, oid in sorted(
                        (p.distance_to(center), oid)
                        for oid, p in locations.items()
                    )[:4]
                }
                assert set(engine.answer_of(qid)) == want, (step, qid)
