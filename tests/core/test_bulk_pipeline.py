"""Golden equivalence of the cell-batched pipeline vs the per-object path.

The cell-batched pipeline is a pure performance restructuring of
``evaluate()``'s hot path: for any buffered input it must emit, per
query, exactly the same set of incremental updates as the per-object
reference path, and leave both engines with identical answers.  These
tests drive both pipelines through randomized mixed workloads and
scripted corner cases and compare them round for round.

Also covered here: the up-front validation of buffered query moves
(an unknown qid must fail the whole batch *before* any state mutates).
"""

from __future__ import annotations

import random

import pytest

from repro.core import IncrementalEngine
from repro.geometry import Point, Rect, Velocity


def update_keys(updates) -> frozenset[tuple[int, int, int]]:
    return frozenset((u.qid, u.oid, u.sign) for u in updates)


def make_engines(grid_size: int = 16, horizon: float = 30.0):
    return (
        IncrementalEngine(
            grid_size=grid_size,
            prediction_horizon=horizon,
            pipeline="cell-batched",
        ),
        IncrementalEngine(
            grid_size=grid_size,
            prediction_horizon=horizon,
            pipeline="per-object",
        ),
    )


def assert_equivalent(batched, reference, round_no):
    assert batched.complete_answers() == reference.complete_answers(), (
        f"answers diverged after round {round_no}"
    )
    batched.check_invariants()
    reference.check_invariants()


class RandomDriver:
    """Feed both engines the same random mixed workload, round by round."""

    def __init__(self, seed: int, grid_size: int = 16):
        self.rng = random.Random(seed)
        self.batched, self.reference = make_engines(grid_size=grid_size)
        self.live_objects: set[int] = set()
        self.live_queries: dict[int, str] = {}
        self.next_oid = 0
        self.next_qid = 1000

    def both(self, method: str, *args) -> None:
        getattr(self.batched, method)(*args)
        getattr(self.reference, method)(*args)

    def random_rect(self, max_side: float = 0.3) -> Rect:
        rng = self.rng
        x, y = rng.random(), rng.random()
        return Rect(
            x, y, x + rng.uniform(0.01, max_side), y + rng.uniform(0.01, max_side)
        )

    def register_random_query(self) -> None:
        rng = self.rng
        qid = self.next_qid
        self.next_qid += 1
        kind = rng.random()
        if kind < 0.55:
            self.both("register_range_query", qid, self.random_rect())
            self.live_queries[qid] = "range"
        elif kind < 0.8:
            self.both(
                "register_knn_query",
                qid,
                Point(rng.random(), rng.random()),
                rng.randint(1, 4),
            )
            self.live_queries[qid] = "knn"
        else:
            self.both(
                "register_predictive_query", qid, self.random_rect(), 10.0
            )
            self.live_queries[qid] = "predictive"

    def move_random_query(self, now: float) -> None:
        rng = self.rng
        qid = rng.choice(sorted(self.live_queries))
        kind = self.live_queries[qid]
        if kind == "range":
            self.both("move_range_query", qid, self.random_rect(), now)
        elif kind == "knn":
            self.both(
                "move_knn_query", qid, Point(rng.random(), rng.random()), now
            )
        else:
            self.both("move_predictive_query", qid, self.random_rect(), now)

    def report_random_object(self, now: float) -> None:
        rng = self.rng
        if self.live_objects and rng.random() < 0.7:
            oid = rng.choice(sorted(self.live_objects))
        else:
            oid = self.next_oid
            self.next_oid += 1
            self.live_objects.add(oid)
        velocity = Velocity.ZERO
        if rng.random() < 0.3:
            velocity = Velocity(rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05))
        self.both(
            "report_object",
            oid,
            Point(rng.uniform(-0.05, 1.05), rng.uniform(-0.05, 1.05)),
            now,
            velocity,
        )

    def run_round(self, now: float) -> None:
        rng = self.rng
        for _ in range(rng.randint(5, 40)):
            self.report_random_object(now)
        if rng.random() < 0.6:
            self.register_random_query()
        if self.live_queries and rng.random() < 0.4:
            self.move_random_query(now)
        if self.live_queries and rng.random() < 0.2:
            qid = rng.choice(sorted(self.live_queries))
            del self.live_queries[qid]
            self.both("unregister_query", qid)
        if self.live_objects and rng.random() < 0.2:
            oid = rng.choice(sorted(self.live_objects))
            self.live_objects.discard(oid)
            self.both("remove_object", oid)

    def evaluate_and_compare(self, now: float, round_no: int) -> None:
        got = update_keys(self.batched.evaluate(now))
        want = update_keys(self.reference.evaluate(now))
        assert got == want, f"update streams diverged in round {round_no}"
        assert_equivalent(self.batched, self.reference, round_no)


@pytest.mark.parametrize("seed", range(8))
def test_random_workloads_are_pipeline_equivalent(seed):
    driver = RandomDriver(seed)
    now = 0.0
    for round_no in range(12):
        now += 1.0
        driver.run_round(now)
        driver.evaluate_and_compare(now, round_no)
    # Pure time advances: only the predictive windows slide.
    for round_no in (100, 101):
        now += 5.0
        driver.evaluate_and_compare(now, round_no)


def test_covering_regions_are_pipeline_equivalent():
    """Large regions covering whole cells exercise the covering-skip."""
    batched, reference = make_engines(grid_size=4)
    rng = random.Random(7)
    for engine in (batched, reference):
        engine.register_range_query(1, Rect(0.0, 0.0, 1.0, 1.0))
        engine.register_range_query(2, Rect(0.25, 0.25, 1.0, 0.75))
        engine.register_range_query(3, Rect(0.4, 0.4, 0.6, 0.6))
    now = 0.0
    positions = {oid: (rng.random(), rng.random()) for oid in range(60)}
    for round_no in range(6):
        now += 1.0
        for oid, (x, y) in positions.items():
            x = min(max(x + rng.uniform(-0.2, 0.2), 0.0), 1.0)
            y = min(max(y + rng.uniform(-0.2, 0.2), 0.0), 1.0)
            positions[oid] = (x, y)
            batched.report_object(oid, Point(x, y), now)
            reference.report_object(oid, Point(x, y), now)
        got = update_keys(batched.evaluate(now))
        want = update_keys(reference.evaluate(now))
        assert got == want, f"update streams diverged in round {round_no}"
        assert_equivalent(batched, reference, round_no)


def test_stationary_batch_emits_no_updates():
    """Re-reporting unchanged locations is a no-op in both pipelines."""
    batched, reference = make_engines()
    for engine in (batched, reference):
        engine.register_range_query(1, Rect(0.2, 0.2, 0.8, 0.8))
        for oid in range(20):
            engine.report_object(oid, Point(0.05 * oid, 0.5), 0.0)
        engine.evaluate(0.0)
        for oid in range(20):
            engine.report_object(oid, Point(0.05 * oid, 0.5), 1.0)
        assert engine.evaluate(1.0) == []
    assert_equivalent(batched, reference, round_no=1)


# ----------------------------------------------------------------------
# Buffered-move validation: fail fast, mutate nothing
# ----------------------------------------------------------------------


def test_move_of_unknown_query_fails_before_any_mutation():
    engine = IncrementalEngine(grid_size=8)
    engine.report_object(1, Point(0.5, 0.5), 0.0)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
    engine.evaluate(0.0)

    engine.report_object(1, Point(0.1, 0.1), 1.0)
    engine.register_range_query(101, Rect(0.0, 0.0, 0.2, 0.2))
    engine.move_range_query(100, Rect(0.5, 0.5, 0.9, 0.9), 1.0)
    engine.move_range_query(999, Rect(0.0, 0.0, 0.1, 0.1), 1.0)

    with pytest.raises(KeyError, match="999"):
        engine.evaluate(1.0)

    # Nothing was applied: same answers, same clock, buffers intact.
    assert engine.now == 0.0
    assert engine.answer_of(100) == frozenset({1})
    assert 101 not in engine.queries
    assert engine.objects[1].location == Point(0.5, 0.5)
    assert engine.stats.evaluations == 1
    engine.check_invariants()

    # Dropping the bad move lets the buffered batch go through whole.
    engine.unregister_query(999)
    engine.evaluate(1.0)
    assert engine.answer_of(100) == frozenset()
    assert engine.answer_of(101) == frozenset({1})
    assert engine.objects[1].location == Point(0.1, 0.1)


def test_move_targeting_same_batch_unregistration_fails():
    engine = IncrementalEngine(grid_size=8)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
    engine.evaluate(0.0)
    engine.unregister_query(100)
    engine.move_range_query(100, Rect(0.1, 0.1, 0.2, 0.2), 1.0)
    with pytest.raises(KeyError, match="100"):
        engine.evaluate(1.0)
    assert 100 in engine.queries  # unregistration stayed buffered


def test_move_targeting_same_batch_registration_is_valid():
    engine = IncrementalEngine(grid_size=8)
    engine.report_object(1, Point(0.15, 0.15), 0.0)
    engine.evaluate(0.0)
    engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
    engine.move_range_query(100, Rect(0.1, 0.1, 0.2, 0.2), 1.0)
    engine.evaluate(1.0)
    assert engine.answer_of(100) == frozenset({1})


def test_pipeline_argument_is_validated():
    with pytest.raises(ValueError, match="pipeline"):
        IncrementalEngine(pipeline="vectorized")
