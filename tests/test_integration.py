"""End-to-end integration: the full system under one roof.

One scenario exercises every subsystem together: a road network with
object lifecycle, a mixed range/k-NN/predictive workload, the server
with history persistence, client disconnections with recovery, an
engine checkpoint in the middle, and final cross-checks of every
answer against brute force.
"""

import pytest

from repro.core import Client, LocationAwareServer
from repro.core.checkpoint import restore_engine, save_engine
from repro.core.simulation import Simulation, SimulationConfig
from repro.generator import (
    MovingObjectSimulator,
    WorkloadConfig,
    manhattan_city,
)
from repro.geometry import LinearMotion, Point, Rect
from repro.grid import Grid
from repro.history import HistoricalQueryEngine, HistoryStore
from repro.storage import BufferPool, InMemoryDiskManager


@pytest.fixture(scope="module")
def scenario():
    """Run the full scenario once; individual tests assert on slices."""
    world = Rect(0.0, 0.0, 1.0, 1.0)
    store = HistoryStore(
        BufferPool(InMemoryDiskManager(), capacity=64), Grid(world, 32)
    )
    server = LocationAwareServer(grid_size=32, history=store)
    client = Client(client_id=1, server=server)
    city = manhattan_city(blocks=8)
    traffic = MovingObjectSimulator(
        city, object_count=120, seed=7, route_mode="walk",
        routes_per_life=40, arrivals_per_tick=1,
    )

    for report in traffic.initial_reports():
        server.receive_object_report(
            report.oid, report.location, report.t, report.velocity
        )
    # Mixed workload.
    server.register_range_query(1, 500, Rect(0.4, 0.4, 0.6, 0.6))
    server.register_range_query(1, 501, Rect(0.0, 0.0, 0.3, 0.3))
    server.register_knn_query(1, 600, Point(0.5, 0.5), 5)
    server.register_predictive_query(1, 700, Rect(0.7, 0.7, 0.9, 0.9), 30.0)
    for qid in (500, 501, 600, 700):
        client.track_query(qid)
    server.evaluate_cycle(0.0)
    client.pump()
    for qid in (500, 501, 600, 700):
        client.send_commit(qid)

    outage_window = (4, 7)  # cycles the client misses
    for cycle in range(1, 13):
        if cycle == outage_window[0]:
            client.disconnect()
        reports = traffic.tick(5.0)
        for oid in traffic.departed:
            server.remove_object(oid)
        for report in reports:
            server.receive_object_report(
                report.oid, report.location, report.t, report.velocity
            )
        server.evaluate_cycle(traffic.now)
        if client.connected:
            client.pump()
        if cycle == outage_window[1]:
            client.reconnect()
        server.engine.check_invariants()

    return server, client, traffic, store


class TestAnswersAgainstBruteForce:
    def test_range_answers(self, scenario):
        server, __, __, __ = scenario
        engine = server.engine
        for qid in (500, 501):
            region = engine.queries[qid].region
            want = {
                oid
                for oid, state in engine.objects.items()
                if region.contains_point(state.location)
            }
            assert set(engine.answer_of(qid)) == want

    def test_knn_answer(self, scenario):
        server, __, __, __ = scenario
        engine = server.engine
        center = engine.queries[600].center
        ranked = sorted(
            (state.location.distance_to(center), oid)
            for oid, state in engine.objects.items()
        )
        want = {oid for __, oid in ranked[:5]}
        assert set(engine.answer_of(600)) == want

    def test_predictive_answer(self, scenario):
        server, __, __, __ = scenario
        engine = server.engine
        query = engine.queries[700]
        want = set()
        for oid, state in engine.objects.items():
            start = max(engine.now, state.t)
            end = min(
                engine.now + query.horizon,
                state.t + engine.prediction_horizon,
            )
            if end < start:
                continue
            motion = LinearMotion(state.location, state.velocity, state.t)
            if motion.time_in_rect(query.region, start, end) is not None:
                want.add(oid)
        assert set(engine.answer_of(700)) == want


class TestClientConsistency:
    def test_client_recovered_after_outage(self, scenario):
        server, client, __, __ = scenario
        for qid in (500, 501, 600, 700):
            assert client.answer_of(qid) == server.engine.answer_of(qid), qid


class TestLifecycle:
    def test_population_evolved(self, scenario):
        __, __, traffic, __ = scenario
        # 12 arrival ticks happened; some retirements are possible too.
        assert max(traffic.object_ids) >= 120
        assert len(traffic.object_ids) > 0

    def test_departed_objects_left_no_answer_residue(self, scenario):
        server, __, traffic, __ = scenario
        for qid, query in server.engine.queries.items():
            stale = set(query.answer) - set(server.engine.objects)
            assert not stale, (qid, stale)


class TestHistoryIntegration:
    def test_archive_grew_and_answers_past_queries(self, scenario):
        server, __, traffic, store = scenario
        assert store.record_count() > 0
        forensics = HistoricalQueryEngine(store)
        visits = forensics.past_range(
            Rect(0.0, 0.0, 1.0, 1.0), 0.0, traffic.now
        )
        assert len(visits) == store.record_count()

    def test_archive_only_holds_superseded_reports(self, scenario):
        server, __, traffic, store = scenario
        # Each archived record predates the engine's current knowledge.
        engine = server.engine
        for oid in list(store.tracked_objects())[:20]:
            history = store.history_of(oid)
            current = engine.objects.get(oid)
            if current is not None:
                assert all(rec.t <= current.t for rec in history)


class TestCheckpointMidFlight:
    def test_checkpoint_of_live_system_round_trips(self, scenario):
        server, __, __, __ = scenario
        pool = BufferPool(InMemoryDiskManager(), capacity=32)
        manifest = save_engine(server.engine, pool)
        restored = restore_engine(manifest, pool)
        for qid in server.engine.queries:
            assert restored.answer_of(qid) == server.engine.answer_of(qid)


class TestSimulationHarnessLifecycle:
    def test_simulation_with_lifecycle_stays_consistent(self):
        config = SimulationConfig(
            object_count=100,
            workload=WorkloadConfig(
                range_queries=60, knn_queries=5, predictive_queries=5,
                moving_fraction=0.5, seed=3,
            ),
            grid_size=16,
            blocks=6,
            seed=4,
        )
        sim = Simulation(config)
        sim.sim.routes_per_life = 20
        sim.sim.arrivals_per_tick = 2
        sim.run(6)
        sim.server.engine.check_invariants()
        for qid in sim.workload.specs:
            assert sim.client.answer_of(qid) == sim.server.engine.answer_of(qid)
