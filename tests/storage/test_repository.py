"""The history repository of superseded locations."""

import pytest

from repro.geometry import Point, Velocity
from repro.storage import (
    BufferPool,
    HistoryRepository,
    InMemoryDiskManager,
    LocationRecord,
)


@pytest.fixture
def repo():
    return HistoryRepository(BufferPool(InMemoryDiskManager(), capacity=8))


def record(oid: int, t: float) -> LocationRecord:
    return LocationRecord(oid, Point(t / 100.0, 0.5), Velocity.ZERO, t)


class TestAppendRetrieve:
    def test_history_in_append_order(self, repo):
        for t in (1.0, 2.0, 3.0):
            repo.append(record(7, t))
        times = [rec.t for rec in repo.history_of(7)]
        assert times == [1.0, 2.0, 3.0]

    def test_histories_are_per_object(self, repo):
        repo.append(record(1, 1.0))
        repo.append(record(2, 2.0))
        repo.append(record(1, 3.0))
        assert len(repo.history_of(1)) == 2
        assert len(repo.history_of(2)) == 1
        assert repo.history_of(99) == []

    def test_trajectory_of(self, repo):
        repo.append(record(5, 10.0))
        repo.append(record(5, 20.0))
        trajectory = repo.trajectory_of(5)
        assert trajectory == [(10.0, 0.1, 0.5), (20.0, 0.2, 0.5)]

    def test_counters(self, repo):
        for i in range(30):
            repo.append(record(i % 3, float(i)))
        assert repo.appended_count == 30
        assert repo.record_count() == 30
        assert repo.tracked_objects() == {0, 1, 2}


class TestRecovery:
    def test_rebuild_index_recovers_everything(self, repo):
        for i in range(50):
            repo.append(record(i % 5, float(i)))
        before = {oid: repo.trajectory_of(oid) for oid in repo.tracked_objects()}
        repo.rebuild_index()
        after = {oid: repo.trajectory_of(oid) for oid in repo.tracked_objects()}
        assert before == after
        assert repo.appended_count == 50
