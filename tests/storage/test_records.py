"""Binary record codecs."""

import pytest

from repro.geometry import Point, Rect, Velocity
from repro.storage import LocationRecord, QueryRecord


class TestLocationRecord:
    def test_round_trip(self):
        record = LocationRecord(42, Point(0.25, 0.75), Velocity(0.01, -0.02), 99.5)
        assert LocationRecord.unpack(record.pack()) == record

    def test_packed_size_is_declared_size(self):
        record = LocationRecord(1, Point(0, 0), Velocity.ZERO, 0.0)
        assert len(record.pack()) == LocationRecord.SIZE

    def test_negative_oid_round_trips(self):
        record = LocationRecord(-5, Point(0, 0), Velocity.ZERO, 0.0)
        assert LocationRecord.unpack(record.pack()).oid == -5

    def test_garbage_rejected(self):
        with pytest.raises(Exception):
            LocationRecord.unpack(b"too short")


class TestQueryRecord:
    @pytest.mark.parametrize("kind", ["range", "knn", "predictive"])
    def test_round_trip_all_kinds(self, kind):
        record = QueryRecord(7, kind, Rect(0.1, 0.2, 0.3, 0.4), 12.0)
        assert QueryRecord.unpack(record.pack()) == record

    def test_packed_size(self):
        record = QueryRecord(1, "range", Rect(0, 0, 1, 1), 0.0)
        assert len(record.pack()) == QueryRecord.SIZE

    def test_unknown_kind_rejected(self):
        record = QueryRecord(1, "teleport", Rect(0, 0, 1, 1), 0.0)
        with pytest.raises(ValueError):
            record.pack()
