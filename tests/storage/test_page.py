"""Slotted pages."""

import pytest

from repro.storage import PAGE_SIZE, Page
from repro.storage.page import PageFullError


class TestInsertRead:
    def test_round_trip(self):
        page = Page(0)
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records(self):
        page = Page(0)
        slots = [page.insert(f"record-{i}".encode()) for i in range(20)]
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"record-{i}".encode()

    def test_empty_record_rejected(self):
        with pytest.raises(ValueError):
            Page(0).insert(b"")

    def test_page_full(self):
        page = Page(0)
        big = bytes(1000)
        for __ in range(4):
            page.insert(big)
        with pytest.raises(PageFullError):
            page.insert(big)

    def test_free_space_decreases(self):
        page = Page(0)
        before = page.free_space
        page.insert(bytes(100))
        assert page.free_space < before - 100

    def test_bad_slot_raises(self):
        page = Page(0)
        page.insert(b"x")
        with pytest.raises(IndexError):
            page.read(5)

    def test_data_must_be_page_sized(self):
        with pytest.raises(ValueError):
            Page(0, b"short")


class TestDelete:
    def test_deleted_slot_unreadable(self):
        page = Page(0)
        slot = page.insert(b"doomed")
        page.delete(slot)
        with pytest.raises(KeyError):
            page.read(slot)
        with pytest.raises(KeyError):
            page.delete(slot)

    def test_live_slots(self):
        page = Page(0)
        slots = [page.insert(bytes([i])) for i in range(5)]
        page.delete(slots[1])
        page.delete(slots[3])
        assert page.live_slots() == [slots[0], slots[2], slots[4]]

    def test_is_live(self):
        page = Page(0)
        slot = page.insert(b"x")
        assert page.is_live(slot)
        page.delete(slot)
        assert not page.is_live(slot)


class TestCompaction:
    def test_compaction_reclaims_space(self):
        page = Page(0)
        big = bytes(900)
        slots = [page.insert(big) for __ in range(4)]
        page.delete(slots[0])
        page.delete(slots[2])
        with pytest.raises(PageFullError):
            page.insert(bytes(1500))
        page.compact()
        page.insert(bytes(1500))  # now fits

    def test_compaction_preserves_slots_and_content(self):
        page = Page(0)
        slots = [page.insert(f"keep-{i}".encode() * 3) for i in range(8)]
        for victim in (1, 4, 6):
            page.delete(slots[victim])
        page.compact()
        for i, slot in enumerate(slots):
            if i in (1, 4, 6):
                assert not page.is_live(slot)
            else:
                assert page.read(slot) == f"keep-{i}".encode() * 3


class TestPersistenceFormat:
    def test_reload_from_bytes(self):
        page = Page(7)
        slots = [page.insert(f"persist-{i}".encode()) for i in range(5)]
        page.delete(slots[2])
        reloaded = Page(7, bytes(page.data))
        assert reloaded.read(slots[0]) == b"persist-0"
        assert not reloaded.is_live(slots[2])
        assert reloaded.slot_count == 5

    def test_fresh_page_has_full_free_space(self):
        page = Page(0)
        assert page.free_space == PAGE_SIZE - 4 - 4  # header + 1 slot reserve
