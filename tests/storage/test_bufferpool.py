"""Buffer pool: pinning, LRU eviction, write-back."""

import pytest

from repro.storage import BufferPool, InMemoryDiskManager
from repro.storage.bufferpool import BufferPoolFullError


@pytest.fixture
def pool():
    return BufferPool(InMemoryDiskManager(), capacity=3)


class TestLifecycle:
    def test_new_page_is_pinned_and_dirty(self, pool):
        page = pool.new_page()
        assert page.pin_count == 1
        assert page.dirty

    def test_fetch_after_unpin_hits_cache(self, pool):
        page = pool.new_page()
        pid = page.page_id
        pool.unpin(page)
        again = pool.fetch(pid)
        assert again is page
        assert pool.stats.hits == 1

    def test_unpin_unpinned_raises(self, pool):
        page = pool.new_page()
        pool.unpin(page)
        with pytest.raises(ValueError):
            pool.unpin(page)

    def test_pinned_context_manager(self, pool):
        page = pool.new_page()
        pool.unpin(page)
        with pool.pinned(page.page_id) as pinned:
            assert pinned.pin_count == 1
        assert pinned.pin_count == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferPool(InMemoryDiskManager(), capacity=0)


class TestEviction:
    def test_lru_eviction_on_overflow(self, pool):
        pages = [pool.new_page() for __ in range(3)]
        for page in pages:
            pool.unpin(page)
        pool.new_page()  # forces eviction of pages[0] (least recent)
        assert pool.stats.evictions == 1
        assert pages[0].page_id not in pool.resident_page_ids

    def test_pinned_pages_survive_eviction(self, pool):
        keeper = pool.new_page()  # stays pinned
        others = [pool.new_page() for __ in range(2)]
        for page in others:
            pool.unpin(page)
        pool.new_page()
        assert keeper.page_id in pool.resident_page_ids

    def test_all_pinned_raises(self, pool):
        for __ in range(3):
            pool.new_page()  # all pinned
        with pytest.raises(BufferPoolFullError):
            pool.new_page()

    def test_dirty_eviction_writes_back(self, pool):
        page = pool.new_page()
        page.data[100:105] = b"dirty"
        pid = page.page_id
        pool.unpin(page)
        for __ in range(3):
            pool.unpin(pool.new_page())
        # page must have been evicted and flushed
        assert pid not in pool.resident_page_ids
        fresh = pool.fetch(pid)
        assert bytes(fresh.data[100:105]) == b"dirty"


class TestFlush:
    def test_flush_all_persists(self):
        disk = InMemoryDiskManager()
        pool = BufferPool(disk, capacity=4)
        page = pool.new_page()
        page.data[0:5] = b"\x01\x02\x03\x04\x05"
        pool.unpin(page)
        pool.flush_all()
        assert disk.read_page(page.page_id)[0:5] == b"\x01\x02\x03\x04\x05"
        assert not page.dirty

    def test_hit_ratio(self, pool):
        page = pool.new_page()
        pid = page.page_id
        pool.unpin(page)
        for __ in range(9):
            pool.unpin(pool.fetch(pid))
        assert pool.stats.hit_ratio == pytest.approx(1.0)


class TestTelemetry:
    def test_registry_counters_back_stats_snapshot(self, pool):
        page = pool.new_page()
        pool.unpin(page)
        pool.fetch(page.page_id)          # hit
        for __ in range(3):
            p = pool.new_page()           # overflow capacity=3 -> evictions
            pool.unpin(p)
        reg = pool.registry
        assert reg.value_of("bufferpool_hits_total") == float(pool.stats.hits)
        assert reg.value_of("bufferpool_misses_total") == float(pool.stats.misses)
        assert reg.value_of("bufferpool_evictions_total") == float(
            pool.stats.evictions
        )
        assert reg.value_of("bufferpool_resident_pages") == float(
            len(pool.resident_page_ids)
        )

    def test_miss_counted_on_cold_fetch(self, pool):
        page = pool.new_page()
        pool.unpin(page)
        pool.flush_all()
        for __ in range(3):  # evict the first page
            pool.unpin(pool.new_page())
        pool.fetch(page.page_id)
        assert pool.registry.value_of("bufferpool_misses_total") >= 1.0

    def test_empty_pool_hit_ratio_is_zero(self):
        """Satellite: zero-denominator ratio returns 0.0, not ZeroDivisionError."""
        pool = BufferPool(InMemoryDiskManager(), capacity=2)
        assert pool.stats.hit_ratio == 0.0

    def test_shared_registry_aggregates_two_pools(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        a = BufferPool(InMemoryDiskManager(), capacity=2, registry=reg)
        b = BufferPool(InMemoryDiskManager(), capacity=2, registry=reg)
        a.unpin(a.new_page())
        b.unpin(b.new_page())
        a.fetch(0)
        b.fetch(0)
        assert reg.value_of("bufferpool_hits_total") == 2.0
