"""Model-based storage fuzzing (hypothesis).

A slotted page and a heap file are each checked against a plain Python
dict model under random interleavings of inserts, deletes, reads and
compactions.
"""

from hypothesis import given, settings, strategies as st

from repro.storage import BufferPool, HeapFile, InMemoryDiskManager, Page
from repro.storage.page import PageFullError

payload_st = st.binary(min_size=1, max_size=200)

page_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), payload_st),
        st.tuples(st.just("delete"), st.integers(0, 500)),
        st.tuples(st.just("compact"), st.just(b"")),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(page_ops)
def test_page_matches_dict_model(ops):
    page = Page(0)
    model: dict[int, bytes] = {}
    for op, payload in ops:
        if op == "insert":
            try:
                slot = page.insert(payload)
            except PageFullError:
                continue
            assert slot not in model
            model[slot] = payload
        elif op == "delete":
            if not model:
                continue
            slot = sorted(model)[payload % len(model)]
            page.delete(slot)
            del model[slot]
        else:
            page.compact()
        # Full cross-check after every operation.
        assert sorted(page.live_slots()) == sorted(model)
        for slot, expected in model.items():
            assert page.read(slot) == expected


@settings(max_examples=60, deadline=None)
@given(page_ops)
def test_page_survives_serialization_roundtrip(ops):
    page = Page(0)
    model: dict[int, bytes] = {}
    for op, payload in ops:
        if op == "insert":
            try:
                model[page.insert(payload)] = payload
            except PageFullError:
                pass
        elif op == "delete" and model:
            slot = sorted(model)[payload % len(model)]
            page.delete(slot)
            del model[slot]
        elif op == "compact":
            page.compact()
    reloaded = Page(0, bytes(page.data))
    assert sorted(reloaded.live_slots()) == sorted(model)
    for slot, expected in model.items():
        assert reloaded.read(slot) == expected


heap_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), payload_st),
        st.tuples(st.just("delete"), st.integers(0, 500)),
    ),
    max_size=80,
)


@settings(max_examples=40, deadline=None)
@given(heap_ops, st.integers(2, 8))
def test_heapfile_matches_dict_model(ops, capacity):
    heap = HeapFile(BufferPool(InMemoryDiskManager(), capacity=capacity))
    model = {}
    for op, payload in ops:
        if op == "insert":
            rid = heap.insert(payload)
            assert rid not in model
            model[rid] = payload
        elif model:
            rid = sorted(model)[payload % len(model)]
            heap.delete(rid)
            del model[rid]
    assert heap.record_count() == len(model)
    scanned = dict(heap.scan())
    assert scanned == model
