"""Heap files and record ids, including disk round trips."""

import os

import pytest

from repro.storage import (
    BufferPool,
    DiskManager,
    HeapFile,
    InMemoryDiskManager,
    RecordId,
)


@pytest.fixture
def heap():
    return HeapFile(BufferPool(InMemoryDiskManager(), capacity=4))


class TestBasics:
    def test_insert_read(self, heap):
        rid = heap.insert(b"payload")
        assert heap.read(rid) == b"payload"

    def test_many_records_span_pages(self, heap):
        rids = [heap.insert(bytes([i % 256]) * 600) for i in range(40)]
        assert len({rid.page_id for rid in rids}) > 1
        for i, rid in enumerate(rids):
            assert heap.read(rid) == bytes([i % 256]) * 600

    def test_record_count(self, heap):
        for i in range(25):
            heap.insert(f"r{i}".encode())
        assert heap.record_count() == 25

    def test_delete(self, heap):
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(KeyError):
            heap.read(rid)
        assert heap.record_count() == 0

    def test_foreign_rid_rejected(self, heap):
        heap.insert(b"x")
        with pytest.raises(KeyError):
            heap.read(RecordId(999, 0))

    def test_scan_yields_live_records(self, heap):
        rids = [heap.insert(f"rec-{i}".encode()) for i in range(10)]
        heap.delete(rids[3])
        scanned = dict(heap.scan())
        assert len(scanned) == 9
        assert rids[3] not in scanned
        assert scanned[rids[0]] == b"rec-0"

    def test_space_reuse_after_delete(self, heap):
        rids = [heap.insert(bytes(1000)) for __ in range(8)]
        pages_before = len(set(heap.page_ids))
        for rid in rids:
            heap.delete(rid)
        for __ in range(8):
            heap.insert(bytes(1000))
        assert len(set(heap.page_ids)) == pages_before  # no growth


class TestDiskRoundTrip:
    def test_reopen_from_disk(self, tmp_path):
        path = os.path.join(tmp_path, "heap.pages")
        disk = DiskManager(path)
        pool = BufferPool(disk, capacity=2)
        heap = HeapFile(pool)
        rids = [heap.insert(f"durable-{i}".encode()) for i in range(60)]
        page_ids = heap.page_ids
        pool.flush_all()
        disk.close()

        with DiskManager(path) as disk2:
            heap2 = HeapFile(BufferPool(disk2, capacity=2), page_ids=page_ids)
            assert heap2.record_count() == 60
            for i, rid in enumerate(rids):
                assert heap2.read(rid) == f"durable-{i}".encode()

    def test_disk_manager_rejects_torn_file(self, tmp_path):
        path = os.path.join(tmp_path, "torn.pages")
        with open(path, "wb") as f:
            f.write(b"x" * 100)
        with pytest.raises(ValueError):
            DiskManager(path)

    def test_disk_manager_bounds(self, tmp_path):
        with DiskManager(os.path.join(tmp_path, "d.pages")) as disk:
            pid = disk.allocate()
            disk.read_page(pid)
            with pytest.raises(IndexError):
                disk.read_page(pid + 1)
