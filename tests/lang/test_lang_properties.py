"""Property-based language tests: total error behaviour and round trips."""

from hypothesis import given, settings, strategies as st

from repro.geometry import Point, Rect
from repro.lang import (
    LexError,
    ParseError,
    RegisterKnn,
    RegisterRange,
    parse,
)


@settings(max_examples=200, deadline=None)
@given(st.text(max_size=80))
def test_parser_is_total_over_arbitrary_text(source):
    """Any input either parses or raises a *language* error — never an
    internal exception (IndexError, TypeError, ...)."""
    try:
        parse(source)
    except (ParseError, LexError):
        pass


name_st = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_\-]{0,10}", fullmatch=True)
num = st.floats(min_value=0, max_value=1, allow_nan=False, width=16)


@settings(max_examples=100, deadline=None)
@given(name_st, num, num, num, num)
def test_register_range_round_trip(name, a, b, c, d):
    x1, x2 = sorted((a, b))
    y1, y2 = sorted((c, d))
    source = f"REGISTER RANGE QUERY {name} REGION ({x1!r}, {y1!r}, {x2!r}, {y2!r})"
    command = parse(source)
    assert command == RegisterRange(name, Rect(x1, y1, x2, y2))


@settings(max_examples=100, deadline=None)
@given(name_st, st.integers(1, 100), num, num)
def test_register_knn_round_trip(name, k, x, y):
    source = f"REGISTER KNN QUERY {name} K {k} AT ({x!r}, {y!r})"
    command = parse(source)
    assert command == RegisterKnn(name, k, Point(x, y))


@settings(max_examples=60, deadline=None)
@given(st.lists(name_st, min_size=1, max_size=10, unique=True))
def test_binder_name_allocation_is_injective(names):
    from repro.core import IncrementalEngine
    from repro.lang import Binder

    binder = Binder(IncrementalEngine(grid_size=4))
    qids = [
        binder.execute(parse(f"REGISTER RANGE QUERY {name} REGION (0,0,1,1)"))
        for name in names
    ]
    assert len(set(qids)) == len(names)
    for name, qid in zip(names, qids):
        assert binder.qid_of(name) == qid
