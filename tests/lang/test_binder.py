"""Binding parsed commands to a running engine."""

import pytest

from repro.core import IncrementalEngine
from repro.geometry import Point
from repro.lang import Binder, parse
from repro.lang.binder import BindError


@pytest.fixture
def engine():
    return IncrementalEngine(grid_size=8)


@pytest.fixture
def binder(engine):
    return Binder(engine)


class TestRegistration:
    def test_register_allocates_qids(self, engine, binder):
        qid_a = binder.execute(parse("REGISTER RANGE QUERY a REGION (0,0,1,1)"))
        qid_b = binder.execute(parse("REGISTER KNN QUERY b K 2 AT (0.5,0.5)"))
        assert qid_a != qid_b
        engine.evaluate(0.0)
        assert engine.query_count == 2
        assert binder.qid_of("a") == qid_a
        assert binder.names() == ["a", "b"]

    def test_duplicate_name_rejected(self, binder):
        binder.execute(parse("REGISTER RANGE QUERY a REGION (0,0,1,1)"))
        with pytest.raises(BindError):
            binder.execute(parse("REGISTER RANGE QUERY a REGION (0,0,1,1)"))

    def test_registered_query_finds_objects(self, engine, binder):
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        qid = binder.execute(parse("REGISTER RANGE QUERY a REGION (0.4,0.4,0.6,0.6)"))
        engine.evaluate(0.0)
        assert engine.answer_of(qid) == frozenset({1})


class TestMove:
    def test_move_range_by_region(self, engine, binder):
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        qid = binder.execute(parse("REGISTER RANGE QUERY a REGION (0.4,0.4,0.6,0.6)"))
        engine.evaluate(0.0)
        binder.execute(parse("MOVE QUERY a REGION (0.8,0.8,0.9,0.9)"), t=1.0)
        engine.evaluate(1.0)
        assert engine.answer_of(qid) == frozenset()

    def test_move_knn_by_at(self, engine, binder):
        engine.report_object(1, Point(0.1, 0.1), 0.0)
        engine.report_object(2, Point(0.9, 0.9), 0.0)
        qid = binder.execute(parse("REGISTER KNN QUERY b K 1 AT (0.0, 0.0)"))
        engine.evaluate(0.0)
        assert engine.answer_of(qid) == frozenset({1})
        binder.execute(parse("MOVE QUERY b AT (1.0, 1.0)"), t=1.0)
        engine.evaluate(1.0)
        assert engine.answer_of(qid) == frozenset({2})

    def test_wrong_move_clause_for_kind(self, binder):
        binder.execute(parse("REGISTER KNN QUERY b K 1 AT (0,0)"))
        binder.execute(parse("REGISTER RANGE QUERY a REGION (0,0,1,1)"))
        with pytest.raises(BindError):
            binder.execute(parse("MOVE QUERY b REGION (0,0,1,1)"))
        with pytest.raises(BindError):
            binder.execute(parse("MOVE QUERY a AT (0.5,0.5)"))

    def test_move_unknown_name(self, binder):
        with pytest.raises(BindError):
            binder.execute(parse("MOVE QUERY ghost AT (0,0)"))


class TestUnregister:
    def test_unregister_frees_name(self, engine, binder):
        binder.execute(parse("REGISTER RANGE QUERY a REGION (0,0,1,1)"))
        engine.evaluate(0.0)
        binder.execute(parse("UNREGISTER QUERY a"))
        engine.evaluate(1.0)
        assert engine.query_count == 0
        # The name can be reused.
        binder.execute(parse("REGISTER RANGE QUERY a REGION (0,0,1,1)"))
        engine.evaluate(2.0)
        assert engine.query_count == 1

    def test_unregister_unknown_name(self, binder):
        with pytest.raises(BindError):
            binder.execute(parse("UNREGISTER QUERY ghost"))


class TestPrograms:
    def test_run_program(self, engine, binder):
        qids = binder.run_program(
            """
            REGISTER RANGE QUERY a REGION (0, 0, 0.5, 0.5)
            REGISTER PREDICTIVE QUERY c REGION (0, 0, 1, 1) WITHIN 30
            UNREGISTER QUERY a
            """
        )
        engine.evaluate(0.0)
        assert len(qids) == 3
        assert engine.query_count == 1
