"""Parser for the query command language."""

import pytest

from repro.geometry import Point, Rect
from repro.lang import (
    MoveQuery,
    ParseError,
    RegisterKnn,
    RegisterPredictive,
    RegisterRange,
    Unregister,
    parse,
    parse_program,
)


class TestRegister:
    def test_range(self):
        cmd = parse("REGISTER RANGE QUERY downtown REGION (0.1, 0.2, 0.3, 0.4)")
        assert cmd == RegisterRange("downtown", Rect(0.1, 0.2, 0.3, 0.4))

    def test_knn(self):
        cmd = parse("REGISTER KNN QUERY cabs K 3 AT (0.5, 0.6)")
        assert cmd == RegisterKnn("cabs", 3, Point(0.5, 0.6))

    def test_predictive(self):
        cmd = parse(
            "REGISTER PREDICTIVE QUERY air REGION (0, 0, 1, 1) WITHIN 30 SECONDS"
        )
        assert cmd == RegisterPredictive("air", Rect(0, 0, 1, 1), 30.0)

    def test_predictive_without_seconds_keyword(self):
        cmd = parse("REGISTER PREDICTIVE QUERY air REGION (0, 0, 1, 1) WITHIN 30")
        assert cmd == RegisterPredictive("air", Rect(0, 0, 1, 1), 30.0)

    def test_keywords_are_case_insensitive(self):
        cmd = parse("register range query q REGION (0, 0, 1, 1)")
        assert isinstance(cmd, RegisterRange)

    def test_names_are_case_sensitive(self):
        assert parse("REGISTER RANGE QUERY Foo REGION (0,0,1,1)").name == "Foo"


class TestMoveAndUnregister:
    def test_move_region(self):
        cmd = parse("MOVE QUERY downtown REGION (0.2, 0.2, 0.4, 0.4)")
        assert cmd == MoveQuery("downtown", region=Rect(0.2, 0.2, 0.4, 0.4))

    def test_move_at(self):
        cmd = parse("MOVE QUERY cabs AT (0.9, 0.1)")
        assert cmd == MoveQuery("cabs", center=Point(0.9, 0.1))

    def test_unregister(self):
        assert parse("UNREGISTER QUERY cabs") == Unregister("cabs")


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "REGISTER",
            "REGISTER CIRCLE QUERY q REGION (0,0,1,1)",
            "REGISTER RANGE QUERY q REGION (0,0,1)",
            "REGISTER RANGE QUERY q REGION (1,1,0,0)",  # degenerate
            "REGISTER KNN QUERY q K 0 AT (0,0)",
            "REGISTER KNN QUERY q K 2.5 AT (0,0)",
            "REGISTER PREDICTIVE QUERY q REGION (0,0,1,1) WITHIN -5",
            "REGISTER RANGE QUERY q REGION (0,0,1,1) trailing",
            "MOVE QUERY",
            "UNREGISTER q",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestProgram:
    def test_multi_line_with_comments_and_blanks(self):
        program = """
        -- register two queries
        REGISTER RANGE QUERY a REGION (0, 0, 0.5, 0.5)

        REGISTER KNN QUERY b K 2 AT (0.5, 0.5)  -- trailing comment
        """
        commands = parse_program(program)
        assert len(commands) == 2
        assert isinstance(commands[0], RegisterRange)
        assert isinstance(commands[1], RegisterKnn)

    def test_empty_program(self):
        assert parse_program("\n  -- nothing here\n") == []
