"""The console: object stream, evaluation and inspection commands."""

import pytest

from repro.lang import Console, ParseError, parse
from repro.lang.ast import Evaluate, RemoveObject, ReportObject, ShowAnswer
from repro.lang.binder import BindError


@pytest.fixture
def console() -> Console:
    return Console()


class TestParsingNewCommands:
    def test_report_object(self):
        cmd = parse("REPORT OBJECT 7 AT (0.5, 0.5)")
        assert isinstance(cmd, ReportObject)
        assert cmd.oid == 7 and cmd.velocity is None

    def test_report_object_with_velocity(self):
        cmd = parse("REPORT OBJECT 7 AT (0.5, 0.5) VELOCITY (0.01, -0.02)")
        assert cmd.velocity is not None
        assert cmd.velocity.y == -0.02

    def test_remove_object(self):
        assert parse("REMOVE OBJECT 9") == RemoveObject(9)

    def test_evaluate_variants(self):
        assert parse("EVALUATE") == Evaluate()
        assert parse("EVALUATE AT 12.5") == Evaluate(at=12.5)

    def test_show_answer(self):
        assert parse("SHOW ANSWER q1") == ShowAnswer("q1")

    @pytest.mark.parametrize(
        "bad",
        [
            "REPORT OBJECT x AT (0,0)",
            "REPORT OBJECT 1.5 AT (0,0)",
            "REPORT OBJECT 1",
            "SHOW EVERYTHING",
            "EVALUATE AT",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(ParseError):
            parse(bad)


class TestConsoleExecution:
    def test_end_to_end_session(self, console):
        console.run("REPORT OBJECT 1 AT (0.55, 0.55)")
        console.run("REGISTER RANGE QUERY watch REGION (0.5, 0.5, 0.6, 0.6)")
        output = console.run("EVALUATE")
        assert "+p1" in output
        assert console.run("SHOW ANSWER watch") == "watch: [1]"

    def test_evaluate_with_clock(self, console):
        console.run("REPORT OBJECT 1 AT (0.5, 0.5)")
        console.run("EVALUATE AT 10")
        assert console.engine.now == 10.0

    def test_no_updates_message(self, console):
        assert console.run("EVALUATE") == "no updates"

    def test_remove_object_flow(self, console):
        console.run("REPORT OBJECT 1 AT (0.55, 0.55)")
        console.run("REGISTER RANGE QUERY watch REGION (0.5, 0.5, 0.6, 0.6)")
        console.run("EVALUATE")
        console.run("REMOVE OBJECT 1")
        output = console.run("EVALUATE")
        assert "-p1" in output
        assert console.run("SHOW ANSWER watch") == "watch: []"

    def test_show_queries_and_objects(self, console):
        assert console.run("SHOW QUERIES") == "no queries registered"
        console.run("REGISTER KNN QUERY cabs K 2 AT (0.5, 0.5)")
        console.run("REPORT OBJECT 1 AT (0.1, 0.1)")
        console.run("EVALUATE")
        assert "cabs" in console.run("SHOW QUERIES")
        assert console.run("SHOW OBJECTS") == "1 objects tracked"

    def test_velocity_feeds_predictive_queries(self, console):
        console.run(
            "REGISTER PREDICTIVE QUERY zone REGION (0.4, 0.4, 0.5, 0.5) WITHIN 50"
        )
        console.run("REPORT OBJECT 1 AT (0.1, 0.45) VELOCITY (0.01, 0.0)")
        output = console.run("EVALUATE")
        assert "+p1" in output

    def test_show_answer_unknown_query(self, console):
        with pytest.raises(BindError):
            console.run("SHOW ANSWER ghost")

    def test_run_script(self, console):
        outputs = console.run_script(
            """
            -- a tiny scenario
            REPORT OBJECT 1 AT (0.55, 0.55)
            REGISTER RANGE QUERY watch REGION (0.5, 0.5, 0.6, 0.6)
            EVALUATE
            SHOW ANSWER watch
            """
        )
        assert outputs[-1] == "watch: [1]"
