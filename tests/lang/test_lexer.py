"""Tokeniser for the query command language."""

import pytest

from repro.lang import LexError, TokenKind, tokenize


class TestTokenize:
    def test_words_and_punctuation(self):
        tokens = tokenize("REGISTER RANGE QUERY q1 REGION (0.1, 0.2, 0.3, 0.4)")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.WORD, TokenKind.WORD, TokenKind.WORD, TokenKind.WORD,
            TokenKind.WORD, TokenKind.LPAREN, TokenKind.NUMBER,
            TokenKind.COMMA, TokenKind.NUMBER, TokenKind.COMMA,
            TokenKind.NUMBER, TokenKind.COMMA, TokenKind.NUMBER,
            TokenKind.RPAREN, TokenKind.END,
        ]

    def test_numbers(self):
        tokens = tokenize("1 2.5 -3 +4.25 1e-3 .5")
        values = [t.number for t in tokens[:-1]]
        assert values == [1.0, 2.5, -3.0, 4.25, 0.001, 0.5]

    def test_identifiers_with_dashes_and_digits(self):
        tokens = tokenize("my-query_2")
        assert tokens[0].kind is TokenKind.WORD
        assert tokens[0].text == "my-query_2"

    def test_whitespace_insensitive(self):
        a = [(t.kind, t.text) for t in tokenize("A ( 1 , 2 )")]
        b = [(t.kind, t.text) for t in tokenize("A(1,2)")]
        assert [x[0] for x in a] == [x[0] for x in b]

    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind is TokenKind.END

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("REGISTER @ QUERY")

    def test_number_on_word_raises(self):
        with pytest.raises(ValueError):
            tokenize("REGISTER")[0].number

    def test_positions_recorded(self):
        tokens = tokenize("AB (")
        assert tokens[0].position == 0
        assert tokens[1].position == 3
