"""Measurement helpers."""

import pytest

from repro.stats import PhaseTimer, Series, StopWatch, format_table


class TestStopWatch:
    def test_accumulates_laps(self):
        watch = StopWatch()
        for __ in range(3):
            with watch:
                pass
        assert len(watch.laps) == 3
        assert watch.total == pytest.approx(sum(watch.laps))
        assert watch.mean == pytest.approx(watch.total / 3)

    def test_empty_watch(self):
        watch = StopWatch()
        assert watch.total == 0.0
        assert watch.mean == 0.0


class TestPhaseTimer:
    def test_accumulates_into_named_slots(self):
        timer = PhaseTimer()
        for __ in range(3):
            with timer.phase("join"):
                pass
        with timer.phase("repair"):
            pass
        assert set(timer.seconds) == {"join", "repair"}
        assert all(t >= 0.0 for t in timer.seconds.values())

    def test_shares_a_caller_supplied_dict(self):
        slots: dict[str, float] = {"join": 1.0}
        timer = PhaseTimer(slots)
        with timer.phase("join"):
            pass
        assert timer.seconds is slots
        assert slots["join"] >= 1.0  # added to, not overwritten

    def test_records_even_when_the_phase_raises(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("broken"):
                raise RuntimeError("boom")
        assert "broken" in timer.seconds


class TestSeries:
    def test_statistics(self):
        series = Series("latency")
        for v in (1.0, 2.0, 3.0):
            series.add(v)
        assert series.mean == 2.0
        assert series.total == 6.0
        assert series.minimum == 1.0
        assert series.maximum == 3.0

    def test_empty_series(self):
        series = Series("empty")
        assert series.mean == 0.0
        assert series.minimum == 0.0
        assert series.maximum == 0.0

    def test_summary_mentions_name(self):
        series = Series("throughput")
        series.add(5.0)
        assert "throughput" in series.summary()


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        table = format_table(["x", "value"], [[1, 2.5], [10, 0.125]])
        lines = table.splitlines()
        assert "x" in lines[0] and "value" in lines[0]
        assert len(lines) == 4
        assert "2.500" in lines[2]

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_column_alignment(self):
        table = format_table(["col"], [[1], [100]])
        lines = table.splitlines()
        assert len(lines[2]) == len(lines[3])

    def test_stopwatch_records_lap_when_body_raises(self):
        """Satellite regression: a raising body must still record a lap."""
        watch = StopWatch()
        with pytest.raises(RuntimeError):
            with watch:
                raise RuntimeError("body failed")
        assert len(watch.laps) == 1
        assert watch.total == pytest.approx(watch.laps[0])
        # The watch is reusable after the exception.
        with watch:
            pass
        assert len(watch.laps) == 2
