"""Fault injector behaviour against a live server stack."""

from repro.core.server import LocationAwareServer
from repro.faults import FaultInjector, FaultPlan
from repro.geometry import Point, Rect
from repro.parallel import ParallelConfig

REGION = Rect(0.0, 0.0, 1.0, 1.0)


def make_server(**kwargs) -> LocationAwareServer:
    server = LocationAwareServer(grid_size=8, **kwargs)
    server.register_client(1)
    server.register_range_query(1, qid=10, region=REGION)
    server.evaluate_cycle(0.0)  # flush the buffered registration
    return server


def install(server, **rates) -> FaultInjector:
    injector = FaultInjector(server, FaultPlan(seed=1, **rates))
    injector.install()
    return injector


class TestDownlinkFaults:
    def test_drops_lose_updates_and_count(self):
        server = make_server()
        injector = install(server, drop_rate=1.0)
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        result = server.evaluate_cycle(1.0)
        assert result.dropped_updates == 1
        assert server.link_of(1).drain() == []
        assert injector.counts["drop"] == 1
        assert (
            server.registry.value_of(
                "fault_injected_total", {"kind": "drop"}
            )
            == 1.0
        )

    def test_duplicates_deliver_twice(self):
        server = make_server()
        injector = install(server, duplicate_rate=1.0)
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)
        messages = server.link_of(1).drain()
        assert len(messages) == 2
        assert messages[0] == messages[1]
        assert injector.counts["duplicate"] == 1

    def test_reorder_swaps_across_queries_only(self):
        server = make_server()
        server.register_range_query(1, qid=11, region=REGION)
        install(server, reorder_rate=1.0)
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)
        qids = [m.qid for m in server.link_of(1).drain()]
        # Both positive updates arrive, in swapped query order.
        assert sorted(qids) == [10, 11]
        assert qids == [11, 10]

    def test_uninstall_restores_clean_delivery(self):
        server = make_server()
        injector = install(server, drop_rate=1.0)
        injector.uninstall()
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        result = server.evaluate_cycle(1.0)
        assert result.delivered_updates == 1


class TestUplinkDelay:
    def test_delayed_report_lands_next_cycle(self):
        server = make_server()
        injector = install(server, uplink_delay_rate=1.0)
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        assert 1 not in server.engine.objects  # deferred, not processed
        assert injector.counts["uplink_delay"] == 1
        result = server.evaluate_cycle(1.0)  # replays the delayed uplink
        assert 1 in server.engine.objects
        assert result.delivered_updates == 1

    def test_replay_bypasses_the_gate(self):
        """A delayed uplink must not be re-rolled into further delay."""
        server = make_server()
        install(server, uplink_delay_rate=1.0)
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)
        assert 1 in server.engine.objects


class TestDisconnects:
    def test_disconnect_then_scheduled_wakeup(self):
        server = make_server()
        injector = install(server, disconnect_rate=1.0, reconnect_after=2)
        injector.begin_cycle(0)
        assert not server.link_of(1).connected
        assert injector.counts["disconnect"] == 1
        injector.begin_cycle(1)  # still dark
        assert not server.link_of(1).connected
        injector.begin_cycle(2)  # wakeup fires, then a fresh disconnect
        assert injector.counts["disconnect"] == 2

    def test_uninstall_wakes_dark_clients(self):
        server = make_server()
        injector = install(server, disconnect_rate=1.0)
        injector.begin_cycle(0)
        assert not server.link_of(1).connected
        injector.uninstall()
        assert server.link_of(1).connected


class TestWorkerCrash:
    def test_crashed_shards_recover_inline(self):
        """With every shard crashing, the parallel engine must still
        produce the same updates as a serial one (reset + inline rerun)."""
        parallel = make_server(
            pipeline="parallel",
            parallelism=ParallelConfig(workers=2, backend="thread", min_batch=1),
        )
        serial = make_server()
        injector = install(parallel, worker_crash_rate=1.0)
        for server in (parallel, serial):
            for oid in range(8):
                server.receive_object_report(
                    oid, Point(0.1 + 0.1 * oid, 0.5), 1.0
                )
        with parallel, serial:
            got = parallel.evaluate_cycle(1.0).updates
            want = serial.evaluate_cycle(1.0).updates
        assert got == want
        assert injector.counts["worker_crash"] > 0

    def test_no_crashes_when_rate_zero(self):
        server = make_server(
            pipeline="parallel",
            parallelism=ParallelConfig(workers=2, backend="thread", min_batch=1),
        )
        injector = install(server, worker_crash_rate=0.0)
        for oid in range(8):
            server.receive_object_report(oid, Point(0.1 + 0.1 * oid, 0.5), 1.0)
        with server:
            server.evaluate_cycle(1.0)
        assert injector.counts["worker_crash"] == 0


class TestTotals:
    def test_total_injected_sums_counts(self):
        server = make_server()
        injector = install(server, drop_rate=1.0, uplink_delay_rate=1.0)
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        server.evaluate_cycle(1.0)
        assert injector.total_injected == sum(injector.counts.values())
        assert injector.total_injected >= 2
