"""Fault plans: validation, determinism, dimension independence."""

import pytest

from repro.faults import FaultPlan
from repro.net import DELIVER, DROP, DUPLICATE, FAULT_ACTIONS, REORDER


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(disconnect_rate=-0.1)

    def test_downlink_rates_partition_one_roll(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=0.5, duplicate_rate=0.4, reorder_rate=0.3)

    def test_reconnect_after_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(reconnect_after=0)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(
            seed=42, drop_rate=0.2, duplicate_rate=0.1, reorder_rate=0.1,
            disconnect_rate=0.3, uplink_delay_rate=0.2, worker_crash_rate=0.2,
        )
        a, b = plan.schedule(), plan.schedule()
        assert [a.downlink_action() for _ in range(200)] == [
            b.downlink_action() for _ in range(200)
        ]
        assert [a.should_disconnect() for _ in range(50)] == [
            b.should_disconnect() for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, drop_rate=0.5).schedule()
        b = FaultPlan(seed=2, drop_rate=0.5).schedule()
        assert [a.downlink_action() for _ in range(100)] != [
            b.downlink_action() for _ in range(100)
        ]

    def test_dimensions_are_independent_streams(self):
        """Consuming downlink decisions must not perturb the disconnect
        stream: each dimension owns its own seeded RNG."""
        plan = FaultPlan(seed=7, drop_rate=0.5, disconnect_rate=0.5)
        undisturbed = plan.schedule()
        disturbed = plan.schedule()
        for _ in range(500):
            disturbed.downlink_action()  # burn the downlink stream only
        assert [undisturbed.should_disconnect() for _ in range(50)] == [
            disturbed.should_disconnect() for _ in range(50)
        ]


class TestActionDistribution:
    def test_all_actions_reachable(self):
        plan = FaultPlan(
            seed=3, drop_rate=0.25, duplicate_rate=0.25, reorder_rate=0.25
        )
        schedule = plan.schedule()
        seen = {schedule.downlink_action() for _ in range(500)}
        assert seen == set(FAULT_ACTIONS)

    def test_zero_rates_always_deliver(self):
        schedule = FaultPlan(seed=9).schedule()
        assert all(schedule.downlink_action() == DELIVER for _ in range(100))

    def test_full_drop_rate_always_drops(self):
        schedule = FaultPlan(seed=9, drop_rate=1.0).schedule()
        assert all(schedule.downlink_action() == DROP for _ in range(100))

    def test_precedence_order(self):
        """drop, then duplicate, then reorder partition the unit roll."""
        schedule = FaultPlan(seed=5, duplicate_rate=1.0).schedule()
        assert all(
            schedule.downlink_action() == DUPLICATE for _ in range(50)
        )
        schedule = FaultPlan(seed=5, reorder_rate=1.0).schedule()
        assert all(schedule.downlink_action() == REORDER for _ in range(50))
