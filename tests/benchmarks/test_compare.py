"""The benchmark-history tool: append, list, diff, and the noise gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "bench_compare", REPO_ROOT / "benchmarks" / "compare.py"
)
compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare)


def bench_json(tmp_path: Path, *, sha: str, ops: float, scale: float = 1.0):
    path = tmp_path / f"BENCH_demo_{sha}.json"
    path.write_text(
        json.dumps(
            {
                "name": "demo",
                "ops_per_sec": ops,
                "rounds": 3,
                "scale": scale,
                "latency_seconds": {"p50": 1.0 / ops, "p95": 1.2 / ops},
                "params": {"objects": 100},
                "environment": {"git_sha": sha},
                "speedup_vs_cell_batched": 1.6,
            }
        )
    )
    return path


class TestAppend:
    def test_appends_one_line_per_summary(self, tmp_path):
        history = tmp_path / "history"
        first = bench_json(tmp_path, sha="a" * 40, ops=100.0)
        second = bench_json(tmp_path, sha="b" * 40, ops=110.0)
        compare.append_entries([first, second], history)
        entries = compare.read_history("demo", history)
        assert [e["sha"][0] for e in entries] == ["a", "b"]
        assert entries[0]["ops_per_sec"] == 100.0
        assert entries[0]["speedup_vs_cell_batched"] == 1.6

    def test_append_is_append_only(self, tmp_path):
        history = tmp_path / "history"
        path = bench_json(tmp_path, sha="a" * 40, ops=100.0)
        compare.append_entries([path], history)
        compare.append_entries([path], history)
        assert len(compare.read_history("demo", history)) == 2

    def test_missing_history_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            compare.read_history("nope", tmp_path / "history")


class TestDiff:
    def entries(self, tmp_path, base_ops, head_ops, **head_kwargs):
        history = tmp_path / "history"
        compare.append_entries(
            [
                bench_json(tmp_path, sha="a" * 40, ops=base_ops),
                bench_json(tmp_path, sha="b" * 40, ops=head_ops, **head_kwargs),
            ],
            history,
        )
        return compare.read_history("demo", history)

    def test_within_noise_is_ok(self, tmp_path):
        base, head = self.entries(tmp_path, 100.0, 95.0)
        status, _ = compare.diff_entries(base, head, 0.15)
        assert status == "ok"

    def test_regression_beyond_threshold(self, tmp_path):
        base, head = self.entries(tmp_path, 100.0, 80.0)
        status, report = compare.diff_entries(base, head, 0.15)
        assert status == "regression"
        assert "0.800" in report

    def test_improvement_beyond_threshold(self, tmp_path):
        base, head = self.entries(tmp_path, 100.0, 130.0)
        status, _ = compare.diff_entries(base, head, 0.15)
        assert status == "improvement"

    def test_refuses_mixed_scales(self, tmp_path):
        base, head = self.entries(tmp_path, 100.0, 100.0, scale=0.1)
        with pytest.raises(SystemExit):
            compare.diff_entries(base, head, 0.15)

    def test_sha_prefix_picks_latest_match(self, tmp_path):
        entries = self.entries(tmp_path, 100.0, 120.0)
        assert compare.pick(entries, "bb", -1)["ops_per_sec"] == 120.0
        with pytest.raises(SystemExit):
            compare.pick(entries, "ffff", -1)


class TestCli:
    def test_end_to_end_regression_exit_code(self, tmp_path, capsys):
        history = tmp_path / "history"
        slow = bench_json(tmp_path, sha="b" * 40, ops=50.0)
        fast = bench_json(tmp_path, sha="a" * 40, ops=100.0)
        assert (
            compare.main(
                ["append", str(fast), str(slow), "--history", str(history)]
            )
            == 0
        )
        assert (
            compare.main(["list", "demo", "--history", str(history)]) == 0
        )
        code = compare.main(["diff", "demo", "--history", str(history)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out

    def test_single_entry_diff_is_a_noop(self, tmp_path):
        history = tmp_path / "history"
        compare.main(
            [
                "append",
                str(bench_json(tmp_path, sha="a" * 40, ops=100.0)),
                "--history",
                str(history),
            ]
        )
        assert compare.main(["diff", "demo", "--history", str(history)]) == 0
