"""Client links: delivery, loss during disconnection, accounting."""

from repro.net import ClientLink, NetworkStats, UpdateMessage


def update(i: int = 1) -> UpdateMessage:
    return UpdateMessage(i, i, 1)


class TestDelivery:
    def test_connected_delivery(self):
        link = ClientLink(1)
        assert link.deliver(update())
        assert link.drain() == [update()]

    def test_drain_empties_inbox(self):
        link = ClientLink(1)
        link.deliver(update())
        link.drain()
        assert link.drain() == []

    def test_disconnected_messages_are_lost(self):
        link = ClientLink(1)
        link.disconnect()
        assert not link.deliver(update())
        link.reconnect()
        assert link.drain() == []  # not queued, lost

    def test_delivery_order_preserved(self):
        link = ClientLink(1)
        for i in range(5):
            link.deliver(update(i))
        assert [m.qid for m in link.drain()] == [0, 1, 2, 3, 4]


class TestAccounting:
    def test_delivered_and_dropped_bytes(self):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        link.deliver(update())
        link.disconnect()
        link.deliver(update())
        assert stats.delivered_bytes == 17
        assert stats.dropped_bytes == 17
        assert stats.delivered_messages == 1
        assert stats.dropped_messages == 1

    def test_by_type_counters(self):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        link.deliver(update())
        link.disconnect()
        link.deliver(update())
        assert stats.by_type["UpdateMessage"] == 1
        assert stats.by_type["dropped:UpdateMessage"] == 1

    def test_shared_stats_across_links(self):
        stats = NetworkStats()
        for cid in range(3):
            ClientLink(cid, stats).deliver(update())
        assert stats.delivered_messages == 3
