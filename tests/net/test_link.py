"""Client links: delivery, loss during disconnection, accounting."""

from repro.net import ClientLink, NetworkStats, UpdateMessage


def update(i: int = 1) -> UpdateMessage:
    return UpdateMessage(i, i, 1)


class TestDelivery:
    def test_connected_delivery(self):
        link = ClientLink(1)
        assert link.deliver(update())
        assert link.drain() == [update()]

    def test_drain_empties_inbox(self):
        link = ClientLink(1)
        link.deliver(update())
        link.drain()
        assert link.drain() == []

    def test_disconnected_messages_are_lost(self):
        link = ClientLink(1)
        link.disconnect()
        assert not link.deliver(update())
        link.reconnect()
        assert link.drain() == []  # not queued, lost

    def test_delivery_order_preserved(self):
        link = ClientLink(1)
        for i in range(5):
            link.deliver(update(i))
        assert [m.qid for m in link.drain()] == [0, 1, 2, 3, 4]


class TestAccounting:
    def test_delivered_and_dropped_bytes(self):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        link.deliver(update())
        link.disconnect()
        link.deliver(update())
        assert stats.delivered_bytes == 17
        assert stats.dropped_bytes == 17
        assert stats.delivered_messages == 1
        assert stats.dropped_messages == 1

    def test_by_type_counters(self):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        link.deliver(update())
        link.disconnect()
        link.deliver(update())
        assert stats.by_type["UpdateMessage"] == 1
        assert stats.by_type["dropped:UpdateMessage"] == 1

    def test_shared_stats_across_links(self):
        stats = NetworkStats()
        for cid in range(3):
            ClientLink(cid, stats).deliver(update())
        assert stats.delivered_messages == 3


class TestPerLinkTelemetry:
    """Satellite: per-link counters labelled by client id."""

    def link_value(self, stats, name, client):
        return stats.registry.value_of(name, {"client": str(client)})

    def test_delivered_counters_are_per_link(self):
        stats = NetworkStats()
        a, b = ClientLink(1, stats), ClientLink(2, stats)
        a.deliver(update())
        a.deliver(update())
        b.deliver(update())
        assert self.link_value(stats, "link_delivered_messages_total", 1) == 2.0
        assert self.link_value(stats, "link_delivered_messages_total", 2) == 1.0
        assert self.link_value(stats, "link_delivered_bytes_total", 1) == 34.0
        assert stats.delivered_messages == 3  # aggregate view unchanged

    def test_dropped_while_disconnected_counted_per_link(self):
        stats = NetworkStats()
        link = ClientLink(7, stats)
        link.disconnect()
        link.deliver(update())
        link.deliver(update())
        assert self.link_value(stats, "link_dropped_messages_total", 7) == 2.0
        assert self.link_value(stats, "link_dropped_bytes_total", 7) == 34.0
        assert self.link_value(stats, "link_delivered_messages_total", 7) == 0.0

    def test_connected_gauge_follows_link_state(self):
        stats = NetworkStats()
        link = ClientLink(3, stats)
        assert self.link_value(stats, "link_connected", 3) == 1.0
        link.disconnect()
        assert self.link_value(stats, "link_connected", 3) == 0.0
        link.reconnect()
        assert self.link_value(stats, "link_connected", 3) == 1.0

    def test_queued_gauge_tracks_inbox_depth(self):
        stats = NetworkStats()
        link = ClientLink(4, stats)
        for i in range(3):
            link.deliver(update(i))
        assert self.link_value(stats, "link_queued_messages", 4) == 3.0
        link.drain()
        assert self.link_value(stats, "link_queued_messages", 4) == 0.0

    def test_reconnect_resumes_queueing_after_losses(self):
        """Disconnect/reconnect: messages during the outage are lost
        (never re-queued), delivery resumes cleanly afterwards."""
        stats = NetworkStats()
        link = ClientLink(5, stats)
        link.deliver(update(0))
        link.disconnect()
        link.deliver(update(1))
        link.reconnect()
        link.deliver(update(2))
        assert [m.qid for m in link.drain()] == [0, 2]
        assert self.link_value(stats, "link_dropped_messages_total", 5) == 1.0
        assert self.link_value(stats, "link_delivered_messages_total", 5) == 2.0
        assert self.link_value(stats, "link_queued_messages", 5) == 0.0


class TestDropPathAccounting:
    """Regression: the drop path must account bytes and refresh the
    queue-depth gauge on every outcome, not only on accepted delivery."""

    def test_drop_updates_bytes_and_gauge(self):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        link.deliver(update())
        link.deliver(update())
        link.disconnect()
        assert not link.deliver(update())
        labels = {"client": "1"}
        registry = stats.registry
        assert registry.value_of("link_dropped_messages_total", labels) == 1
        assert registry.value_of("link_dropped_bytes_total", labels) == 17
        # Gauge reflects true inbox depth right after the drop outcome.
        assert registry.value_of("link_queued_messages", labels) == 2
        link.drain()
        assert registry.value_of("link_queued_messages", labels) == 0
