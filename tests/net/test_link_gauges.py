"""Property tests: link gauges track true link state under any
interleaving of deliveries, outages, faults and drains."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import (
    DELIVER,
    DROP,
    DUPLICATE,
    FAULT_ACTIONS,
    REORDER,
    ClientLink,
    NetworkStats,
    ThrottledLink,
    UpdateMessage,
)

#: One step of link usage: an operation name, plus a payload qid for
#: deliveries (distinct qids make REORDER actually reorder).
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("deliver"), st.integers(min_value=1, max_value=3)),
        st.tuples(st.just("disconnect"), st.just(0)),
        st.tuples(st.just("reconnect"), st.just(0)),
        st.tuples(st.just("drain"), st.just(0)),
    ),
    max_size=60,
)

ACTIONS = st.lists(st.sampled_from(FAULT_ACTIONS), min_size=1, max_size=16)


def run_ops(link: ClientLink, ops) -> list:
    inbox_copy = []
    for op, qid in ops:
        if op == "deliver":
            link.deliver(UpdateMessage(qid, 1, 1))
        elif op == "disconnect":
            link.disconnect()
        elif op == "reconnect":
            link.reconnect()
        else:
            inbox_copy.extend(link.drain())
    return inbox_copy


def gauge(stats: NetworkStats, name: str, client: int) -> float:
    return stats.registry.value_of(name, {"client": str(client)})


class TestQueuedGaugeProperty:
    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_queued_gauge_equals_inbox_depth(self, ops):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        run_ops(link, ops)
        assert gauge(stats, "link_queued_messages", 1) == len(link._inbox)

    @given(ops=OPS, actions=ACTIONS)
    @settings(max_examples=60, deadline=None)
    def test_queued_gauge_holds_under_faults(self, ops, actions):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        cursor = iter(actions * 100)
        link.fault_hook = lambda _link, _msg: next(cursor)
        run_ops(link, ops)
        assert gauge(stats, "link_queued_messages", 1) == len(link._inbox)

    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_drain_always_zeroes_the_gauge(self, ops):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        run_ops(link, ops)
        link.drain()
        assert gauge(stats, "link_queued_messages", 1) == 0.0


class TestConnectedGaugeProperty:
    @given(ops=OPS)
    @settings(max_examples=60, deadline=None)
    def test_connected_gauge_mirrors_link_state(self, ops):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        run_ops(link, ops)
        assert gauge(stats, "link_connected", 1) == (
            1.0 if link.connected else 0.0
        )


class TestFaultActionProperties:
    @given(ops=OPS, actions=ACTIONS)
    @settings(max_examples=60, deadline=None)
    def test_accounting_matches_inbox_and_drops(self, ops, actions):
        """delivered counter == everything that entered the inbox
        (duplicates included); dropped counter == everything lost."""
        stats = NetworkStats()
        link = ClientLink(1, stats)
        cursor = iter(actions * 100)
        link.fault_hook = lambda _link, _msg: next(cursor)
        drained = run_ops(link, ops)
        total_in = len(drained) + len(link._inbox)
        assert gauge(stats, "link_delivered_messages_total", 1) == total_in
        attempts = sum(1 for op, _ in ops if op == "deliver")
        duplicates = total_in - (
            attempts - int(gauge(stats, "link_dropped_messages_total", 1))
        )
        assert duplicates >= 0

    @given(actions=ACTIONS)
    @settings(max_examples=60, deadline=None)
    def test_per_query_fifo_is_preserved(self, actions):
        """Whatever the fault schedule does, one query's updates are
        never reordered against each other."""
        link = ClientLink(1)
        cursor = iter(actions * 100)
        link.fault_hook = lambda _link, _msg: next(cursor)
        for i in range(20):
            link.deliver(UpdateMessage(qid=1 + (i % 2), oid=i, sign=1))
        for qid in (1, 2):
            oids = [m.oid for m in link._inbox if m.qid == qid]
            assert oids == sorted(oids)

    def test_duplicate_is_adjacent(self):
        link = ClientLink(1)
        link.fault_hook = lambda _link, _msg: DUPLICATE
        link.deliver(UpdateMessage(1, 7, 1))
        assert [m.oid for m in link._inbox] == [7, 7]

    def test_reorder_never_crosses_same_query(self):
        link = ClientLink(1)
        actions = iter([DELIVER, REORDER])
        link.fault_hook = lambda _link, _msg: next(actions)
        link.deliver(UpdateMessage(1, 1, 1))
        link.deliver(UpdateMessage(1, 2, 1))  # same qid: stays in order
        assert [m.oid for m in link._inbox] == [1, 2]

    def test_drop_returns_false_and_counts(self):
        stats = NetworkStats()
        link = ClientLink(1, stats)
        link.fault_hook = lambda _link, _msg: DROP
        assert not link.deliver(UpdateMessage(1, 1, 1))
        assert gauge(stats, "link_dropped_messages_total", 1) == 1.0


#: Model-based steps for a mixed fleet: a plain link and a throttled
#: one sharing a NetworkStats, each step naming (op, target, qid).
FLEET_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("deliver"),
            st.integers(min_value=1, max_value=2),
            st.integers(min_value=1, max_value=3),
        ),
        st.tuples(
            st.just("disconnect"), st.integers(min_value=1, max_value=2), st.just(0)
        ),
        st.tuples(
            st.just("reconnect"), st.integers(min_value=1, max_value=2), st.just(0)
        ),
        st.tuples(
            st.just("drain"), st.integers(min_value=1, max_value=2), st.just(0)
        ),
        st.tuples(st.just("new_cycle"), st.just(2), st.just(0)),
    ),
    max_size=80,
)


class TestFleetAccountingInvariants:
    """The per-link / aggregate reconciliation the dashboards rely on,
    pinned under every interleaving of faults (duplicates and reorders
    included), outages, throttling, budget resets and drains."""

    @given(ops=FLEET_OPS, actions=ACTIONS, budget=st.integers(20, 100))
    @settings(max_examples=80, deadline=None)
    def test_aggregate_equals_sum_of_per_link_series(
        self, ops, actions, budget
    ):
        stats = NetworkStats()
        links = {
            1: ClientLink(1, stats),
            2: ThrottledLink(2, budget, stats),
        }
        cursor = iter(actions * 200)
        for link in links.values():
            link.fault_hook = lambda _link, _msg: next(cursor)
        for op, target, qid in ops:
            link = links[target]
            if op == "deliver":
                link.deliver(UpdateMessage(qid, 1, 1))
            elif op == "disconnect":
                link.disconnect()
            elif op == "reconnect":
                link.reconnect()
            elif op == "drain":
                link.drain()
            else:
                link.new_cycle()

        value = stats.registry.value_of
        for name, aggregate in (
            ("link_delivered_messages_total", stats.delivered_messages),
            ("link_delivered_bytes_total", stats.delivered_bytes),
        ):
            per_link = sum(
                value(name, {"client": str(cid)}) for cid in links
            )
            assert per_link == aggregate, name

        # Aggregate drops decompose into per-link drops + throttles:
        # a throttled message is not a wire drop, but it is lost.
        for dropped, throttled, aggregate in (
            (
                "link_dropped_messages_total",
                "link_throttled_messages_total",
                stats.dropped_messages,
            ),
            (
                "link_dropped_bytes_total",
                "link_throttled_bytes_total",
                stats.dropped_bytes,
            ),
        ):
            decomposed = sum(
                value(dropped, {"client": str(cid)}) for cid in links
            ) + value(throttled, {"client": "2"})
            assert decomposed == aggregate, dropped

        # Queued gauges mirror true inbox depth on both link types, and
        # the throttle never spends past its budget.
        for cid, link in links.items():
            assert gauge(stats, "link_queued_messages", cid) == len(
                link._inbox
            )
        assert 0 <= links[2]._spent_this_cycle <= budget

    @given(ops=FLEET_OPS, actions=ACTIONS)
    @settings(max_examples=60, deadline=None)
    def test_throttled_link_mirror_counters_match_registry(
        self, ops, actions
    ):
        """The legacy ``throttled_messages``/``throttled_bytes``
        attributes and the registry series move in lockstep."""
        stats = NetworkStats()
        link = ThrottledLink(2, 40, stats)
        cursor = iter(actions * 200)
        link.fault_hook = lambda _link, _msg: next(cursor)
        for op, _target, qid in ops:
            if op == "deliver":
                link.deliver(UpdateMessage(qid, 1, 1))
            elif op == "disconnect":
                link.disconnect()
            elif op == "reconnect":
                link.reconnect()
            elif op == "drain":
                link.drain()
            else:
                link.new_cycle()
        value = stats.registry.value_of
        assert (
            value("link_throttled_messages_total", {"client": "2"})
            == link.throttled_messages
        )
        assert (
            value("link_throttled_bytes_total", {"client": "2"})
            == link.throttled_bytes
        )
