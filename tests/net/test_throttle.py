"""Bandwidth-limited links and server congestion behaviour."""

import pytest

from repro.core import Client, LocationAwareServer
from repro.geometry import Point, Rect
from repro.net import NetworkStats, ThrottledLink, UpdateMessage


def update(i: int = 1) -> UpdateMessage:
    return UpdateMessage(i, i, 1)  # 17 bytes


class TestThrottledLink:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ThrottledLink(1, 0)

    def test_within_budget_delivers(self):
        link = ThrottledLink(1, budget_bytes_per_cycle=40)
        assert link.deliver(update())
        assert link.deliver(update())
        assert link.remaining_budget == 40 - 34

    def test_over_budget_drops(self):
        link = ThrottledLink(1, budget_bytes_per_cycle=20)
        assert link.deliver(update())
        assert not link.deliver(update())  # 17 + 17 > 20
        assert link.throttled_messages == 1
        assert link.throttled_bytes == 17

    def test_new_cycle_resets_budget(self):
        link = ThrottledLink(1, budget_bytes_per_cycle=20)
        link.deliver(update())
        assert not link.deliver(update())
        link.new_cycle()
        assert link.deliver(update())

    def test_disconnection_still_applies(self):
        link = ThrottledLink(1, budget_bytes_per_cycle=1000)
        link.disconnect()
        assert not link.deliver(update())
        assert link.throttled_messages == 0  # dropped, not throttled

    def test_throttled_drops_are_accounted(self):
        stats = NetworkStats()
        link = ThrottledLink(1, budget_bytes_per_cycle=20, stats=stats)
        link.deliver(update())
        link.deliver(update())
        assert stats.delivered_messages == 1
        assert stats.dropped_messages == 1


    def test_throttled_counters_are_per_link(self):
        stats = NetworkStats()
        link = ThrottledLink(9, budget_bytes_per_cycle=20, stats=stats)
        link.deliver(update())
        link.deliver(update())
        link.deliver(update())
        labels = {"client": "9"}
        assert stats.registry.value_of(
            "link_throttled_messages_total", labels
        ) == 2.0
        assert stats.registry.value_of(
            "link_throttled_bytes_total", labels
        ) == 34.0
        assert link.throttled_messages == 2  # legacy ints agree


class TestServerUnderCongestion:
    def test_throttled_client_misses_updates(self):
        server = LocationAwareServer(grid_size=8)
        client = Client(1, server)
        # Replace the default link with a tight budget (2 updates/cycle).
        server._links[1] = ThrottledLink(1, 34, server.stats)
        client.link = server._links[1]
        server.register_range_query(1, 100, Rect(0, 0, 1, 1))
        client.track_query(100)
        for oid in range(10):
            server.receive_object_report(oid, Point(0.5, 0.5), 0.0)
        result = server.evaluate_cycle(0.0)
        assert result.delivered_updates == 2
        assert result.dropped_updates == 8
        client.pump()
        assert len(client.answer_of(100)) == 2

    def test_register_client_with_budget(self):
        server = LocationAwareServer(grid_size=8)
        link = server.register_client(5, downlink_budget=100)
        assert isinstance(link, ThrottledLink)

    def test_recovery_heals_congestion_losses(self):
        """Throttle-dropped updates are recovered by the wakeup diff,
        the same path that heals disconnection losses."""
        server = LocationAwareServer(grid_size=8)
        client = Client(1, server)
        server._links[1] = ThrottledLink(1, 34, server.stats)
        client.link = server._links[1]
        server.register_range_query(1, 100, Rect(0, 0, 1, 1))
        client.track_query(100)
        for oid in range(10):
            server.receive_object_report(oid, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)
        client.pump()
        assert client.answer_of(100) != server.engine.answer_of(100)
        # Congestion subsides; the wakeup response now fits the budget.
        client.link.budget_bytes_per_cycle = 10_000
        client.reconnect()  # wakeup: committed-vs-current diff
        assert client.answer_of(100) == server.engine.answer_of(100)


class TestUplinkAccounting:
    def test_reports_and_moves_counted(self):
        server = LocationAwareServer(grid_size=8)
        Client(1, server)
        server.register_range_query(1, 100, Rect(0.4, 0.4, 0.6, 0.6))
        server.receive_object_report(1, Point(0.5, 0.5), 0.0)
        server.evaluate_cycle(0.0)  # materialise the registration
        server.receive_range_query_move(100, Rect(0.4, 0.4, 0.6, 0.6), 1.0)
        server.receive_commit(100)
        assert server.stats.uplink_messages == 3
        assert server.stats.uplink_bytes == 48 + 48 + 8
        assert server.stats.by_type["uplink:ObjectReportMessage"] == 1

    def test_wakeup_counted(self):
        server = LocationAwareServer(grid_size=8)
        Client(1, server)
        server.receive_wakeup(1)
        assert server.stats.by_type["uplink:WakeupMessage"] == 1

class TestBudgetChargedOnlyOnAcceptedDelivery:
    """Regression: the budget used to be charged before the base link
    decided the delivery's fate, so outage/fault losses starved the
    messages that followed them in the same cycle."""

    def test_outage_rejections_cost_nothing(self):
        link = ThrottledLink(1, budget_bytes_per_cycle=40)
        link.disconnect()
        assert not link.deliver(update())
        assert not link.deliver(update())
        assert link.remaining_budget == 40
        link.reconnect()
        assert link.deliver(update())
        assert link.deliver(update())  # both fit: nothing was pre-charged
        assert link.throttled_messages == 0

    def test_faulted_rejections_cost_nothing(self):
        from repro.net import DROP

        link = ThrottledLink(1, budget_bytes_per_cycle=40)
        link.fault_hook = lambda lnk, msg: DROP
        assert not link.deliver(update())
        assert link.remaining_budget == 40
        link.fault_hook = None
        assert link.deliver(update())
        assert link.deliver(update())
        assert link.remaining_budget == 40 - 34

    def test_throttled_rejection_still_counts_against_nothing(self):
        link = ThrottledLink(1, budget_bytes_per_cycle=20)
        assert link.deliver(update())
        assert not link.deliver(update())  # over budget: throttled
        assert link.remaining_budget == 3  # only the accepted 17 charged
        assert link.throttled_messages == 1
