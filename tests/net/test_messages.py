"""Wire messages and their byte accounting."""

import pytest

from repro.geometry import Point, Rect, Velocity
from repro.net import (
    CommitMessage,
    FullAnswerMessage,
    KnnMoveMessage,
    ObjectRemovalMessage,
    ObjectReportMessage,
    QueryRegionMessage,
    UpdateMessage,
    WakeupMessage,
)


class TestUpdateMessage:
    def test_size_is_constant(self):
        assert UpdateMessage(1, 2, 1).size_bytes == 17
        assert UpdateMessage(10**9, 10**9, -1).size_bytes == 17

    def test_invalid_sign_rejected(self):
        with pytest.raises(ValueError):
            UpdateMessage(1, 2, 0)
        with pytest.raises(ValueError):
            UpdateMessage(1, 2, 2)


class TestFullAnswerMessage:
    def test_size_grows_with_members(self):
        empty = FullAnswerMessage(1, frozenset())
        ten = FullAnswerMessage(1, frozenset(range(10)))
        assert empty.size_bytes == 16
        assert ten.size_bytes == 16 + 80

    def test_break_even_point(self):
        """A full answer of n members costs 16 + 8n bytes; n incremental
        updates cost 17n.  Incremental wins whenever fewer than about
        (16 + 8n) / 17 members changed — the arithmetic behind Figure 5."""
        n = 100
        full = FullAnswerMessage(1, frozenset(range(n))).size_bytes
        changed = 10
        incremental = changed * UpdateMessage(1, 1, 1).size_bytes
        assert incremental < full


class TestUplinkMessages:
    def test_object_report_size(self):
        msg = ObjectReportMessage(1, Point(0, 0), Velocity.ZERO, 0.0)
        assert msg.size_bytes == 48

    def test_query_region_size(self):
        msg = QueryRegionMessage(1, Rect(0, 0, 1, 1), 0.0)
        assert msg.size_bytes == 48

    def test_control_message_sizes(self):
        assert WakeupMessage(1).size_bytes == 8
        assert CommitMessage(1).size_bytes == 8
        assert ObjectRemovalMessage(1).size_bytes == 8

    def test_knn_move_size(self):
        """A k-NN move ships a center and a timestamp (3 doubles + id),
        not the 5-double rectangle encoding a range move pays."""
        msg = KnnMoveMessage(1, Point(0.5, 0.5), 1.0)
        assert msg.size_bytes == 32
        assert msg.size_bytes < QueryRegionMessage(
            1, Rect(0, 0, 1, 1), 1.0
        ).size_bytes
