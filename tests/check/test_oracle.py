"""The consistency oracle: clean runs stay clean, injected bugs are caught.

The regression test at the bottom is the reason this package exists: it
re-implements the *pre-fix* ``receive_wakeup`` (which committed the
live engine answer even when ``link.deliver`` returned False) and shows
the oracle flagging the commit-invariant violation, while the fixed
server path stays clean and actually converges.
"""

import random

from repro.check import ConsistencyOracle
from repro.core.client import Client
from repro.core.server import LocationAwareServer
from repro.geometry import Point, Rect, Velocity
from repro.net.messages import UpdateMessage, WakeupMessage

REGION = Rect(0.2, 0.2, 0.8, 0.8)


def make_stack(downlink_budget=None):
    server = LocationAwareServer(grid_size=8)
    server.register_client(1, downlink_budget)
    server.register_range_query(1, qid=10, region=REGION)
    oracle = ConsistencyOracle(server)
    return server, oracle


def run_cycle(server, oracle, cycle, now):
    oracle.begin_cycle()
    result = server.evaluate_cycle(now)
    return oracle.end_cycle(cycle, result.updates)


class TestCleanRuns:
    def test_no_divergences_on_healthy_network(self):
        server, oracle = make_stack()
        rng = random.Random(11)
        for cycle in range(10):
            now = float(cycle + 1)
            for oid in range(15):
                server.receive_object_report(
                    oid, Point(rng.random(), rng.random()), now
                )
            assert run_cycle(server, oracle, cycle, now) == []
        assert oracle.divergences == []
        assert server.registry.value_of("oracle_checks_total") == 10.0

    def test_clean_across_query_kinds(self):
        server = LocationAwareServer(grid_size=8)
        server.register_client(1)
        server.register_range_query(1, qid=1, region=REGION)
        server.register_knn_query(1, qid=2, center=Point(0.5, 0.5), k=3)
        server.register_predictive_query(
            1, qid=3, region=REGION, horizon=5.0
        )
        oracle = ConsistencyOracle(server)
        rng = random.Random(12)
        for cycle in range(8):
            now = float(cycle + 1)
            for oid in range(12):
                server.receive_object_report(
                    oid,
                    Point(rng.random(), rng.random()),
                    now,
                    Velocity(rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05)),
                )
            assert run_cycle(server, oracle, cycle, now) == []

    def test_clean_through_disconnect_and_recovery(self):
        server, oracle = make_stack()
        for oid in range(10):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)
        run_cycle(server, oracle, 0, 1.0)
        server.link_of(1).disconnect()
        for oid in range(10):
            server.receive_object_report(oid, Point(0.05, 0.05), 2.0)
        run_cycle(server, oracle, 1, 2.0)  # all updates lost
        server.receive_wakeup(1)
        assert run_cycle(server, oracle, 2, 3.0) == []
        assert oracle.in_sync(1)


class TestDetection:
    def test_tampered_engine_answer_is_flagged(self):
        """Corrupting the engine's incremental answer trips both the
        replay and snapshot derivations."""
        server, oracle = make_stack()
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        run_cycle(server, oracle, 0, 1.0)
        oracle.begin_cycle()  # baseline captured *before* the tamper
        server.engine.queries[10].answer.add(999)  # phantom member
        result = server.evaluate_cycle(2.0)
        found = oracle.end_cycle(1, result.updates)
        kinds = {d.kind for d in found}
        assert "replay" in kinds
        assert "snapshot" in kinds
        flagged = next(d for d in found if d.kind == "replay")
        assert flagged.qid == 10
        assert flagged.oids == (999,)
        assert (
            server.registry.value_of(
                "oracle_divergence_total", {"kind": "replay"}
            )
            >= 1.0
        )

    def test_overcommit_is_flagged(self):
        """Committing state the client never received violates
        committed ⊆ delivered."""
        server, oracle = make_stack()
        server.link_of(1).disconnect()
        server.receive_object_report(1, Point(0.5, 0.5), 1.0)
        run_cycle(server, oracle, 0, 1.0)  # update lost on the wire
        # A (buggy) commit of the live answer, bypassing delivery proof:
        server.commits.commit(10, server.engine.answer_of(10))
        server._notify("on_commit", 10)
        found = run_cycle(server, oracle, 1, 2.0)
        assert {d.kind for d in found} == {"commit"}
        assert found[0].oids == (1,)


def buggy_receive_wakeup(server, client_id):
    """The pre-fix recovery path: ``link.deliver``'s verdict is ignored
    and the full live answer is committed regardless of what fit down
    the throttled link."""
    server.stats.record_uplink(WakeupMessage(client_id))
    link = server.link_of(client_id)
    link.reconnect()
    from repro.net import ThrottledLink

    if isinstance(link, ThrottledLink):
        link.new_cycle()
    server._notify("on_wakeup_begin", client_id)
    sent = []
    for qid in sorted(server.queries_of(client_id)):
        current = server.engine.answer_of(qid)
        for update in server.commits.recovery_updates(qid, current):
            link.deliver(UpdateMessage(update.qid, update.oid, update.sign))
            sent.append(update)
        server._delivered_answers[qid] = set(current)
        server.commits.commit(qid, current)
    server._notify("on_wakeup_end", client_id)
    return sent


class TestWakeupCommitRegression:
    """The bug this PR fixes, demonstrated differentially."""

    BUDGET = 40  # two 17-byte updates per cycle/wakeup

    def populate(self, server):
        for oid in range(8):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)

    def test_prefix_behaviour_caught_by_oracle(self):
        server, oracle = make_stack(downlink_budget=self.BUDGET)
        server.link_of(1).disconnect()
        self.populate(server)
        run_cycle(server, oracle, 0, 1.0)
        # Recovery must ship 8 updates but only 2 fit the budget; the
        # buggy path commits all 8 as received anyway.
        buggy_receive_wakeup(server, 1)
        found = run_cycle(server, oracle, 1, 2.0)
        assert any(d.kind == "commit" for d in found)
        # The permanent desync the paper's protocol must avoid: a second
        # wakeup diffs against the over-committed base, finds nothing to
        # send, and the client never hears about the missing objects.
        assert buggy_receive_wakeup(server, 1) == []
        assert not oracle.in_sync(1)

    def test_fixed_server_converges_and_stays_clean(self):
        server, oracle = make_stack(downlink_budget=self.BUDGET)
        server.link_of(1).disconnect()
        self.populate(server)
        run_cycle(server, oracle, 0, 1.0)
        delivered = server.receive_wakeup(1)
        assert len(delivered) == 2  # only what fit was recorded
        assert run_cycle(server, oracle, 1, 2.0) == []
        # Each further wakeup re-sends exactly the missing delta.
        rounds = 0
        while not oracle.in_sync(1):
            rounds += 1
            assert rounds < 10, "throttled recovery failed to converge"
            server.receive_wakeup(1)
        assert server.commits.committed_answer(10) == server.engine.answer_of(10)
        assert oracle.divergences == []


class TestMirrorMatchesRealClient:
    def test_mirror_agrees_with_client_through_outage(self):
        server = LocationAwareServer(grid_size=8)
        client = Client(1, server)
        server.register_range_query(1, qid=10, region=REGION)
        client.track_query(10)
        oracle = ConsistencyOracle(server)
        for oid in range(6):
            server.receive_object_report(oid, Point(0.5, 0.5), 1.0)
        run_cycle(server, oracle, 0, 1.0)
        client.pump()
        client.send_commit(10)
        client.disconnect()
        for oid in range(6):
            server.receive_object_report(oid, Point(0.05, 0.05), 2.0)
        run_cycle(server, oracle, 1, 2.0)
        client.reconnect()
        assert client.answer_of(10) == oracle.mirror_answer(1, 10)
        assert client.answer_of(10) == server.engine.answer_of(10)
