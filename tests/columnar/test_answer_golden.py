"""Golden equivalence of the columnar answer plane's delta emission.

The batch ingest golden tests pin report-buffer shapes; these pin the
*emission* side introduced with the SoA answer plane: the
:class:`~repro.core.updates.UpdateBatch` stream spliced together from
classification column slices, the :class:`ColumnarAnswerStore` views
legacy callers read through, and the ``emit_mode="materialized"``
baseline that must stay byte-identical to batch emission.

Workloads interleave the operations most likely to desynchronise the
store from the authoritative live sets: object removals between
evaluation rounds (negative updates + answered-sweep), and query moves
(range, k-NN, and predictive reshapes that rewrite whole answers).
The three batched pipelines and both materialized twins must emit
**byte-identical** ordered streams; the per-object reference must
agree per query as a set.  ``check_invariants`` runs after every round
and asserts every cached answer view equals the live set.
"""

from __future__ import annotations

import pytest

from repro.columnar import numpy_available
from repro.core import IncrementalEngine, UpdateBatch, UpdateList
from repro.geometry import Point, Rect, Velocity

GRID = 8
HORIZON = 30.0


def ordered(updates):
    return [(u.qid, u.oid, u.sign) for u in updates]


def per_query(stream):
    out: dict[int, set] = {}
    for qid, oid, sign in stream:
        out.setdefault(qid, set()).add((oid, sign))
    return out


def _engine(pipeline, **kwargs):
    return IncrementalEngine(
        grid_size=GRID,
        prediction_horizon=HORIZON,
        pipeline=pipeline,
        **kwargs,
    )


class Fleet:
    """One engine per pipeline/backend/emit-mode combination."""

    def __init__(self):
        best_backend = "numpy" if numpy_available() else "python"
        self.engines: dict[str, IncrementalEngine] = {
            "cell-batched": _engine("cell-batched"),
            "parallel": _engine("parallel"),
            "columnar-python": _engine("columnar", columnar_backend="python"),
            # The materialized twins run the same pipelines with eager
            # Update construction; their streams gate the batch path.
            "cell-batched-materialized": _engine(
                "cell-batched", emit_mode="materialized"
            ),
            "columnar-materialized": _engine(
                "columnar",
                columnar_backend=best_backend,
                emit_mode="materialized",
            ),
            "per-object": _engine("per-object"),
        }
        if numpy_available():
            self.engines["columnar-numpy"] = _engine(
                "columnar", columnar_backend="numpy"
            )

    def all(self, method: str, *args) -> None:
        for engine in self.engines.values():
            getattr(engine, method)(*args)

    def evaluate_and_compare(self, now: float) -> list[tuple[int, int, int]]:
        streams = {}
        for name, engine in self.engines.items():
            raw = engine.evaluate(now)
            expected = (
                UpdateList if engine.emit_mode == "materialized" else UpdateBatch
            )
            assert type(raw) is expected, (name, type(raw))
            streams[name] = ordered(raw)
        want = streams.pop("cell-batched")
        reference = streams.pop("per-object")
        for name, got in streams.items():
            assert got == want, f"{name} stream diverged from cell-batched"
        assert per_query(reference) == per_query(want), (
            "per-object update set diverged"
        )
        for engine in self.engines.values():
            engine.check_invariants()
        return want

    def register_standard_queries(self) -> None:
        self.all("register_range_query", 1, Rect(0.10, 0.10, 0.45, 0.45))
        self.all("register_range_query", 2, Rect(0.40, 0.40, 0.90, 0.90))
        self.all("register_range_query", 3, Rect(0.0, 0.0, 0.125, 0.125))
        self.all("register_knn_query", 4, Point(0.5, 0.5), 3)
        self.all("register_predictive_query", 5, Rect(0.2, 0.2, 0.6, 0.6), 10.0)
        self.all("register_predictive_query", 6, Rect(0.7, 0.1, 0.95, 0.5), 10.0)


def test_removal_interleaved_emission():
    """Removals between rounds: negative deltas, answered-sweep, and a
    re-reported oid must thread identically through every stream."""
    fleet = Fleet()
    fleet.register_standard_queries()
    for oid in range(32):
        fleet.all(
            "report_object",
            oid,
            Point((oid % 8) / 8.0 + 0.05, (oid // 8) / 4.0 + 0.05),
            0.0,
        )
    first = fleet.evaluate_and_compare(0.0)
    assert first, "initial population must produce enter updates"

    # Remove members of several answers, move a third of the rest.
    for oid in (2, 9, 17, 26):
        fleet.all("remove_object", oid)
    for oid in range(0, 32, 3):
        if oid not in (2, 9, 17, 26):
            fleet.all("report_object", oid, Point(0.5, 0.5), 1.0)
    second = fleet.evaluate_and_compare(1.0)
    assert any(sign < 0 for _, _, sign in second), (
        "removals must surface as negative updates"
    )

    # Unregister a populated query, re-report a removed oid, and keep
    # churning: the store must forget qid 2 and treat oid 9 as new.
    fleet.all("unregister_query", 2)
    fleet.all("report_object", 9, Point(0.3, 0.3), 2.0)
    for oid in range(1, 32, 4):
        if oid not in (2, 17, 26):
            fleet.all("report_object", oid, Point(oid / 32.0, 0.85), 2.0)
    third = fleet.evaluate_and_compare(2.0)
    assert all(qid != 2 for qid, _, _ in third), (
        "unregistered query must emit nothing"
    )


def test_query_move_interleaved_emission():
    """Query moves rewrite whole answers; interleaved with object
    reports they exercise every invalidation hook in one stream."""
    fleet = Fleet()
    fleet.register_standard_queries()
    for oid in range(28):
        fleet.all(
            "report_object",
            oid,
            Point((oid % 7) / 7.0 + 0.04, (oid // 7) / 4.0 + 0.04),
            0.0,
            Velocity(0.01, 0.0) if oid % 5 == 0 else Velocity.ZERO,
        )
    fleet.evaluate_and_compare(0.0)

    # Round 1: every query type moves while a handful of objects move.
    fleet.all("move_range_query", 1, Rect(0.55, 0.55, 0.95, 0.95), 1.0)
    fleet.all("move_knn_query", 4, Point(0.15, 0.8), 1.0)
    fleet.all("move_predictive_query", 5, Rect(0.6, 0.0, 0.95, 0.35), 1.0)
    for oid in range(0, 28, 4):
        fleet.all("report_object", oid, Point(0.75, 0.75), 1.0)
    moved = fleet.evaluate_and_compare(1.0)
    assert any(sign < 0 for _, _, sign in moved), (
        "query moves must evict prior members"
    )

    # Round 2: moves chased by removals in the same batch window.
    fleet.all("move_range_query", 3, Rect(0.7, 0.7, 0.8, 0.8), 2.0)
    fleet.all("move_knn_query", 4, Point(0.75, 0.75), 2.0)
    for oid in (0, 4, 8):
        fleet.all("remove_object", oid)
    for oid in range(1, 28, 3):
        if oid not in (4,):
            fleet.all("report_object", oid, Point(oid / 28.0, 0.72), 2.0)
    fleet.evaluate_and_compare(2.0)

    # Round 3: a quiet settle round flushes any stale cached views.
    fleet.evaluate_and_compare(3.0)


@pytest.mark.parametrize(
    "backend",
    ["python"] + (["numpy"] if numpy_available() else []),
)
def test_answer_store_views_and_csr(backend):
    """The store's cached views and CSR snapshot mirror live answers."""
    engine = _engine("columnar", columnar_backend=backend)
    engine.register_range_query(1, Rect(0.1, 0.1, 0.9, 0.9))
    engine.register_range_query(2, Rect(0.0, 0.0, 0.3, 0.3))
    engine.register_knn_query(3, Point(0.5, 0.5), 2)
    for oid in range(12):
        engine.report_object(oid, Point(oid / 12.0, oid / 12.0), 0.0)
    engine.evaluate(0.0)

    evaluator = engine._columnar_evaluator
    assert evaluator is not None
    store = evaluator.answers
    for qid in (1, 2, 3):
        live = engine.queries[qid].answer
        assert engine.answer_of(qid) == frozenset(live)
        view = evaluator.answer_view(qid, live)
        if view is not None:
            assert view == live

    qids = [1, 2, 3]
    offsets, values = store.csr(
        qids, lambda qid: engine.queries[qid].answer
    )
    assert len(offsets) == len(qids) + 1
    assert int(offsets[0]) == 0
    for pos, qid in enumerate(qids):
        row = [int(v) for v in values[int(offsets[pos]):int(offsets[pos + 1])]]
        assert row == sorted(engine.queries[qid].answer), qid

    # Mutate and re-snapshot: rows must track the new answers and the
    # version counter must move so derived caches can notice.
    before = store.version
    engine.remove_object(5)
    engine.report_object(20, Point(0.2, 0.2), 1.0)
    engine.evaluate(1.0)
    assert store.version != before
    offsets, values = store.csr(
        qids, lambda qid: engine.queries[qid].answer
    )
    for pos, qid in enumerate(qids):
        row = [int(v) for v in values[int(offsets[pos]):int(offsets[pos + 1])]]
        assert row == sorted(engine.queries[qid].answer), qid
