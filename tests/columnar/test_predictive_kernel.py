"""The vectorized predictive-membership pass must be bit-identical to
the scalar ``_predicted_in_region`` verdict on every lane.

The kernel replicates the scalar float sequence (displacement, then
Liang–Barsky slab clipping in the same edge order), so agreement must
hold exactly — including stationary objects, empty windows, boundary
grazes, and trajectories that are parallel to a slab.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IncrementalEngine
from repro.geometry import Point, Rect, Velocity
from repro.columnar import numpy_available

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


def build_engine(seed: int, n_objects: int = 120):
    rng = random.Random(seed)
    # Pin the numpy backend: these tests target the vectorized kernel,
    # so they must not silently downgrade when REPRO_COLUMNAR_BACKEND
    # forces the fallback for the rest of the suite.
    engine = IncrementalEngine(
        grid_size=8,
        prediction_horizon=30.0,
        pipeline="columnar",
        columnar_backend="numpy",
    )
    for oid in range(n_objects):
        velocity = Velocity.ZERO
        roll = rng.random()
        if roll < 0.5:
            velocity = Velocity(rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1))
        elif roll < 0.6:
            # Axis-parallel motion: exercises the p == 0 slab branch.
            velocity = Velocity(rng.uniform(-0.1, 0.1), 0.0)
        engine.report_object(
            oid,
            Point(rng.random(), rng.random()),
            rng.uniform(0.0, 2.0),
            velocity,
        )
    engine.evaluate(2.0)
    return engine, rng


@needs_numpy
@pytest.mark.parametrize("seed", range(10))
def test_matches_scalar_on_random_motions(seed):
    engine, rng = build_engine(seed)
    evaluator = engine._columnar_evaluator
    oids = sorted(engine.objects)
    for _ in range(8):
        x, y = rng.random(), rng.random()
        region = Rect(x, y, x + rng.uniform(0.0, 0.4), y + rng.uniform(0.0, 0.4))
        horizon = rng.choice([0.0, 1.0, 10.0, 50.0])

        class _Q:
            pass

        query = _Q()
        query.region = region
        query.horizon = horizon
        flags = evaluator.predicted_inside(
            oids, region, engine.now, horizon, engine.prediction_horizon
        )
        assert flags is not None and len(flags) == len(oids)
        for oid, got in zip(oids, flags):
            want = engine._predicted_in_region(query, engine.objects[oid])
            assert got == want, (oid, engine.objects[oid], region, horizon)


@needs_numpy
def test_boundary_grazing_lanes_match_scalar():
    engine = IncrementalEngine(
        grid_size=8,
        prediction_horizon=30.0,
        pipeline="columnar",
        columnar_backend="numpy",
    )
    region = Rect(0.25, 0.25, 0.75, 0.75)
    cases = [
        # Stationary on the boundary corner: closed containment.
        (Point(0.25, 0.25), Velocity.ZERO),
        # Stationary just outside.
        (Point(0.249999, 0.25), Velocity.ZERO),
        # Slides along the min_x edge (parallel slab, inside).
        (Point(0.25, 0.1), Velocity(0.0, 0.05)),
        # Heads straight at the region and just reaches the edge.
        (Point(0.0, 0.5), Velocity(0.0125, 0.0)),
        # Moves away from the region.
        (Point(0.2, 0.5), Velocity(-0.1, 0.0)),
        # Report in the future relative to the window start.
        (Point(0.5, 0.5), Velocity(0.1, 0.1)),
    ]
    for oid, (location, velocity) in enumerate(cases):
        engine.report_object(oid, location, 0.0, velocity)
    engine.evaluate(0.0)
    evaluator = engine._columnar_evaluator
    oids = sorted(engine.objects)
    for horizon in (0.0, 5.0, 20.0, 100.0):

        class _Q:
            pass

        query = _Q()
        query.region = region
        query.horizon = horizon
        flags = evaluator.predicted_inside(
            oids, region, engine.now, horizon, engine.prediction_horizon
        )
        for oid, got in zip(oids, flags):
            want = engine._predicted_in_region(query, engine.objects[oid])
            assert got == want, (oid, horizon)


def test_python_backend_returns_none_and_scalar_path_runs():
    engine = IncrementalEngine(
        grid_size=8, pipeline="columnar", columnar_backend="python"
    )
    engine.register_predictive_query(1, Rect(0.2, 0.2, 0.8, 0.8), 10.0)
    engine.report_object(0, Point(0.1, 0.5), 0.0, Velocity(0.05, 0.0))
    updates = engine.evaluate(0.0)
    assert engine._columnar_evaluator.predicted_inside(
        [0], Rect(0.2, 0.2, 0.8, 0.8), 0.0, 10.0, 30.0
    ) is None
    assert [(u.qid, u.oid, u.sign) for u in updates] == [(1, 0, 1)]
