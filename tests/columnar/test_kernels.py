"""Kernel contract tests: numpy and python backends must agree exactly.

Plans here are built by hand from randomized stores (no engine in the
loop), so the tests pin the kernel contract itself: changed pairs only
as public qid/oid lists (stores use non-identity ids so the row→id
mapping is genuinely exercised), flat serial pair order, per-cohort
end offsets, NaN old coordinates classified as "was a member of
nothing".
"""

from __future__ import annotations

import math
import random

import pytest

from repro.columnar import (
    ColumnarObjectStore,
    ColumnarQueryStore,
    KIND_RANGE,
    PairPlan,
    classify_transitions,
    numpy_available,
)

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


def build_random_batch(seed: int, cohorts: int = 12):
    """Random stores plus a random ragged plan over them."""
    rng = random.Random(seed)
    ostore = ColumnarObjectStore()
    qstore = ColumnarQueryStore()
    n_objects = rng.randint(5, 60)
    n_queries = rng.randint(3, 30)
    for i in range(n_objects):
        oid = 1000 + 3 * i  # row i, but a distinct public id
        x, y = rng.random(), rng.random()
        ostore.apply_report(oid, x, y, 0.0, 0.0, 0.0, 0)
        if rng.random() < 0.8:
            # Second report: old coords become the first location.
            ostore.apply_report(oid, rng.random(), rng.random(), 0.0, 0.0, 1.0, 0)
    for i in range(n_queries):
        qid = 500 + 7 * i
        x, y = rng.random() * 0.8, rng.random() * 0.8
        qstore.put(
            qid, KIND_RANGE, x, y, x + rng.random() * 0.4, y + rng.random() * 0.4
        )
    plan = PairPlan()
    for _ in range(cohorts):
        parts = rng.randint(0, 3)
        total_entries = 0
        for _ in range(parts):
            size = rng.randint(1, n_queries)
            part = sorted(rng.sample(range(n_queries), size))
            plan.ent_parts.append(part)
            total_entries += len(part)
        plan.parts_per_cohort.append(parts)
        plan.ent_counts.append(total_entries)
        members = rng.randint(1, min(8, n_objects))
        rows = sorted(rng.sample(range(n_objects), members))
        plan.obj_rows.extend(rows)
        plan.obj_counts.append(members)
    plan.seal()
    return plan, ostore, qstore


def reference_classify(plan, ostore, qstore):
    """Straight-line reimplementation of the contract, independent of
    both production kernels."""
    qids, oids, signs, ends = [], [], [], []
    part_index = 0
    obj_index = 0
    for cohort, members in enumerate(plan.obj_counts):
        rows = plan.obj_rows[obj_index : obj_index + members]
        obj_index += members
        for _ in range(plan.parts_per_cohort[cohort]):
            for erow in plan.ent_parts[part_index]:
                lx, hx = qstore.min_xs[erow], qstore.max_xs[erow]
                ly, hy = qstore.min_ys[erow], qstore.max_ys[erow]
                for orow in rows:
                    in_new = lx <= ostore.xs[orow] <= hx and ly <= ostore.ys[orow] <= hy
                    in_old = (
                        lx <= ostore.old_xs[orow] <= hx
                        and ly <= ostore.old_ys[orow] <= hy
                    )
                    if in_new != in_old:
                        qids.append(qstore.qids[erow])
                        oids.append(ostore.oids[orow])
                        signs.append(1 if in_new else -1)
            part_index += 1
        ends.append(len(qids))
    return qids, oids, signs, ends


@pytest.mark.parametrize("seed", range(20))
def test_python_backend_matches_reference(seed):
    plan, ostore, qstore = build_random_batch(seed)
    got = classify_transitions(plan, ostore, qstore, "python")
    assert tuple(got) == tuple(reference_classify(plan, ostore, qstore))


@needs_numpy
@pytest.mark.parametrize("seed", range(20))
def test_numpy_backend_matches_reference(seed):
    plan, ostore, qstore = build_random_batch(seed)
    got = classify_transitions(plan, ostore, qstore, "numpy")
    ref = reference_classify(plan, ostore, qstore)
    assert [list(part) for part in got] == [list(part) for part in ref]


@needs_numpy
@pytest.mark.parametrize("seed", range(8))
def test_numpy_chunking_is_invisible(seed):
    plan, ostore, qstore = build_random_batch(seed, cohorts=20)
    whole = classify_transitions(plan, ostore, qstore, "numpy")
    tiny = classify_transitions(plan, ostore, qstore, "numpy", chunk_pairs=7)
    assert tuple(map(list, whole)) == tuple(map(list, tiny))


@pytest.mark.parametrize(
    "backend",
    ["python", pytest.param("numpy", marks=needs_numpy)],
)
def test_nan_old_coords_mean_member_of_nothing(backend):
    ostore = ColumnarObjectStore()
    qstore = ColumnarQueryStore()
    # Fresh object inside the query: NaN old coords -> pure enter.
    ostore.apply_report(1, 0.5, 0.5, 0.0, 0.0, 0.0, 0)
    assert math.isnan(ostore.old_xs[0])
    qstore.put(9, KIND_RANGE, 0.0, 0.0, 1.0, 1.0)
    plan = PairPlan()
    plan.ent_parts.append([0])
    plan.parts_per_cohort.append(1)
    plan.ent_counts.append(1)
    plan.obj_rows.append(0)
    plan.obj_counts.append(1)
    plan.seal()
    qids, oids, signs, ends = classify_transitions(plan, ostore, qstore, backend)
    assert (list(qids), list(oids), list(signs)) == ([9], [1], [1])
    assert list(ends) == [1]


@pytest.mark.parametrize(
    "backend",
    ["python", pytest.param("numpy", marks=needs_numpy)],
)
def test_empty_plan(backend):
    plan = PairPlan()
    plan.parts_per_cohort.extend([0, 0])
    plan.ent_counts.extend([0, 0])
    plan.obj_rows.extend([0, 0])
    plan.obj_counts.extend([1, 1])
    plan.seal()
    ostore = ColumnarObjectStore()
    ostore.apply_report(1, 0.5, 0.5, 0.0, 0.0, 0.0, 0)
    qstore = ColumnarQueryStore()
    qids, oids, signs, ends = classify_transitions(plan, ostore, qstore, backend)
    assert list(qids) == [] and list(oids) == [] and list(signs) == []
    assert list(ends) == [0, 0]


def test_boundary_containment_is_closed():
    # Objects sitting exactly on a bound enter/stay: closed comparisons
    # on both backends, matching Rect.contains_point.
    ostore = ColumnarObjectStore()
    qstore = ColumnarQueryStore()
    ostore.apply_report(1, 0.2, 0.2, 0.0, 0.0, 0.0, 0)  # old NaN
    ostore.apply_report(1, 0.4, 0.6, 0.0, 0.0, 1.0, 0)  # old = (0.2, 0.2)
    qstore.put(5, KIND_RANGE, 0.2, 0.2, 0.4, 0.6)
    plan = PairPlan()
    plan.ent_parts.append([0])
    plan.parts_per_cohort.append(1)
    plan.ent_counts.append(1)
    plan.obj_rows.append(0)
    plan.obj_counts.append(1)
    plan.seal()
    # Old (0.2,0.2) on the min corner and new (0.4,0.6) on the max
    # corner are both inside: no transition.
    for backend in ["python"] + (["numpy"] if numpy_available() else []):
        qids, _, _, ends = classify_transitions(plan, ostore, qstore, backend)
        assert list(qids) == [], backend
        assert list(ends) == [0], backend
