"""Golden equivalence of the columnar pipeline vs the serial pipelines.

``pipeline="columnar"`` is specified as byte-for-byte equivalent to
``pipeline="cell-batched"``: identical update streams in identical
order, every round, for every workload — under the numpy backend *and*
the pure-Python fallback.  These tests drive engine trios through
randomized mixed workloads (all three query kinds, query moves,
unregistrations, object removals, off-world clamping) and compare the
ordered streams; the per-object reference is checked for per-query set
equality (its intra-phase emission order legitimately differs).
"""

from __future__ import annotations

import random

import pytest

from repro.core import IncrementalEngine
from repro.geometry import Point, Rect, Velocity


def ordered_stream(updates) -> list[tuple[int, int, int]]:
    return [(u.qid, u.oid, u.sign) for u in updates]


def per_query(updates) -> dict[int, list[tuple[int, int]]]:
    out: dict[int, list[tuple[int, int]]] = {}
    for u in updates:
        out.setdefault(u.qid, []).append((u.oid, u.sign))
    return out


class TrioDriver:
    """Feed columnar, cell-batched and per-object engines one workload."""

    def __init__(self, seed: int, backend: str, grid_size: int = 8):
        self.rng = random.Random(seed)
        self.columnar = IncrementalEngine(
            grid_size=grid_size,
            prediction_horizon=30.0,
            pipeline="columnar",
            columnar_backend=backend,
        )
        self.serial = IncrementalEngine(
            grid_size=grid_size,
            prediction_horizon=30.0,
            pipeline="cell-batched",
        )
        self.reference = IncrementalEngine(
            grid_size=grid_size,
            prediction_horizon=30.0,
            pipeline="per-object",
        )
        self.engines = (self.columnar, self.serial, self.reference)
        self.live_objects: set[int] = set()
        self.live_queries: dict[int, str] = {}
        self.next_oid = 0
        self.next_qid = 1000

    def all(self, method: str, *args) -> None:
        for engine in self.engines:
            getattr(engine, method)(*args)

    def random_rect(self, max_side: float = 0.3) -> Rect:
        rng = self.rng
        x, y = rng.random(), rng.random()
        return Rect(
            x, y, x + rng.uniform(0.01, max_side), y + rng.uniform(0.01, max_side)
        )

    def register_random_query(self) -> None:
        rng = self.rng
        qid = self.next_qid
        self.next_qid += 1
        kind = rng.random()
        if kind < 0.55:
            self.all("register_range_query", qid, self.random_rect())
            self.live_queries[qid] = "range"
        elif kind < 0.8:
            self.all(
                "register_knn_query",
                qid,
                Point(rng.random(), rng.random()),
                rng.randint(1, 4),
            )
            self.live_queries[qid] = "knn"
        else:
            self.all(
                "register_predictive_query", qid, self.random_rect(), 10.0
            )
            self.live_queries[qid] = "predictive"

    def move_random_query(self, now: float) -> None:
        rng = self.rng
        qid = rng.choice(sorted(self.live_queries))
        kind = self.live_queries[qid]
        if kind == "range":
            self.all("move_range_query", qid, self.random_rect(), now)
        elif kind == "knn":
            self.all(
                "move_knn_query", qid, Point(rng.random(), rng.random()), now
            )
        else:
            self.all("move_predictive_query", qid, self.random_rect(), now)

    def report_random_object(self, now: float) -> None:
        rng = self.rng
        if self.live_objects and rng.random() < 0.7:
            oid = rng.choice(sorted(self.live_objects))
        else:
            oid = self.next_oid
            self.next_oid += 1
            self.live_objects.add(oid)
        velocity = Velocity.ZERO
        if rng.random() < 0.3:
            velocity = Velocity(rng.uniform(-0.05, 0.05), rng.uniform(-0.05, 0.05))
        self.all(
            "report_object",
            oid,
            Point(rng.uniform(-0.05, 1.05), rng.uniform(-0.05, 1.05)),
            now,
            velocity,
        )

    def run_round(self, now: float) -> None:
        rng = self.rng
        for _ in range(rng.randint(10, 50)):
            self.report_random_object(now)
        if rng.random() < 0.6:
            self.register_random_query()
        if self.live_queries and rng.random() < 0.4:
            self.move_random_query(now)
        if self.live_queries and rng.random() < 0.2:
            qid = rng.choice(sorted(self.live_queries))
            del self.live_queries[qid]
            self.all("unregister_query", qid)
        if self.live_objects and rng.random() < 0.2:
            oid = rng.choice(sorted(self.live_objects))
            self.live_objects.discard(oid)
            self.all("remove_object", oid)

    def evaluate_and_compare(self, now: float, round_no: int) -> None:
        got = ordered_stream(self.columnar.evaluate(now))
        want = ordered_stream(self.serial.evaluate(now))
        ref = self.reference.evaluate(now)
        assert got == want, f"ordered streams diverged in round {round_no}"
        ref_sets = per_query(ref)
        got_sets = per_query_from_stream(got)
        assert set(ref_sets) == set(got_sets), f"round {round_no}"
        for qid in ref_sets:
            assert sorted(ref_sets[qid]) == sorted(got_sets[qid]), (
                round_no,
                qid,
            )
        assert (
            self.columnar.complete_answers() == self.serial.complete_answers()
        ), f"answers diverged after round {round_no}"
        assert (
            self.columnar.complete_answers()
            == self.reference.complete_answers()
        ), f"answers diverged from reference after round {round_no}"
        for engine in self.engines:
            engine.check_invariants()

    def run(self, rounds: int = 10) -> None:
        now = 0.0
        for round_no in range(rounds):
            now += 1.0
            self.run_round(now)
            self.evaluate_and_compare(now, round_no)
        # A pure time advance: only predictive windows slide.
        self.evaluate_and_compare(now + 1.0, rounds)


def per_query_from_stream(stream) -> dict[int, list[tuple[int, int]]]:
    out: dict[int, list[tuple[int, int]]] = {}
    for qid, oid, sign in stream:
        out.setdefault(qid, []).append((oid, sign))
    return out


@pytest.mark.parametrize("seed", range(6))
def test_auto_backend_matches_serial_stream_byte_for_byte(seed):
    TrioDriver(seed, "auto").run()


@pytest.mark.parametrize("seed", range(6))
def test_python_backend_matches_serial_stream_byte_for_byte(seed):
    TrioDriver(seed, "python").run()


def test_finer_grid_matches(seed=17):
    TrioDriver(seed, "auto", grid_size=16).run(rounds=6)


def test_columnar_emits_batch_metrics():
    engine = IncrementalEngine(grid_size=8, pipeline="columnar")
    engine.register_range_query(100, Rect(0.25, 0.25, 0.75, 0.75))
    for oid in range(20):
        engine.report_object(oid, Point(oid / 20.0, 0.5), 0.0)
    engine.evaluate(0.0)
    value_of = engine.registry.value_of
    assert value_of("engine_columnar_batches_total") == 1
    # Objects at x in {0.25 .. 0.75} enter the region: 11 changed pairs,
    # each counted in the (larger) candidate-pair total.
    changes = value_of("engine_columnar_changes_total")
    assert changes == 11
    assert value_of("engine_columnar_pairs_total") >= changes


def test_unknown_pipeline_rejected():
    with pytest.raises(ValueError):
        IncrementalEngine(pipeline="simd")


def test_unknown_columnar_backend_rejected():
    with pytest.raises(ValueError):
        IncrementalEngine(pipeline="columnar", columnar_backend="cuda")
