"""Unit tests for the columnar object/query stores and backend resolve."""

from __future__ import annotations

import math

import pytest

from repro.columnar import (
    BACKEND_ENV_VAR,
    KIND_KNN,
    KIND_PREDICTIVE,
    KIND_RANGE,
    ColumnarObjectStore,
    ColumnarQueryStore,
    numpy_available,
    resolve_backend,
)


class TestObjectStore:
    def test_new_object_gets_nan_old_coords(self):
        store = ColumnarObjectStore()
        row = store.apply_report(7, 0.25, 0.75, 0.0, 0.0, 1.0, 12)
        assert row == 0
        assert store.xs[0] == 0.25 and store.ys[0] == 0.75
        assert math.isnan(store.old_xs[0]) and math.isnan(store.old_ys[0])
        assert store.cells[0] == 12
        assert 7 in store and len(store) == 1

    def test_rereport_shifts_current_to_old(self):
        store = ColumnarObjectStore()
        store.apply_report(7, 0.25, 0.75, 0.0, 0.0, 1.0, 12)
        row = store.apply_report(7, 0.5, 0.5, 0.1, -0.1, 2.0, 13)
        assert row == 0
        assert (store.xs[0], store.ys[0]) == (0.5, 0.5)
        assert (store.old_xs[0], store.old_ys[0]) == (0.25, 0.75)
        assert (store.vxs[0], store.vys[0]) == (0.1, -0.1)
        assert store.ts[0] == 2.0 and store.cells[0] == 13

    def test_swap_remove_moves_last_row(self):
        store = ColumnarObjectStore()
        for oid in range(4):
            store.apply_report(oid, float(oid), float(oid), 0.0, 0.0, 0.0, oid)
        store.remove(1)
        assert len(store) == 3
        assert 1 not in store
        # Row 1 now holds what used to be the last row (oid 3).
        assert store.row_of(3) == 1
        assert store.oids[1] == 3 and store.xs[1] == 3.0
        with pytest.raises(KeyError):
            store.remove(1)

    def test_remove_last_row(self):
        store = ColumnarObjectStore()
        store.apply_report(5, 1.0, 2.0, 0.0, 0.0, 0.0, 0)
        store.remove(5)
        assert len(store) == 0 and 5 not in store


class TestQueryStore:
    def test_put_update_and_descriptor(self):
        store = ColumnarQueryStore()
        v0 = store.version
        store.put(100, KIND_RANGE, 0.1, 0.2, 0.3, 0.4)
        assert store.version > v0
        assert store.descriptor(100) == (KIND_RANGE, 0.1, 0.2, 0.3, 0.4)
        store.put(100, KIND_RANGE, 0.5, 0.5, 0.9, 0.9)
        assert store.descriptor(100) == (KIND_RANGE, 0.5, 0.5, 0.9, 0.9)
        assert len(store) == 1

    def test_kinds_default_zero_bounds(self):
        store = ColumnarQueryStore()
        store.put(1, KIND_KNN)
        store.put(2, KIND_PREDICTIVE)
        assert store.descriptor(1) == (KIND_KNN, 0.0, 0.0, 0.0, 0.0)
        assert store.descriptor(2) == (KIND_PREDICTIVE, 0.0, 0.0, 0.0, 0.0)
        assert store.descriptors([1, 2]) == {
            1: (KIND_KNN, 0.0, 0.0, 0.0, 0.0),
            2: (KIND_PREDICTIVE, 0.0, 0.0, 0.0, 0.0),
        }

    def test_every_mutation_bumps_version(self):
        store = ColumnarQueryStore()
        seen = {store.version}
        store.put(1, KIND_RANGE, 0, 0, 1, 1)
        seen.add(store.version)
        store.put(1, KIND_RANGE, 0, 0, 0.5, 0.5)  # in-place update too
        seen.add(store.version)
        store.remove(1)
        seen.add(store.version)
        assert len(seen) == 4

    def test_swap_remove(self):
        store = ColumnarQueryStore()
        store.put(10, KIND_RANGE, 0.0, 0.0, 0.1, 0.1)
        store.put(20, KIND_KNN)
        store.put(30, KIND_PREDICTIVE)
        store.remove(10)
        assert store.row_of(30) == 0
        assert store.descriptor(30) == (KIND_PREDICTIVE, 0.0, 0.0, 0.0, 0.0)
        assert store.descriptor(20) == (KIND_KNN, 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(KeyError):
            store.descriptor(10)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestNumpyViews:
    def test_object_views_are_zero_copy(self):
        import numpy as np

        store = ColumnarObjectStore()
        store.apply_report(1, 0.5, 0.25, 0.0, 0.0, 0.0, 3)
        xs, ys, old_xs, old_ys = store.coord_views()
        assert xs.dtype == np.float64
        assert xs[0] == 0.5 and ys[0] == 0.25
        assert np.isnan(old_xs[0]) and np.isnan(old_ys[0])
        # Scalar writes are visible through a live view (zero copy).
        store.xs[0] = 0.75
        assert xs[0] == 0.75

    def test_empty_store_views(self):
        xs, ys = ColumnarObjectStore().xy_views()
        assert len(xs) == 0 and len(ys) == 0
        views = ColumnarQueryStore().bounds_views()
        assert all(len(v) == 0 for v in views)


class TestResolveBackend:
    def test_explicit_python(self):
        assert resolve_backend("python") == "python"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_auto_prefers_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend("auto") == "numpy"
        assert resolve_backend("numpy") == "numpy"

    def test_env_override_applies_to_auto_only(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert resolve_backend("auto") == "python"
        if numpy_available():
            assert resolve_backend("numpy") == "numpy"

    def test_env_override_garbage_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "cuda")
        with pytest.raises(ValueError):
            resolve_backend("auto")
