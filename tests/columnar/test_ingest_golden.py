"""Golden equivalence of the batch ingest kernel, scenario by scenario.

The randomized trio tests (``test_golden_equivalence.py``) sweep broad
workloads; these tests pin the specific report-buffer shapes the batch
ingest kernel (:mod:`repro.columnar.ingest`) special-cases — brand-new
objects, stay-put batches, predictive/stationary transitions in both
directions, boundary-clamped coordinates, and removal-interleaved
batches — across all four pipelines and both columnar backends.

The three batched pipelines (cell-batched, parallel, columnar) must
emit **byte-identical** ordered update streams; the per-object
reference must agree per query as a set (its intra-batch emission
order legitimately differs).  Every engine's invariants are checked
after every round, which includes the dense ``oid -> cell`` column the
batch kernel maintains.
"""

from __future__ import annotations

import pytest

from repro.columnar import numpy_available
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect, Velocity

GRID = 8
HORIZON = 30.0


def ordered(updates):
    return [(u.qid, u.oid, u.sign) for u in updates]


def per_query(stream):
    out: dict[int, set] = {}
    for qid, oid, sign in stream:
        out.setdefault(qid, set()).add((oid, sign))
    return out


class Fleet:
    """One engine per pipeline/backend combination, driven in lockstep."""

    def __init__(self):
        self.engines: dict[str, IncrementalEngine] = {
            "cell-batched": IncrementalEngine(
                grid_size=GRID,
                prediction_horizon=HORIZON,
                pipeline="cell-batched",
            ),
            "parallel": IncrementalEngine(
                grid_size=GRID,
                prediction_horizon=HORIZON,
                pipeline="parallel",
            ),
            "columnar-python": IncrementalEngine(
                grid_size=GRID,
                prediction_horizon=HORIZON,
                pipeline="columnar",
                columnar_backend="python",
            ),
            "per-object": IncrementalEngine(
                grid_size=GRID,
                prediction_horizon=HORIZON,
                pipeline="per-object",
            ),
        }
        if numpy_available():
            self.engines["columnar-numpy"] = IncrementalEngine(
                grid_size=GRID,
                prediction_horizon=HORIZON,
                pipeline="columnar",
                columnar_backend="numpy",
            )

    def all(self, method: str, *args) -> None:
        for engine in self.engines.values():
            getattr(engine, method)(*args)

    def evaluate_and_compare(self, now: float) -> list[tuple[int, int, int]]:
        streams = {
            name: ordered(engine.evaluate(now))
            for name, engine in self.engines.items()
        }
        want = streams.pop("cell-batched")
        reference = streams.pop("per-object")
        for name, got in streams.items():
            assert got == want, f"{name} stream diverged from cell-batched"
        assert per_query(reference) == per_query(want), (
            "per-object update set diverged"
        )
        for engine in self.engines.values():
            engine.check_invariants()
        return want

    def register_standard_queries(self) -> None:
        # Ranges tiling the middle, a knn probe, and predictive windows.
        self.all("register_range_query", 1, Rect(0.10, 0.10, 0.45, 0.45))
        self.all("register_range_query", 2, Rect(0.40, 0.40, 0.90, 0.90))
        self.all("register_range_query", 3, Rect(0.0, 0.0, 0.125, 0.125))
        self.all("register_knn_query", 4, Point(0.5, 0.5), 3)
        self.all("register_predictive_query", 5, Rect(0.2, 0.2, 0.6, 0.6), 10.0)
        self.all("register_predictive_query", 6, Rect(0.7, 0.1, 0.95, 0.5), 10.0)


def test_new_object_batch():
    """A buffer of brand-new objects: every transition key is (-1, cell)."""
    fleet = Fleet()
    fleet.register_standard_queries()
    fleet.evaluate_and_compare(0.0)
    for oid in range(40):
        fleet.all(
            "report_object", oid, Point((oid % 10) / 10.0, (oid // 10) / 4.0), 1.0
        )
    stream = fleet.evaluate_and_compare(1.0)
    assert stream, "new objects must produce enter updates"


def test_stay_put_batch():
    """Re-reports that keep every object in its home cell still emit a
    correct (possibly empty) delta and leave the index unchanged."""
    fleet = Fleet()
    fleet.register_standard_queries()
    for oid in range(30):
        fleet.all("report_object", oid, Point(oid / 30.0, 0.3), 0.0)
    fleet.evaluate_and_compare(0.0)
    # Nudge within the same cell (cell width 0.125, nudge 0.001).
    for oid in range(30):
        fleet.all(
            "report_object", oid, Point(oid / 30.0 + 0.001, 0.3), 1.0
        )
    fleet.evaluate_and_compare(1.0)


def test_predictive_to_stationary():
    """Objects with multi-cell predictive footprints dropping to zero
    velocity: the minority branch's multi->point transition."""
    fleet = Fleet()
    fleet.register_standard_queries()
    for oid in range(20):
        fleet.all(
            "report_object",
            oid,
            Point(0.1 + oid * 0.04, 0.5),
            0.0,
            Velocity(0.02, -0.015),
        )
    fleet.evaluate_and_compare(0.0)
    for oid in range(20):
        fleet.all(
            "report_object",
            oid,
            Point(0.1 + oid * 0.04, 0.52),
            1.0,
            Velocity.ZERO,
        )
    fleet.evaluate_and_compare(1.0)


def test_stationary_to_predictive():
    """Stationary objects acquiring velocity: majority rows leaving the
    dense point column for multi-cell footprints."""
    fleet = Fleet()
    fleet.register_standard_queries()
    for oid in range(20):
        fleet.all("report_object", oid, Point(0.1 + oid * 0.04, 0.5), 0.0)
    fleet.evaluate_and_compare(0.0)
    for oid in range(20):
        fleet.all(
            "report_object",
            oid,
            Point(0.1 + oid * 0.04, 0.5),
            1.0,
            Velocity(-0.01, 0.02),
        )
    fleet.evaluate_and_compare(1.0)
    # And a mixed follow-up batch: half keep moving, half stop.
    for oid in range(20):
        velocity = Velocity(0.01, 0.0) if oid % 2 else Velocity.ZERO
        fleet.all(
            "report_object",
            oid,
            Point(0.12 + oid * 0.04, 0.52),
            2.0,
            velocity,
        )
    fleet.evaluate_and_compare(2.0)


def test_boundary_clamped_batch():
    """Coordinates on cell edges and outside the world: the batch cell
    kernel must clamp bit-identically to the scalar path."""
    fleet = Fleet()
    fleet.register_standard_queries()
    edge = 0.125  # cell width for GRID=8
    coords = [
        Point(0.0, 0.0),
        Point(1.0, 1.0),
        Point(edge, edge),
        Point(2 * edge, 0.5),
        Point(1.0, 0.0),
        Point(0.0, 1.0),
        Point(3 * edge, 7 * edge),
        Point(0.999999999, 0.5),
    ]
    for oid, p in enumerate(coords):
        fleet.all("report_object", oid, p, 0.0)
    fleet.evaluate_and_compare(0.0)
    # Shift everything exactly one cell; stragglers clamp at the edge.
    for oid, p in enumerate(coords):
        fleet.all(
            "report_object",
            oid,
            Point(min(p.x + edge, 1.0), min(p.y + edge, 1.0)),
            1.0,
        )
    fleet.evaluate_and_compare(1.0)


def test_removal_interleaved_batches():
    """Removals between batches: the dense column must forget removed
    oids, and a re-reported oid is a brand-new (-1, cell) transition."""
    fleet = Fleet()
    fleet.register_standard_queries()
    for oid in range(24):
        fleet.all("report_object", oid, Point(oid / 24.0, 0.42), 0.0)
    fleet.evaluate_and_compare(0.0)
    for oid in (3, 7, 11):
        fleet.all("remove_object", oid)
    for oid in range(0, 24, 2):  # move the even half (incl. removed "missing")
        if oid not in (3, 7, 11):
            fleet.all("report_object", oid, Point(oid / 24.0, 0.61), 1.0)
    fleet.evaluate_and_compare(1.0)
    # Re-report a removed oid alongside fresh moves.
    fleet.all("report_object", 7, Point(0.3, 0.3), 2.0)
    for oid in range(1, 24, 2):
        if oid not in (3, 11):
            fleet.all("report_object", oid, Point(oid / 24.0, 0.18), 2.0)
    fleet.evaluate_and_compare(2.0)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_dense_column_mirrors_index():
    """The batch kernel's oid -> cell column stays in lockstep with the
    grid index across mixed rounds (spot check beyond check_invariants)."""
    from repro.columnar.ingest import MULTI_CELL

    engine = IncrementalEngine(
        grid_size=GRID,
        prediction_horizon=HORIZON,
        pipeline="columnar",
        columnar_backend="numpy",
    )
    engine.register_range_query(1, Rect(0.1, 0.1, 0.9, 0.9))
    for oid in range(10):
        engine.report_object(oid, Point(oid / 10.0, 0.5), 0.0)
    engine.report_object(10, Point(0.5, 0.5), 0.0, Velocity(0.03, 0.0))
    engine.evaluate(0.0)
    ingest = engine._batch_ingest
    assert ingest is not None and ingest.enabled
    for oid in range(10):
        cells = engine.index.object_cells(oid)
        assert ingest.cell_hint(oid) == next(iter(cells))
    predictive_cells = engine.index.object_cells(10)
    hint = ingest.cell_hint(10)
    if len(predictive_cells) > 1:
        assert hint == MULTI_CELL
    else:
        assert hint == next(iter(predictive_cells))
    engine.remove_object(4)
    engine.evaluate(1.0)
    assert ingest.cell_hint(4) == -1  # NOT_INDEXED after removal
