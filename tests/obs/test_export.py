"""Exporter formats: Prometheus text, JSONL snapshots, Chrome traces."""

import json
import math
import re

from repro.obs import (
    FreshnessTracker,
    JsonlSink,
    MetricsRegistry,
    Tracer,
    prometheus_text,
    registry_to_dict,
    write_chrome_trace,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("updates_total").inc(7)
    reg.counter("net_messages_total", labels={"type": "UpdateMessage"}).inc(2)
    reg.gauge("savings_ratio").set(0.25)
    hist = reg.histogram("cycle_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(5.0)
    return reg


class TestPrometheusText:
    def test_type_lines_and_values(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE updates_total counter" in text
        assert "updates_total 7.0" in text
        assert "# TYPE savings_ratio gauge" in text
        assert "savings_ratio 0.25" in text

    def test_labels_rendered(self):
        text = prometheus_text(populated_registry())
        assert 'net_messages_total{type="UpdateMessage"} 2.0' in text

    def test_histogram_exposition_is_cumulative(self):
        text = prometheus_text(populated_registry())
        assert 'cycle_seconds_bucket{le="0.1"} 1' in text
        assert 'cycle_seconds_bucket{le="1.0"} 1' in text
        assert 'cycle_seconds_bucket{le="+Inf"} 2' in text
        assert "cycle_seconds_sum 5.05" in text
        assert "cycle_seconds_count 2" in text

    def test_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("engine.phase-seconds").inc()
        assert "engine_phase_seconds 1.0" in prometheus_text(reg)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"k": 'a"b\\c'}).inc()
        assert 'k="a\\"b\\\\c"' in prometheus_text(reg)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestPrometheusTextEdgeCases:
    """The exposition corners a scraper trips over: hostile label
    values, histograms nobody has observed yet, non-finite samples."""

    def test_newlines_in_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"k": "line1\nline2"}).inc()
        text = prometheus_text(reg)
        assert 'k="line1\\nline2"' in text
        # The escaped value must not break the one-sample-per-line
        # framing the format is built on.
        sample_lines = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert len(sample_lines) == 1

    def test_mixed_hostile_label_value_round_trips(self):
        hostile = 'a\\"b\nc\\'
        reg = MetricsRegistry()
        reg.counter("m", labels={"k": hostile}).inc()
        (line,) = [
            ln
            for ln in prometheus_text(reg).splitlines()
            if not ln.startswith("#")
        ]
        quoted = re.search(r'k="((?:[^"\\]|\\.)*)"', line).group(1)
        unescaped = (
            quoted.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        # Unescaping in the wrong order corrupts trailing backslashes;
        # pin the exact value instead of just "contains".
        decoded = quoted.encode().decode("unicode_escape")
        assert decoded == hostile or unescaped == hostile

    def test_empty_histogram_still_emits_full_exposition(self):
        """A registered-but-never-observed histogram must expose zeroed
        buckets, sum and count — absence reads as a scrape failure."""
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        text = prometheus_text(reg)
        assert "# TYPE h histogram" in text
        assert 'h_bucket{le="1.0"} 0' in text
        assert 'h_bucket{le="2.0"} 0' in text
        assert 'h_bucket{le="+Inf"} 0' in text
        assert "h_sum 0" in text
        assert "h_count 0" in text

    def test_nan_and_infinite_gauges_use_prometheus_spelling(self):
        reg = MetricsRegistry()
        reg.gauge("g_nan").set(float("nan"))
        reg.gauge("g_inf").set(float("inf"))
        reg.gauge("g_ninf").set(float("-inf"))
        text = prometheus_text(reg)
        assert "g_nan NaN" in text
        assert "g_inf +Inf" in text
        assert "g_ninf -Inf" in text

    def test_leading_digit_names_get_underscore_prefix(self):
        reg = MetricsRegistry()
        reg.counter("95th_latency").inc()
        assert "_95th_latency 1.0" in prometheus_text(reg)

    def test_every_sample_line_is_well_formed(self):
        """Format fuzz: whatever the registry holds, each non-comment
        line must match ``name{labels} value`` with balanced quoting."""
        reg = MetricsRegistry()
        reg.counter("a b", labels={"x": 'q"q', "y": "n\nn"}).inc(3)
        reg.gauge("9lives").set(float("nan"))
        hist = reg.histogram("h", buckets=(0.5,), labels={"z": "\\"})
        hist.observe(0.1)
        pattern = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z0-9_:]+="(?:[^"\\\n]|\\.)*",?)*\})? '
            r"(NaN|[+-]Inf|[0-9eE+.-]+)$"
        )
        for line in prometheus_text(reg).splitlines():
            if line.startswith("#"):
                continue
            assert pattern.match(line), f"malformed exposition line: {line!r}"


class TestFreshnessSeriesRoundTrip:
    """The new freshness histograms travel intact through both
    exporters: text exposition and the dict/JSONL snapshot."""

    def populated_tracker(self):
        reg = MetricsRegistry()
        tracker = FreshnessTracker(reg)
        tracker.stamp_report(1)
        tracker.end_cycle()
        tracker.end_cycle()  # one cycle of lag
        tracker.observe_delivered(qid=7, oid=1, sign=1)
        tracker.observe_committed(7)
        return reg, tracker

    def test_freshness_histograms_in_prometheus_text(self):
        reg, _tracker = self.populated_tracker()
        text = prometheus_text(reg)
        assert "# TYPE freshness_staleness_cycles histogram" in text
        line = (
            'freshness_staleness_cycles_bucket{polarity="positive",'
            'stage="delivery",le="1.0"} 1'
        )
        assert line in text
        assert (
            'freshness_staleness_cycles_count{polarity="positive",'
            'stage="commit"} 1' in text
        )
        assert "# TYPE freshness_staleness_seconds histogram" in text
        assert "# TYPE freshness_tracked_objects gauge" in text

    def test_text_and_dict_exporters_agree_on_counts(self):
        reg, _tracker = self.populated_tracker()
        text = prometheus_text(reg)
        snapshot = reg.to_dict()
        for series in snapshot["freshness_staleness_cycles"]["series"]:
            labels = series["labels"]
            expected = (
                f'freshness_staleness_cycles_count'
                f'{{polarity="{labels["polarity"]}",stage="{labels["stage"]}"}} '
                f'{series["count"]}'
            )
            assert expected in text

    def test_freshness_series_survive_jsonl(self, tmp_path):
        reg, _tracker = self.populated_tracker()
        sink = JsonlSink(tmp_path / "m.jsonl")
        sink.write(reg, timestamp=1.0)
        record = json.loads((tmp_path / "m.jsonl").read_text())
        cycles = record["metrics"]["freshness_staleness_cycles"]
        assert cycles["type"] == "histogram"
        delivery = next(
            s
            for s in cycles["series"]
            if s["labels"] == {"stage": "delivery", "polarity": "positive"}
        )
        assert delivery["count"] == 1
        assert delivery["sum"] == 1.0  # exactly one cycle of lag
        assert not math.isnan(delivery["mean"])


class TestDictAndJsonl:
    def test_registry_to_dict_matches_method(self):
        reg = populated_registry()
        assert registry_to_dict(reg) == reg.to_dict()

    def test_jsonl_sink_appends_parseable_lines(self, tmp_path):
        reg = populated_registry()
        sink = JsonlSink(tmp_path / "metrics.jsonl")
        sink.write(reg, timestamp=1.0)
        reg.counter("updates_total").inc()
        sink.write(reg, timestamp=2.0)

        lines = (tmp_path / "metrics.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["t"] == 1.0
        assert first["metrics"]["updates_total"]["series"][0]["value"] == 7.0
        assert second["metrics"]["updates_total"]["series"][0]["value"] == 8.0

    def test_jsonl_sink_stamps_wall_clock_by_default(self, tmp_path):
        sink = JsonlSink(tmp_path / "m.jsonl")
        sink.write(MetricsRegistry())
        record = json.loads((tmp_path / "m.jsonl").read_text())
        assert record["t"] > 0


class TestChromeTraceFile:
    def test_written_file_loads_in_trace_viewer_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cycle"):
            with tracer.span("join"):
                pass
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert {e["name"] for e in payload["traceEvents"]} == {"cycle", "join"}
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        assert payload["displayTimeUnit"] == "ms"
