"""Exporter formats: Prometheus text, JSONL snapshots, Chrome traces."""

import json

from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    Tracer,
    prometheus_text,
    registry_to_dict,
    write_chrome_trace,
)


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("updates_total").inc(7)
    reg.counter("net_messages_total", labels={"type": "UpdateMessage"}).inc(2)
    reg.gauge("savings_ratio").set(0.25)
    hist = reg.histogram("cycle_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(5.0)
    return reg


class TestPrometheusText:
    def test_type_lines_and_values(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE updates_total counter" in text
        assert "updates_total 7.0" in text
        assert "# TYPE savings_ratio gauge" in text
        assert "savings_ratio 0.25" in text

    def test_labels_rendered(self):
        text = prometheus_text(populated_registry())
        assert 'net_messages_total{type="UpdateMessage"} 2.0' in text

    def test_histogram_exposition_is_cumulative(self):
        text = prometheus_text(populated_registry())
        assert 'cycle_seconds_bucket{le="0.1"} 1' in text
        assert 'cycle_seconds_bucket{le="1.0"} 1' in text
        assert 'cycle_seconds_bucket{le="+Inf"} 2' in text
        assert "cycle_seconds_sum 5.05" in text
        assert "cycle_seconds_count 2" in text

    def test_names_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("engine.phase-seconds").inc()
        assert "engine_phase_seconds 1.0" in prometheus_text(reg)

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"k": 'a"b\\c'}).inc()
        assert 'k="a\\"b\\\\c"' in prometheus_text(reg)

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestDictAndJsonl:
    def test_registry_to_dict_matches_method(self):
        reg = populated_registry()
        assert registry_to_dict(reg) == reg.to_dict()

    def test_jsonl_sink_appends_parseable_lines(self, tmp_path):
        reg = populated_registry()
        sink = JsonlSink(tmp_path / "metrics.jsonl")
        sink.write(reg, timestamp=1.0)
        reg.counter("updates_total").inc()
        sink.write(reg, timestamp=2.0)

        lines = (tmp_path / "metrics.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["t"] == 1.0
        assert first["metrics"]["updates_total"]["series"][0]["value"] == 7.0
        assert second["metrics"]["updates_total"]["series"][0]["value"] == 8.0

    def test_jsonl_sink_stamps_wall_clock_by_default(self, tmp_path):
        sink = JsonlSink(tmp_path / "m.jsonl")
        sink.write(MetricsRegistry())
        record = json.loads((tmp_path / "m.jsonl").read_text())
        assert record["t"] > 0


class TestChromeTraceFile:
    def test_written_file_loads_in_trace_viewer_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cycle"):
            with tracer.span("join"):
                pass
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert {e["name"] for e in payload["traceEvents"]} == {"cycle", "join"}
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        assert payload["displayTimeUnit"] == "ms"
