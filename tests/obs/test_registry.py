"""Metric instruments and registry semantics."""

import pytest

from repro.obs import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    set_default_registry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(4.0)
        assert c.value == 5.0

    def test_rejects_negative(self):
        c = Counter("requests_total")
        with pytest.raises(ValueError):
            c.inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("queue_depth")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == 7.0


class TestHistogram:
    def test_buckets_and_summary(self):
        h = Histogram("latency", bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        assert h.mean == pytest.approx(55.55 / 4)
        # One observation per bucket, +Inf catches the overflow.
        assert h.bucket_counts == [1, 1, 1, 1]
        cumulative = h.cumulative_buckets()
        assert [n for __, n in cumulative] == [1, 2, 3, 4]
        assert cumulative[-1][0] == float("inf")

    def test_boundary_value_lands_in_its_bucket(self):
        h = Histogram("latency", bounds=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" is inclusive
        assert h.bucket_counts == [1, 0, 0]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("empty").mean == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        a = reg.counter("msgs", labels={"client": "1"})
        b = reg.counter("msgs", labels={"client": "2"})
        assert a is not b
        a.inc()
        assert reg.value_of("msgs", {"client": "1"}) == 1.0
        assert reg.value_of("msgs", {"client": "2"}) == 0.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("m", labels={"x": "1", "y": "2"})
        b = reg.counter("m", labels={"y": "2", "x": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError):
            reg.gauge("thing")
        with pytest.raises(TypeError):
            reg.histogram("thing")

    def test_to_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.to_dict()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["series"][0]["value"] == 3.0
        assert snap["g"]["series"][0]["value"] == 1.5
        assert snap["h"]["series"][0]["count"] == 1
        assert snap["h"]["series"][0]["buckets"][0] == {"le": 1.0, "count": 1}

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().value_of("nope") == 0.0

    def test_families_group_by_name(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"k": "a"})
        reg.counter("m", labels={"k": "b"})
        reg.gauge("other")
        families = reg.families()
        assert len(families["m"]) == 2
        assert len(families["other"]) == 1


class TestNullRegistry:
    def test_returns_shared_noop_instrument(self):
        reg = NullRegistry()
        c = reg.counter("anything")
        assert c is NULL_INSTRUMENT
        assert reg.gauge("x") is c
        assert reg.histogram("y") is c
        c.inc(100)
        c.set(5)
        c.observe(1.0)
        assert c.value == 0.0

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled

    def test_null_registry_snapshot_is_empty(self):
        assert NullRegistry().to_dict() == {}


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        original = default_registry()
        mine = MetricsRegistry()
        previous = set_default_registry(mine)
        try:
            assert previous is original
            assert default_registry() is mine
        finally:
            set_default_registry(original)
        assert default_registry() is original
