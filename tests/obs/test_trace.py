"""Span tracing: nesting, exception safety, bounds, metric attachment."""

import pytest

from repro.obs import Counter, Histogram, NullTracer, Tracer


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_records_name_and_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("phase"):
            pass
        (record,) = tracer.events
        assert record.name == "phase"
        assert record.duration == 1.0
        assert not record.error

    def test_nested_spans_record_depth(self):
        tracer = Tracer()
        with tracer.span("cycle"):
            with tracer.span("evaluate"):
                with tracer.span("join"):
                    pass
        by_name = {r.name: r for r in tracer.events}
        assert by_name["cycle"].depth == 0
        assert by_name["evaluate"].depth == 1
        assert by_name["join"].depth == 2

    def test_inner_spans_close_before_outer(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [r.name for r in tracer.events] == ["inner", "outer"]

    def test_span_records_when_body_raises(self):
        """The regression the phase-timer fix guards: a raising phase
        must not lose its lap."""
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        (record,) = tracer.events
        assert record.name == "broken"
        assert record.error
        assert record.duration == 1.0

    def test_depth_restored_after_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError
        with tracer.span("after"):
            pass
        assert {r.name: r.depth for r in tracer.events}["after"] == 0


class TestMetricAttachment:
    def test_counter_accumulates_duration(self):
        tracer = Tracer(clock=FakeClock())
        seconds = Counter("phase_seconds")
        for __ in range(3):
            with tracer.span("phase", counter=seconds):
                pass
        assert seconds.value == 3.0

    def test_histogram_observes_duration(self):
        tracer = Tracer(clock=FakeClock())
        latency = Histogram("cycle_seconds", bounds=(0.5, 2.0))
        with tracer.span("cycle", histogram=latency):
            pass
        assert latency.count == 1
        assert latency.sum == 1.0

    def test_metrics_fed_even_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        seconds = Counter("phase_seconds")
        with pytest.raises(RuntimeError):
            with tracer.span("broken", counter=seconds):
                raise RuntimeError
        assert seconds.value == 1.0


class TestBounds:
    def test_max_events_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        for __ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_clear_resets(self):
        tracer = Tracer(max_events=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.clear()
        assert tracer.events == []
        assert tracer.dropped == 0

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestChromeExport:
    def test_event_structure(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("cycle"):
            pass
        trace = tracer.to_chrome_trace()
        (event,) = trace["traceEvents"]
        assert event["name"] == "cycle"
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(1e6)  # 1 s in microseconds
        assert event["ts"] >= 0.0

    def test_error_span_flagged_in_args(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError
        (event,) = tracer.to_chrome_trace()["traceEvents"]
        assert event["args"]["error"] is True


class TestNullTracer:
    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("phase"):
            pass
        assert tracer.events == []
        assert not tracer.enabled

    def test_null_spans_are_reentrant(self):
        tracer = NullTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.events == []

    def test_attached_metrics_still_fed(self):
        """Disabling tracing must not disable the metrics riding on spans."""
        tracer = NullTracer()
        seconds = Counter("phase_seconds")
        with tracer.span("phase", counter=seconds):
            pass
        assert seconds.value > 0.0
        assert tracer.events == []
