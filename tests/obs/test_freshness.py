"""Freshness tracking: stamp/attribution cycle math, stage split,
per-query summaries, bounds, and the null object."""

from repro.obs import (
    NULL_FRESHNESS,
    FreshnessTracker,
    MetricsRegistry,
    prometheus_text,
)
from repro.obs.freshness import _MAX_PENDING_PER_QUERY, _exact_quantile


class ManualClock:
    """A clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_tracker(**kwargs):
    registry = MetricsRegistry()
    clock = ManualClock()
    tracker = FreshnessTracker(registry, clock=clock, **kwargs)
    return tracker, registry, clock


def hist(registry, name, stage, polarity):
    return registry.histogram(
        name, labels={"stage": stage, "polarity": polarity}
    )


class TestDeliveryStaleness:
    def test_same_cycle_delivery_has_zero_lag(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()  # the evaluation that consumed the report
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        cycles = hist(
            registry, "freshness_staleness_cycles", "delivery", "positive"
        )
        assert cycles.count == 1
        assert cycles.sum == 0.0

    def test_throttled_redelivery_shows_cycle_lag(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        # Three more evaluations pass before a wakeup re-sends it.
        tracker.end_cycle()
        tracker.end_cycle()
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        cycles = hist(
            registry, "freshness_staleness_cycles", "delivery", "positive"
        )
        assert cycles.sum == 3.0

    def test_wall_clock_lag_uses_stamp_time(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        clock.advance(2.5)
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        seconds = hist(
            registry, "freshness_staleness_seconds", "delivery", "positive"
        )
        assert seconds.sum == 2.5

    def test_restamp_resets_staleness(self):
        """A newer report supersedes the old stamp: staleness is always
        measured against the *latest* report of the object."""
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.end_cycle()
        tracker.stamp_report(7)  # fresh report, stamps cycle 3
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        cycles = hist(
            registry, "freshness_staleness_cycles", "delivery", "positive"
        )
        assert cycles.sum == 0.0

    def test_polarity_split(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        tracker.observe_delivered(qid=1, oid=7, sign=-1)
        pos = hist(
            registry, "freshness_staleness_cycles", "delivery", "positive"
        )
        neg = hist(
            registry, "freshness_staleness_cycles", "delivery", "negative"
        )
        assert pos.count == 1
        assert neg.count == 1

    def test_unattributed_update_counted_not_guessed(self):
        tracker, registry, clock = make_tracker()
        tracker.observe_delivered(qid=1, oid=99, sign=1)
        assert registry.counter("freshness_unattributed_updates_total").value == 1
        cycles = hist(
            registry, "freshness_staleness_cycles", "delivery", "positive"
        )
        assert cycles.count == 0

    def test_undelivered_keeps_stamp_for_recovery(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_undelivered(qid=1, oid=7, sign=1)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        assert registry.counter("freshness_undelivered_updates_total").value == 1
        cycles = hist(
            registry, "freshness_staleness_cycles", "delivery", "positive"
        )
        assert cycles.sum == 1.0  # the recovery shows the real lag

    def test_forget_drops_stamp(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.forget(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=-1)
        assert registry.counter("freshness_unattributed_updates_total").value == 1


class TestCommitStaleness:
    def test_commit_lag_exceeds_delivery_lag_when_ack_is_late(self):
        """The delivered-view commit gap: a client that acknowledges
        cycles later shows commit staleness the delivery stage lacks."""
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)  # delivery lag 0
        tracker.end_cycle()
        tracker.end_cycle()
        clock.advance(4.0)
        tracker.observe_committed(1)  # commit lag 2 cycles, 4 seconds
        d = hist(registry, "freshness_staleness_cycles", "delivery", "positive")
        c = hist(registry, "freshness_staleness_cycles", "commit", "positive")
        assert d.sum == 0.0
        assert c.sum == 2.0
        c_secs = hist(
            registry, "freshness_staleness_seconds", "commit", "positive"
        )
        assert c_secs.sum == 4.0

    def test_commit_drains_pending_once(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        tracker.observe_committed(1)
        tracker.observe_committed(1)  # nothing pending; must be a no-op
        c = hist(registry, "freshness_staleness_cycles", "commit", "positive")
        assert c.count == 1

    def test_pending_commit_is_bounded(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        for _ in range(_MAX_PENDING_PER_QUERY + 10):
            tracker.observe_delivered(qid=1, oid=7, sign=1)
        assert (
            registry.counter("freshness_pending_commit_dropped_total").value
            == 10
        )
        tracker.observe_committed(1)
        c = hist(registry, "freshness_staleness_cycles", "commit", "positive")
        assert c.count == _MAX_PENDING_PER_QUERY

    def test_forget_query_drops_pending(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        tracker.forget_query(1)
        tracker.observe_committed(1)
        c = hist(registry, "freshness_staleness_cycles", "commit", "positive")
        assert c.count == 0


class TestSummaries:
    def test_exact_quantile_nearest_rank(self):
        counts = {0: 50, 1: 30, 5: 15, 13: 5}
        assert _exact_quantile(counts, 0.50) == 0
        assert _exact_quantile(counts, 0.95) == 5
        assert _exact_quantile(counts, 0.99) == 13
        assert _exact_quantile({}, 0.5) == 0

    def test_query_summary_percentiles(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        for _ in range(99):
            tracker.observe_delivered(qid=1, oid=7, sign=1)
        tracker.end_cycle()  # the hundredth delivery lags a cycle
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        summary = tracker.query_summary(1)
        assert summary["delivery"]["count"] == 100
        assert summary["delivery"]["cycles"]["p50"] == 0
        assert summary["delivery"]["cycles"]["p99"] == 0
        assert summary["delivery"]["cycles"]["max"] == 1
        assert tracker.query_summary(999) == {}

    def test_per_query_tracking_is_bounded(self):
        tracker, registry, clock = make_tracker(max_tracked_queries=2)
        tracker.stamp_report(7)
        tracker.end_cycle()
        for qid in (1, 2, 3):
            tracker.observe_delivered(qid=qid, oid=7, sign=1)
        assert tracker.query_summary(1) != {}
        assert tracker.query_summary(2) != {}
        assert tracker.query_summary(3) == {}
        assert registry.counter("freshness_untracked_queries_total").value == 1
        # The aggregate histograms still saw all three.
        cycles = hist(
            registry, "freshness_staleness_cycles", "delivery", "positive"
        )
        assert cycles.count == 3

    def test_stage_summary_and_snapshot_shapes(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        tracker.observe_committed(1)
        stages = tracker.stage_summary()
        assert set(stages) == {"delivery", "commit"}
        assert stages["delivery"]["positive"]["count"] == 1
        snapshot = tracker.snapshot()
        assert snapshot["cycle"] == 1
        assert snapshot["tracked_objects"] == 1
        assert 1 in snapshot["queries"]

    def test_snapshot_is_json_ready(self):
        import json

        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        tracker.observe_committed(1)
        json.dumps(tracker.snapshot())


class TestExportRoundTrip:
    def test_freshness_series_in_prometheus_text(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=1)
        text = prometheus_text(registry)
        assert "# TYPE freshness_staleness_cycles histogram" in text
        assert (
            'freshness_staleness_cycles_bucket{polarity="positive",'
            'stage="delivery",le="0.0"} 1' in text
        )
        assert "# TYPE freshness_tracked_objects gauge" in text

    def test_freshness_series_in_registry_dict(self):
        tracker, registry, clock = make_tracker()
        tracker.stamp_report(7)
        tracker.end_cycle()
        tracker.observe_delivered(qid=1, oid=7, sign=-1)
        data = registry.to_dict()
        family = data["freshness_staleness_cycles"]
        assert family["type"] == "histogram"
        series = next(
            s
            for s in family["series"]
            if s["labels"] == {"stage": "delivery", "polarity": "negative"}
        )
        assert series["count"] == 1


class TestNullTracker:
    def test_null_tracker_noops(self):
        NULL_FRESHNESS.stamp_report(1)
        NULL_FRESHNESS.forget(1)
        NULL_FRESHNESS.end_cycle()
        NULL_FRESHNESS.observe_delivered(1, 2, 1)
        NULL_FRESHNESS.observe_undelivered(1, 2, 1)
        NULL_FRESHNESS.observe_committed(1)
        NULL_FRESHNESS.forget_query(1)
        assert NULL_FRESHNESS.enabled is False
        assert NULL_FRESHNESS.cycle == 0
        assert NULL_FRESHNESS.snapshot() == {}
        assert NULL_FRESHNESS.stage_summary() == {}
        assert NULL_FRESHNESS.query_summary(1) == {}
