"""The observability plane end-to-end: freshness through the server,
flight-recorder protocol capture, and trace-context propagation across
the parallel pool."""

from __future__ import annotations

import json

from repro.core import IncrementalEngine
from repro.core.server import LocationAwareServer
from repro.geometry import Point, Rect
from repro.obs import (
    DEFAULT_RING_SIZE,
    FlightRecorder,
    MetricsRegistry,
    write_chrome_trace,
)
from repro.parallel import ParallelConfig


def make_server(**kwargs):
    server = LocationAwareServer(grid_size=8, **kwargs)
    server.register_client(1)
    server.register_range_query(1, 100, Rect(0.0, 0.0, 0.5, 0.5))
    return server


class TestServerFreshness:
    def test_same_cycle_delivery_is_fresh(self):
        server = make_server()
        server.receive_object_report(7, Point(0.1, 0.1), 0.0)
        server.evaluate_cycle(1.0)
        stages = server.freshness.stage_summary()
        assert stages["delivery"]["positive"]["count"] == 1
        assert stages["delivery"]["positive"]["cycles"]["p99"] == 0.0

    def test_commit_stage_lags_for_lazy_acknowledgement(self):
        server = make_server()
        server.receive_object_report(7, Point(0.1, 0.1), 0.0)
        server.evaluate_cycle(1.0)
        server.evaluate_cycle(2.0)
        server.evaluate_cycle(3.0)
        server.receive_commit(100)
        stages = server.freshness.stage_summary()
        # Delivered immediately (lag 0) but acknowledged two cycles on
        # (bucketed quantiles interpolate, so compare by mean).
        assert stages["delivery"]["positive"]["cycles"]["p99"] == 0.0
        assert stages["commit"]["positive"]["cycles"]["mean"] == 2.0

    def test_throttled_client_staleness_visible(self):
        """A budget-zero client receives nothing until a wakeup; the
        recovered update carries the accumulated cycle lag."""
        server = LocationAwareServer(grid_size=8)
        server.register_client(1, downlink_budget=1)  # nothing fits
        server.register_range_query(1, 100, Rect(0.0, 0.0, 0.5, 0.5))
        server.receive_object_report(7, Point(0.1, 0.1), 0.0)
        server.evaluate_cycle(1.0)  # throttled away
        server.evaluate_cycle(2.0)
        registry = server.registry
        assert (
            registry.counter("freshness_undelivered_updates_total").value == 1
        )
        server.link_of(1).budget_bytes_per_cycle = 10_000
        server.receive_wakeup(1)
        stages = server.freshness.stage_summary()
        # Stamped for cycle 1, recovered after cycle 2: one cycle stale.
        assert stages["delivery"]["positive"]["cycles"]["mean"] == 1.0
        # The wakeup completed the resync, so commit staleness exists too.
        assert stages["commit"]["positive"]["count"] == 1

    def test_freshness_vs_savings_snapshot(self):
        server = make_server()
        server.receive_object_report(7, Point(0.1, 0.1), 0.0)
        server.evaluate_cycle(1.0)
        snap = server.freshness_vs_savings()
        assert 0.0 < snap["savings_ratio"]
        assert snap["incremental_bytes"] > 0
        assert snap["staleness"]["stages"]["delivery"]["positive"]["count"] == 1
        json.dumps(snap)

    def test_unregistration_forgets_query_state(self):
        server = make_server()
        server.receive_object_report(7, Point(0.1, 0.1), 0.0)
        server.evaluate_cycle(1.0)
        assert server.freshness.query_summary(100) != {}
        server.unregister_query(100)
        server.evaluate_cycle(2.0)
        assert server.freshness.query_summary(100) == {}


class TestServerRecorder:
    def test_protocol_chain_is_recorded(self):
        recorder = FlightRecorder(capacity=DEFAULT_RING_SIZE)
        server = make_server(recorder=recorder)
        server.receive_object_report(7, Point(0.1, 0.1), 0.0)
        server.evaluate_cycle(1.0)
        server.receive_commit(100)
        kinds = [e["kind"] for e in recorder.events()]
        assert "uplink_report" in kinds
        assert "evaluate_begin" in kinds
        assert "evaluate_end" in kinds
        assert "downlink" in kinds
        assert "commit" in kinds
        # The chain is causally ordered: report before evaluation
        # before delivery before acknowledgement.
        assert (
            kinds.index("uplink_report")
            < kinds.index("evaluate_begin")
            < kinds.index("downlink")
            < kinds.index("commit")
        )
        downlink = next(
            e for e in recorder.events() if e["kind"] == "downlink"
        )
        assert downlink["qid"] == 100
        assert downlink["oid"] == 7
        assert downlink["ok"] is True

    def test_recorder_installed_on_supplied_engine(self):
        engine = IncrementalEngine(grid_size=8)
        recorder = FlightRecorder(capacity=64)
        server = LocationAwareServer(engine=engine, recorder=recorder)
        assert engine.recorder is recorder
        assert server.recorder is recorder

    def test_default_recorder_is_null(self):
        server = make_server()
        assert not server.recorder.enabled


class TestParallelTracePropagation:
    def make_parallel_server(self, registry=None, recorder=None):
        engine = IncrementalEngine(
            grid_size=8,
            pipeline="parallel",
            parallelism=ParallelConfig(
                workers=2, backend="thread", min_batch=0
            ),
            registry=registry,
            recorder=recorder,
        )
        server = LocationAwareServer(engine=engine)
        server.register_client(1)
        server.register_range_query(1, 100, Rect(0.0, 0.0, 1.0, 1.0))
        return server

    def drive(self, server):
        # Objects spread across grid rows so both shards get cohorts.
        for oid in range(24):
            server.receive_object_report(
                oid, Point((oid % 8) / 8.0 + 0.01, (oid // 8) / 3.0 + 0.01), 0.0
            )
        server.evaluate_cycle(1.0)

    def test_worker_spans_nest_under_cycle_span(self, tmp_path):
        server = self.make_parallel_server()
        try:
            self.drive(server)
        finally:
            server.close()
        path = write_chrome_trace(server.tracer, tmp_path / "trace.json")
        events = json.loads(path.read_text())["traceEvents"]
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        assert "shard_resolve_cells" in by_name
        assert "shard_evaluate_cohorts" in by_name
        (cycle,) = by_name["cycle"]
        (object_reports,) = by_name["object_reports"]
        worker_events = (
            by_name["shard_resolve_cells"] + by_name["shard_evaluate_cohorts"]
        )
        assert len(worker_events) == 4  # two phases x two shards
        for event in worker_events:
            # Temporal containment in the owning cycle span...
            assert event["ts"] >= cycle["ts"]
            assert event["ts"] + event["dur"] <= cycle["ts"] + cycle["dur"]
            # ...explicit parent link to the dispatching span...
            assert event["args"]["parent"] == object_reports["args"]["id"]
            # ...and a per-shard lane distinct from the coordinator's.
            assert event["tid"] in (1, 2)

    def test_shard_events_in_flight_recorder(self):
        recorder = FlightRecorder(capacity=256)
        server = self.make_parallel_server(recorder=recorder)
        try:
            self.drive(server)
        finally:
            server.close()
        kinds = [e["kind"] for e in recorder.events()]
        assert "shard_dispatch" in kinds
        assert "shard_merge" in kinds
        dispatch = next(
            e for e in recorder.events() if e["kind"] == "shard_dispatch"
        )
        assert dispatch["shards"] == 2
        merge = next(
            e for e in recorder.events() if e["kind"] == "shard_merge"
        )
        assert merge["shard_emitted"] + merge["boundary_emitted"] > 0

    def test_worker_crash_triggers_recorder(self):
        recorder = FlightRecorder(capacity=256)
        server = self.make_parallel_server(recorder=recorder)
        try:
            server.engine.worker_crash_hook = lambda payload: payload[0] == 0
            self.drive(server)
        finally:
            server.close()
        assert recorder.triggered == "worker_crash"
        crash = next(
            e for e in recorder.events() if e["kind"] == "trigger"
        )
        assert crash["reason"] == "worker_crash"
        assert crash["shard"] == 0
