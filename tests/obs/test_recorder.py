"""Flight recorder: ring semantics, triggers, dumps, the null object."""

import json

import pytest

from repro.obs import NULL_RECORDER, FlightRecorder


class TickClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestRing:
    def test_events_in_order_with_cycle_stamps(self):
        recorder = FlightRecorder(capacity=8, clock=TickClock())
        recorder.record("uplink_report", oid=1)
        recorder.advance_cycle()
        recorder.record("downlink", qid=2, ok=True)
        events = recorder.events()
        assert [e["kind"] for e in events] == ["uplink_report", "downlink"]
        assert [e["cycle"] for e in events] == [0, 1]
        assert events[0]["oid"] == 1
        assert events[1]["qid"] == 2
        assert events[0]["seq"] == 1

    def test_ring_overwrites_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record("e", i=i)
        assert len(recorder) == 3
        assert recorder.recorded == 5
        assert recorder.overwritten == 2
        assert [e["i"] for e in recorder.events()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_data_key_cannot_shadow_envelope(self):
        """A data key named like an envelope field (``kind``, ``seq``,
        ...) must neither raise nor let the event masquerade as a
        different kind in a dump."""
        recorder = FlightRecorder(capacity=4)
        recorder.record("fault", kind="drop")
        recorder.trigger("oracle_divergence", reason="commit")
        events = recorder.events()
        assert events[0]["kind"] == "fault"
        assert events[1]["kind"] == "trigger"
        assert events[1]["reason"] == "commit"
        assert recorder.triggered == "oracle_divergence"

    def test_clear_resets_everything(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("e")
        recorder.trigger("boom")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.recorded == 0
        assert recorder.triggered is None


class TestTrigger:
    def test_first_trigger_wins(self):
        recorder = FlightRecorder(capacity=8)
        recorder.trigger("oracle_divergence", qid=3)
        recorder.trigger("worker_crash", shard=1)
        assert recorder.triggered == "oracle_divergence"
        # Both triggers are still in the ring as events.
        kinds = [e["kind"] for e in recorder.events()]
        assert kinds == ["trigger", "trigger"]

    def test_auto_dump_on_trigger(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        recorder.auto_dump_prefix = tmp_path / "blackbox"
        recorder.record("downlink", qid=1, ok=False)
        paths = recorder.trigger("oracle_divergence", qid=1)
        assert paths is not None
        assert all(p.exists() for p in paths)
        # A second trigger does not re-dump.
        assert recorder.trigger("again") is None


class TestDumps:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = FlightRecorder(capacity=8, clock=TickClock())
        recorder.record("uplink_report", oid=7)
        recorder.advance_cycle()
        recorder.record("commit", qid=1, via="explicit")
        path = recorder.write_jsonl(tmp_path / "flight.jsonl")
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines == recorder.events()

    def test_chrome_trace_instant_events(self):
        recorder = FlightRecorder(capacity=8, clock=TickClock())
        recorder.record("a")
        recorder.record("b", x=1)
        trace = recorder.to_chrome_trace()
        events = trace["traceEvents"]
        assert [e["ph"] for e in events] == ["i", "i"]
        assert events[0]["ts"] == 0.0
        assert events[1]["ts"] == 1e6  # one TickClock second later
        assert events[1]["args"]["x"] == 1
        assert all(e["cat"] == "flight" for e in events)

    def test_dump_writes_both_files(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        recorder.record("e")
        jsonl, trace = recorder.dump(tmp_path / "box")
        assert jsonl.name == "box.jsonl"
        assert trace.name == "box.trace.json"
        parsed = json.loads(trace.read_text())
        assert len(parsed["traceEvents"]) == 1


class TestNullRecorder:
    def test_null_recorder_noops(self):
        NULL_RECORDER.record("anything", x=1)
        NULL_RECORDER.advance_cycle()
        assert NULL_RECORDER.trigger("boom") is None
        assert NULL_RECORDER.enabled is False
        assert len(NULL_RECORDER) == 0
        assert NULL_RECORDER.events() == []
