"""TPR-tree: inserts, updates, timeslice and window queries."""

import math
import random

import pytest

from repro.geometry import LinearMotion, Point, Rect, Velocity
from repro.tprtree import TprTree


def random_fleet(count: int, seed: int):
    rng = random.Random(seed)
    fleet = {}
    for oid in range(count):
        heading = rng.uniform(0, 2 * math.pi)
        speed = rng.uniform(0.0, 0.005)
        fleet[oid] = (
            Point(rng.random(), rng.random()),
            Velocity(speed * math.cos(heading), speed * math.sin(heading)),
        )
    return fleet


def build_tree(fleet, horizon=60.0, max_entries=8, t=0.0):
    tree = TprTree(horizon=horizon, max_entries=max_entries)
    for oid, (location, velocity) in fleet.items():
        tree.insert(oid, location, velocity, t)
    return tree


def brute_at(fleet, region, t, t_report=0.0):
    hits = set()
    for oid, (location, velocity) in fleet.items():
        position = velocity.displace(location, t - t_report)
        if region.contains_point(position):
            hits.add(oid)
    return hits


def brute_during(fleet, region, t_start, t_end, t_report=0.0):
    hits = set()
    for oid, (location, velocity) in fleet.items():
        motion = LinearMotion(location, velocity, t_report)
        if motion.time_in_rect(region, max(t_start, t_report), t_end) is not None:
            hits.add(oid)
    return hits


class TestConstruction:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TprTree(horizon=0.0)
        with pytest.raises(ValueError):
            TprTree(max_entries=2)

    def test_empty_tree_searches(self):
        tree = TprTree()
        assert list(tree.search_at(Rect(0, 0, 1, 1), 0.0)) == []
        assert list(tree.search_during(Rect(0, 0, 1, 1), 0.0, 10.0)) == []

    def test_duplicate_key_rejected(self):
        tree = TprTree()
        tree.insert(1, Point(0, 0), Velocity.ZERO, 0.0)
        with pytest.raises(KeyError):
            tree.insert(1, Point(1, 1), Velocity.ZERO, 0.0)


class TestTimesliceQueries:
    @pytest.mark.parametrize("t", [0.0, 10.0, 30.0, 60.0])
    def test_matches_brute_force(self, t):
        fleet = random_fleet(200, seed=1)
        tree = build_tree(fleet)
        tree.check_invariants()
        region = Rect(0.3, 0.3, 0.6, 0.6)
        got = {entry.key for entry in tree.search_at(region, t)}
        assert got == brute_at(fleet, region, t)

    def test_past_query_rejected(self):
        tree = TprTree()
        tree.insert(1, Point(0, 0), Velocity.ZERO, 10.0)
        with pytest.raises(ValueError):
            list(tree.search_at(Rect(0, 0, 1, 1), 5.0))


class TestWindowQueries:
    @pytest.mark.parametrize("window", [(0.0, 10.0), (0.0, 60.0), (20.0, 40.0)])
    def test_matches_brute_force(self, window):
        fleet = random_fleet(200, seed=2)
        tree = build_tree(fleet)
        region = Rect(0.45, 0.45, 0.55, 0.55)
        got = {entry.key for entry in tree.search_during(region, *window)}
        assert got == brute_during(fleet, region, *window)

    def test_object_crossing_region_found(self):
        tree = TprTree(horizon=100.0)
        tree.insert(1, Point(0.0, 0.5), Velocity(0.01, 0.0), 0.0)
        region = Rect(0.45, 0.45, 0.55, 0.55)
        assert list(tree.search_at(region, 10.0)) == []
        got = {e.key for e in tree.search_during(region, 0.0, 100.0)}
        assert got == {1}


class TestUpdates:
    def test_update_changes_prediction(self):
        tree = TprTree(horizon=100.0)
        tree.insert(1, Point(0.0, 0.5), Velocity(0.01, 0.0), 0.0)
        region = Rect(0.45, 0.45, 0.55, 0.55)
        assert {e.key for e in tree.search_during(region, 0.0, 100.0)} == {1}
        # The object turns around at t=10.
        tree.update(1, Point(0.1, 0.5), Velocity(-0.01, 0.0), 10.0)
        assert list(tree.search_during(region, 10.0, 100.0)) == []

    def test_delete(self):
        fleet = random_fleet(50, seed=3)
        tree = build_tree(fleet)
        for oid in list(fleet):
            tree.delete(oid)
        assert len(tree) == 0

    def test_churn_matches_brute_force(self):
        rng = random.Random(4)
        fleet = random_fleet(120, seed=5)
        tree = build_tree(fleet, max_entries=6)
        now = 0.0
        for step in range(1, 6):
            now = step * 5.0
            for oid in rng.sample(sorted(fleet), 40):
                location, velocity = fleet[oid]
                position = velocity.displace(location, now - (step - 1) * 5.0)
                heading = rng.uniform(0, 2 * math.pi)
                speed = rng.uniform(0.0, 0.005)
                new_velocity = Velocity(
                    speed * math.cos(heading), speed * math.sin(heading)
                )
                fleet[oid] = (position, new_velocity)
                tree.update(oid, position, new_velocity, now)
            tree.check_invariants()
        # Brute force needs a uniform report time; rebuild positions at now.
        normalized = {}
        for oid, (location, velocity) in fleet.items():
            # Objects not updated this round were observed earlier; their
            # TPBR still predicts exactly, so displace them to `now`.
            normalized[oid] = (location, velocity)
        region = Rect(0.4, 0.4, 0.7, 0.7)
        got = {e.key for e in tree.search_during(region, now, now + 30.0)}
        # Validate against per-object exact motion from each report time.
        want = set()
        for oid in fleet:
            leaf_entry = next(
                e for e in tree._leaf_of_key[oid].entries if e.key == oid
            )
            tpbr = leaf_entry.tpbr
            motion = LinearMotion(
                Point(tpbr.rect.min_x, tpbr.rect.min_y),
                Velocity(tpbr.min_vx, tpbr.min_vy),
                tpbr.t_ref,
            )
            if motion.time_in_rect(region, now, now + 30.0) is not None:
                want.add(oid)
        assert got == want

    def test_stale_report_time_rejected(self):
        tree = TprTree()
        tree.insert(1, Point(0, 0), Velocity.ZERO, 10.0)
        with pytest.raises(ValueError):
            tree.insert(2, Point(0, 0), Velocity.ZERO, 5.0)


class TestStructure:
    def test_invariants_at_scale(self):
        fleet = random_fleet(500, seed=6)
        tree = build_tree(fleet, max_entries=6)
        tree.check_invariants()

    def test_condense_after_mass_deletion(self):
        fleet = random_fleet(200, seed=7)
        tree = build_tree(fleet, max_entries=6)
        rng = random.Random(8)
        for oid in rng.sample(sorted(fleet), 150):
            tree.delete(oid)
        tree.check_invariants()
        assert len(tree) == 50
