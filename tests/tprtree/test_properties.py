"""Property-based TPR-tree and TPBR tests (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.geometry import LinearMotion, Point, Rect, Velocity
from repro.tprtree import TimeParameterizedRect, TprTree

coord = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)
speed = st.floats(
    min_value=-0.0078125, max_value=0.0078125, allow_nan=False, width=32
)
times = st.floats(min_value=0.0, max_value=64.0, allow_nan=False, width=32)


@st.composite
def tpbrs(draw):
    x1, x2 = sorted((draw(coord), draw(coord)))
    y1, y2 = sorted((draw(coord), draw(coord)))
    vx1, vx2 = sorted((draw(speed), draw(speed)))
    vy1, vy2 = sorted((draw(speed), draw(speed)))
    t_ref = draw(st.sampled_from([0.0, 4.0, 16.0]))
    return TimeParameterizedRect(Rect(x1, y1, x2, y2), t_ref, vx1, vy1, vx2, vy2)


class TestTpbrProperties:
    @given(tpbrs(), tpbrs(), times)
    def test_union_covers_operands(self, a, b, t):
        u = a.union(b)
        when = max(t, u.t_ref)
        assert u.contains_tpbr_at(a, when)
        assert u.contains_tpbr_at(b, when)

    @given(tpbrs(), times, times)
    def test_swept_rect_covers_every_instant(self, tpbr, t1, t2):
        lo, hi = sorted((max(t1, tpbr.t_ref), max(t2, tpbr.t_ref)))
        swept = tpbr.swept_rect(lo, hi)
        for i in range(5):
            t = lo + (hi - lo) * i / 4
            assert swept.expanded(1e-9).contains_rect(tpbr.rect_at(t))

    @given(tpbrs(), times)
    def test_normalization_is_extent_preserving(self, tpbr, t):
        anchor = max(t, tpbr.t_ref)
        moved = tpbr.normalized_to(anchor)
        for dt in (0.0, 3.0, 11.0):
            a = moved.rect_at(anchor + dt)
            b = tpbr.rect_at(anchor + dt)
            assert abs(a.min_x - b.min_x) < 1e-9
            assert abs(a.max_y - b.max_y) < 1e-9


fleet_st = st.lists(
    st.tuples(coord, coord, speed, speed), min_size=1, max_size=40
)


class TestTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(fleet_st, st.tuples(coord, coord, coord, coord), times)
    def test_timeslice_matches_oracle(self, fleet, box, t):
        x1, x2 = sorted(box[:2])
        y1, y2 = sorted(box[2:])
        region = Rect(x1, y1, x2, y2)
        tree = TprTree(max_entries=4)
        for oid, (x, y, vx, vy) in enumerate(fleet):
            tree.insert(oid, Point(x, y), Velocity(vx, vy), 0.0)
        tree.check_invariants()
        got = {entry.key for entry in tree.search_at(region, t)}
        want = set()
        for oid, (x, y, vx, vy) in enumerate(fleet):
            position = Velocity(vx, vy).displace(Point(x, y), t)
            if region.contains_point(position):
                want.add(oid)
        assert got == want

    @settings(max_examples=40, deadline=None)
    @given(fleet_st, st.tuples(coord, coord, coord, coord), times, times)
    def test_window_matches_oracle(self, fleet, box, t1, t2):
        x1, x2 = sorted(box[:2])
        y1, y2 = sorted(box[2:])
        region = Rect(x1, y1, x2, y2)
        lo, hi = sorted((t1, t2))
        tree = TprTree(max_entries=4)
        for oid, (x, y, vx, vy) in enumerate(fleet):
            tree.insert(oid, Point(x, y), Velocity(vx, vy), 0.0)
        got = {entry.key for entry in tree.search_during(region, lo, hi)}
        want = set()
        for oid, (x, y, vx, vy) in enumerate(fleet):
            motion = LinearMotion(Point(x, y), Velocity(vx, vy), 0.0)
            if motion.time_in_rect(region, lo, hi) is not None:
                want.add(oid)
        assert got == want

    @settings(max_examples=30, deadline=None)
    @given(fleet_st, st.lists(st.integers(0, 39), max_size=20))
    def test_deletions_preserve_invariants(self, fleet, victims):
        tree = TprTree(max_entries=4)
        for oid, (x, y, vx, vy) in enumerate(fleet):
            tree.insert(oid, Point(x, y), Velocity(vx, vy), 0.0)
        alive = set(range(len(fleet)))
        for victim in victims:
            if victim in alive:
                tree.delete(victim)
                alive.discard(victim)
        tree.check_invariants()
        assert len(tree) == len(alive)
