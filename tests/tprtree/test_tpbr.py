"""Time-parameterized bounding rectangles."""

import pytest

from repro.geometry import Point, Rect, Velocity
from repro.tprtree import TimeParameterizedRect


def tpbr(rect=Rect(0, 0, 1, 1), t_ref=0.0, vs=(-0.1, -0.1, 0.1, 0.1)):
    return TimeParameterizedRect(rect, t_ref, *vs)


class TestConstruction:
    def test_inverted_velocity_bounds_rejected(self):
        with pytest.raises(ValueError):
            TimeParameterizedRect(Rect(0, 0, 1, 1), 0.0, 0.2, 0.0, 0.1, 0.1)

    def test_for_point_is_degenerate_and_exact(self):
        p = TimeParameterizedRect.for_point(Point(0.5, 0.5), Velocity(0.1, -0.2), 3.0)
        assert p.rect.area == 0.0
        assert p.min_vx == p.max_vx == 0.1
        at = p.rect_at(4.0)
        assert at.min_x == pytest.approx(0.6)
        assert at.min_y == pytest.approx(0.3)


class TestEvaluation:
    def test_rect_at_reference_time(self):
        assert tpbr().rect_at(0.0) == Rect(0, 0, 1, 1)

    def test_rect_grows_over_time(self):
        grown = tpbr().rect_at(10.0)
        assert grown == Rect(-1, -1, 2, 2)

    def test_rect_before_reference_rejected(self):
        with pytest.raises(ValueError):
            tpbr(t_ref=5.0).rect_at(4.0)

    def test_swept_rect_is_union_of_endpoints(self):
        moving = tpbr(vs=(0.1, 0.0, 0.1, 0.0))  # rigid translation in x
        swept = moving.swept_rect(0.0, 10.0)
        assert swept == Rect(0, 0, 2, 1)

    def test_swept_rect_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            tpbr().swept_rect(5.0, 4.0)

    def test_intersects_at(self):
        moving = tpbr(rect=Rect(0, 0, 0.1, 0.1), vs=(0.1, 0.0, 0.1, 0.0))
        target = Rect(0.5, 0.0, 0.6, 0.1)
        assert not moving.intersects_at(target, 0.0)
        assert moving.intersects_at(target, 5.0)

    def test_intersects_during_is_conservative(self):
        moving = tpbr(rect=Rect(0, 0, 0.1, 0.1), vs=(0.1, 0.0, 0.1, 0.0))
        target = Rect(0.5, 0.0, 0.6, 0.1)
        assert moving.intersects_during(target, 0.0, 10.0)
        assert not moving.intersects_during(target, 0.0, 1.0)


class TestCombination:
    def test_normalized_to_preserves_extents(self):
        original = tpbr()
        shifted = original.normalized_to(5.0)
        for t in (5.0, 7.5, 10.0):
            assert shifted.rect_at(t) == original.rect_at(t)

    def test_union_covers_both_over_time(self):
        a = tpbr(rect=Rect(0, 0, 0.2, 0.2), vs=(0.0, 0.0, 0.1, 0.1))
        b = tpbr(rect=Rect(0.8, 0.8, 1.0, 1.0), vs=(-0.1, -0.1, 0.0, 0.0))
        u = a.union(b)
        for t in (0.0, 5.0, 20.0):
            assert u.rect_at(t).contains_rect(a.rect_at(t))
            assert u.rect_at(t).contains_rect(b.rect_at(t))

    def test_union_of_different_reference_times(self):
        a = tpbr(t_ref=0.0)
        b = tpbr(t_ref=5.0)
        u = a.union(b)
        assert u.t_ref == 5.0
        assert u.rect_at(5.0).contains_rect(a.rect_at(5.0))

    def test_contains_tpbr_at(self):
        outer = tpbr(rect=Rect(-1, -1, 2, 2))
        inner = tpbr(vs=(0.0, 0.0, 0.0, 0.0))
        assert outer.contains_tpbr_at(inner, 0.0)
        assert outer.contains_tpbr_at(inner, 10.0)
