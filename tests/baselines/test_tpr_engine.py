"""TPR-tree predictive baseline vs the incremental engine."""

import math
import random

import pytest

from repro.baselines import TprPredictiveEngine
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect, Velocity


def random_velocity(rng: random.Random, top_speed: float = 0.005) -> Velocity:
    heading = rng.uniform(0, 2 * math.pi)
    speed = rng.uniform(0.0, top_speed)
    return Velocity(speed * math.cos(heading), speed * math.sin(heading))


class TestBasics:
    def test_registration_validation(self):
        engine = TprPredictiveEngine(horizon=60.0)
        engine.register_predictive_query(1, Rect(0, 0, 0.1, 0.1), 30.0)
        with pytest.raises(KeyError):
            engine.register_predictive_query(1, Rect(0, 0, 0.1, 0.1), 30.0)
        with pytest.raises(ValueError):
            engine.register_predictive_query(2, Rect(0, 0, 0.1, 0.1), 120.0)

    def test_report_and_evaluate(self):
        engine = TprPredictiveEngine(horizon=100.0)
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.01, 0.0))
        engine.register_predictive_query(9, Rect(0.4, 0.4, 0.5, 0.5), 50.0)
        answers = engine.evaluate(0.0)
        assert answers[9] == frozenset({1})

    def test_update_changes_answer(self):
        engine = TprPredictiveEngine(horizon=100.0)
        engine.report_object(1, Point(0.1, 0.45), 0.0, Velocity(0.01, 0.0))
        engine.register_predictive_query(9, Rect(0.4, 0.4, 0.5, 0.5), 50.0)
        engine.evaluate(0.0)
        engine.report_object(1, Point(0.15, 0.45), 5.0, Velocity(-0.01, 0.0))
        assert engine.evaluate(5.0)[9] == frozenset()

    def test_remove_and_unregister(self):
        engine = TprPredictiveEngine(horizon=100.0)
        engine.report_object(1, Point(0.45, 0.45), 0.0)
        engine.register_predictive_query(9, Rect(0.4, 0.4, 0.5, 0.5), 50.0)
        engine.remove_object(1)
        assert engine.evaluate(0.0)[9] == frozenset()
        engine.unregister_query(9)
        assert engine.evaluate(0.0) == {}

    def test_clock_discipline(self):
        engine = TprPredictiveEngine()
        engine.evaluate(10.0)
        with pytest.raises(ValueError):
            engine.evaluate(5.0)
        with pytest.raises(ValueError):
            engine.report_object(1, Point(0, 0), 5.0)


class TestAgreementWithIncrementalEngine:
    def test_answers_match_under_churn(self):
        rng = random.Random(13)
        tpr = TprPredictiveEngine(horizon=100.0)
        incremental = IncrementalEngine(grid_size=16, prediction_horizon=100.0)

        fleet = {}
        for oid in range(60):
            fleet[oid] = (Point(rng.random(), rng.random()), random_velocity(rng))
            location, velocity = fleet[oid]
            tpr.report_object(oid, location, 0.0, velocity)
            incremental.report_object(oid, location, 0.0, velocity)

        regions = {
            100 + i: Rect.square(Point(rng.random(), rng.random()), 0.15)
            for i in range(8)
        }
        for qid, region in regions.items():
            tpr.register_predictive_query(qid, region, 40.0)
            incremental.register_predictive_query(qid, region, 40.0)

        incremental.evaluate(0.0)
        answers = tpr.evaluate(0.0)
        for qid in regions:
            assert answers[qid] == incremental.answer_of(qid), qid

        for step in range(1, 5):
            now = step * 5.0
            for oid in rng.sample(sorted(fleet), 20):
                location, velocity = fleet[oid]
                position = velocity.displace(location, 5.0)
                new_velocity = random_velocity(rng)
                fleet[oid] = (position, new_velocity)
                tpr.report_object(oid, position, now, new_velocity)
                incremental.report_object(oid, position, now, new_velocity)
            incremental.evaluate(now)
            answers = tpr.evaluate(now)
            for qid in regions:
                assert answers[qid] == incremental.answer_of(qid), (step, qid)
