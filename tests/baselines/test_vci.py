"""Velocity-Constrained Indexing baseline."""

import random

import pytest

from repro.baselines import VCIEngine
from repro.geometry import Point, Rect


def drifting_workload(seed: int = 0, n_objects: int = 100, n_queries: int = 20):
    rng = random.Random(seed)
    objects = {oid: Point(rng.random(), rng.random()) for oid in range(n_objects)}
    queries = {
        1000 + i: Rect.square(Point(rng.random(), rng.random()), 0.2)
        for i in range(n_queries)
    }
    return rng, objects, queries


def drift(rng, objects, max_step: float):
    """Move every object by at most max_step in each axis (bounded speed)."""
    for oid, p in list(objects.items()):
        objects[oid] = Point(
            min(1.0, max(0.0, p.x + rng.uniform(-max_step, max_step))),
            min(1.0, max(0.0, p.y + rng.uniform(-max_step, max_step))),
        )


class TestConstruction:
    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError):
            VCIEngine(max_speed=0.0)

    def test_staleness_and_expansion(self):
        engine = VCIEngine(max_speed=0.01)
        engine.rebuild(0.0)
        engine.evaluate(5.0)
        assert engine.staleness == 5.0
        assert engine.expansion == pytest.approx(0.05)


class TestCorrectness:
    def test_exact_at_rebuild_time(self):
        __, objects, queries = drifting_workload()
        engine = VCIEngine(max_speed=0.01)
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        engine.rebuild(0.0)
        answers = engine.evaluate(0.0)
        for qid, region in queries.items():
            want = {oid for oid, p in objects.items() if region.contains_point(p)}
            assert set(answers[qid]) == want

    def test_exact_under_bounded_drift_without_reindexing(self):
        """The defining VCI property: answers stay exact as objects move,
        with zero index maintenance, as long as speed stays bounded."""
        rng, objects, queries = drifting_workload(seed=1)
        max_speed = 0.004  # per second; 0.02 per 5-second cycle
        engine = VCIEngine(max_speed=max_speed)
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        engine.rebuild(0.0)
        for cycle in range(1, 6):
            now = cycle * 5.0
            drift(rng, objects, max_step=max_speed * 5.0)
            for oid, location in objects.items():
                engine.report_object(oid, location, now)
            answers = engine.evaluate(now)
            for qid, region in queries.items():
                want = {
                    oid for oid, p in objects.items() if region.contains_point(p)
                }
                assert set(answers[qid]) == want, (cycle, qid)

    def test_speed_violation_breaks_guarantee(self):
        """An object teleporting beyond v_max * dt can be missed — the
        documented failure mode that motivates conservative v_max."""
        engine = VCIEngine(max_speed=0.001)
        engine.report_object(1, Point(0.1, 0.1), 0.0)
        engine.register_range_query(100, Rect(0.8, 0.8, 0.9, 0.9))
        engine.rebuild(0.0)
        engine.report_object(1, Point(0.85, 0.85), 5.0)  # way over the limit
        answers = engine.evaluate(5.0)
        assert answers[100] == frozenset()  # missed: candidate never probed

    def test_newborn_objects_are_visible_before_rebuild(self):
        engine = VCIEngine(max_speed=0.01)
        engine.rebuild(0.0)
        engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
        engine.report_object(7, Point(0.5, 0.5), 3.0)
        answers = engine.evaluate(3.0)
        assert answers[100] == frozenset({7})

    def test_removal(self):
        engine = VCIEngine(max_speed=0.01)
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        engine.register_range_query(100, Rect(0.4, 0.4, 0.6, 0.6))
        engine.rebuild(0.0)
        engine.remove_object(1)
        assert engine.evaluate(1.0)[100] == frozenset()


class TestCosts:
    def test_probe_count_grows_with_staleness(self):
        """The VCI trade-off: older index => bigger expansion => more
        candidates refined per query."""
        rng, objects, queries = drifting_workload(seed=2, n_objects=300)
        engine = VCIEngine(max_speed=0.01)
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        engine.rebuild(0.0)
        engine.evaluate(1.0)
        fresh_probes = engine.probe_count
        engine.probe_count = 0
        engine.evaluate(30.0)
        stale_probes = engine.probe_count
        assert stale_probes > fresh_probes

    def test_rebuild_resets_expansion(self):
        engine = VCIEngine(max_speed=0.01)
        engine.report_object(1, Point(0.5, 0.5), 0.0)
        engine.rebuild(0.0)
        engine.evaluate(20.0)
        assert engine.expansion > 0
        engine.rebuild(20.0)
        assert engine.expansion == 0.0

    def test_time_cannot_go_backwards(self):
        engine = VCIEngine(max_speed=0.01)
        engine.evaluate(5.0)
        with pytest.raises(ValueError):
            engine.evaluate(4.0)
