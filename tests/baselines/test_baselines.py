"""Baseline engines: correctness agreement and modelled limitations."""

import random

import pytest

from repro.baselines import PerQueryEngine, QIndexEngine, SnapshotEngine
from repro.core import IncrementalEngine
from repro.geometry import Point, Rect


def workload(n_objects=150, n_queries=40, side=0.1, seed=0):
    rng = random.Random(seed)
    objects = {oid: Point(rng.random(), rng.random()) for oid in range(n_objects)}
    queries = {
        1000 + i: Rect.square(Point(rng.random(), rng.random()), side)
        for i in range(n_queries)
    }
    return objects, queries


def brute(objects, queries):
    return {
        qid: frozenset(
            oid for oid, p in objects.items() if region.contains_point(p)
        )
        for qid, region in queries.items()
    }


ENGINES = [SnapshotEngine, QIndexEngine, PerQueryEngine]


class TestCorrectness:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_initial_answers_match_oracle(self, engine_cls):
        objects, queries = workload()
        engine = engine_cls()
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        assert engine.evaluate(0.0) == brute(objects, queries)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_answers_track_object_movement(self, engine_cls):
        rng = random.Random(1)
        objects, queries = workload(seed=1)
        engine = engine_cls()
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        engine.evaluate(0.0)
        for oid in rng.sample(sorted(objects), 50):
            objects[oid] = Point(rng.random(), rng.random())
            engine.report_object(oid, objects[oid], 1.0)
        assert engine.evaluate(1.0) == brute(objects, queries)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_object_removal(self, engine_cls):
        objects, queries = workload(n_objects=20, seed=2)
        engine = engine_cls()
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        engine.remove_object(3)
        del objects[3]
        assert engine.evaluate(0.0) == brute(objects, queries)

    @pytest.mark.parametrize("engine_cls", [SnapshotEngine, PerQueryEngine])
    def test_query_movement(self, engine_cls):
        objects, queries = workload(seed=3)
        engine = engine_cls()
        for oid, location in objects.items():
            engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            engine.register_range_query(qid, region)
        engine.evaluate(0.0)
        moved_qid = next(iter(queries))
        queries[moved_qid] = Rect.square(Point(0.2, 0.8), 0.2)
        engine.move_range_query(moved_qid, queries[moved_qid], 1.0)
        assert engine.evaluate(1.0) == brute(objects, queries)

    def test_baselines_agree_with_incremental_engine(self):
        objects, queries = workload(seed=4)
        incremental = IncrementalEngine(grid_size=16)
        others = [SnapshotEngine(), QIndexEngine(), PerQueryEngine()]
        for oid, location in objects.items():
            incremental.report_object(oid, location, 0.0)
            for engine in others:
                engine.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            incremental.register_range_query(qid, region)
            for engine in others:
                engine.register_range_query(qid, region)
        incremental.evaluate(0.0)
        for engine in others:
            answers = engine.evaluate(0.0)
            for qid in queries:
                assert answers[qid] == incremental.answer_of(qid)


class TestModelledLimitations:
    def test_qindex_rejects_moving_queries(self):
        engine = QIndexEngine()
        engine.register_range_query(1, Rect(0, 0, 0.1, 0.1))
        with pytest.raises(NotImplementedError):
            engine.move_range_query(1, Rect(0.5, 0.5, 0.6, 0.6), 1.0)

    def test_qindex_bulk_register_rejects_duplicates(self):
        engine = QIndexEngine()
        engine.register_range_query(1, Rect(0, 0, 0.1, 0.1))
        with pytest.raises(KeyError):
            engine.bulk_register({1: Rect(0, 0, 0.2, 0.2)})

    def test_snapshot_duplicate_registration_rejected(self):
        engine = SnapshotEngine()
        engine.register_range_query(1, Rect(0, 0, 0.1, 0.1))
        with pytest.raises(KeyError):
            engine.register_range_query(1, Rect(0, 0, 0.1, 0.1))

    def test_answer_bytes_is_full_retransmission(self):
        engine = SnapshotEngine()
        engine.report_object(1, Point(0.05, 0.05), 0.0)
        engine.register_range_query(1, Rect(0, 0, 0.1, 0.1))
        answers = engine.evaluate(0.0)
        assert engine.answer_bytes(answers) == 16 + 8


class TestBulkRegister:
    def test_qindex_bulk_equals_incremental_registration(self):
        objects, queries = workload(seed=5)
        one_by_one = QIndexEngine()
        bulk = QIndexEngine()
        for oid, location in objects.items():
            one_by_one.report_object(oid, location, 0.0)
            bulk.report_object(oid, location, 0.0)
        for qid, region in queries.items():
            one_by_one.register_range_query(qid, region)
        bulk.bulk_register(queries)
        assert one_by_one.evaluate(0.0) == bulk.evaluate(0.0)
