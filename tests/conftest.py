"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import IncrementalEngine
from repro.geometry import Point, Rect

UNIT = Rect(0.0, 0.0, 1.0, 1.0)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests must not depend on global random state."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def engine() -> IncrementalEngine:
    """A small-grid engine over the unit world."""
    return IncrementalEngine(world=UNIT, grid_size=16, prediction_horizon=100.0)


def random_point(rng: random.Random, world: Rect = UNIT) -> Point:
    return Point(
        world.min_x + rng.random() * world.width,
        world.min_y + rng.random() * world.height,
    )


def random_square(rng: random.Random, side: float, world: Rect = UNIT) -> Rect:
    return Rect.square(random_point(rng, world), side)
