"""Query workload generation."""

import pytest

from repro.generator import (
    MovingObjectSimulator,
    QuerySpec,
    WorkloadConfig,
    WorkloadGenerator,
    manhattan_city,
)
from repro.geometry import Point


@pytest.fixture(scope="module")
def sim():
    return MovingObjectSimulator(manhattan_city(blocks=6), 100, seed=0)


class TestQuerySpec:
    def test_region_is_square(self):
        spec = QuerySpec(qid=1, kind="range", center=Point(0.5, 0.5), side=0.1)
        region = spec.region()
        assert region.width == pytest.approx(0.1)
        assert region.height == pytest.approx(0.1)
        assert region.center == Point(0.5, 0.5)

    def test_knn_region_raises(self):
        spec = QuerySpec(qid=1, kind="knn", center=Point(0.5, 0.5), k=3)
        with pytest.raises(ValueError):
            spec.region()

    def test_recentred_preserves_identity(self):
        spec = QuerySpec(qid=1, kind="range", center=Point(0, 0), side=0.1, carrier=4)
        moved = spec.recentred(Point(1, 1))
        assert moved.qid == 1 and moved.carrier == 4 and moved.center == Point(1, 1)


class TestGeneration:
    def test_counts_per_kind(self, sim):
        config = WorkloadConfig(
            range_queries=20, knn_queries=10, predictive_queries=5, seed=1
        )
        gen = WorkloadGenerator(config, sim)
        kinds = [spec.kind for spec in gen.specs.values()]
        assert kinds.count("range") == 20
        assert kinds.count("knn") == 10
        assert kinds.count("predictive") == 5

    def test_qids_are_dense_from_first_qid(self, sim):
        gen = WorkloadGenerator(WorkloadConfig(range_queries=10, seed=1), sim, first_qid=500)
        assert sorted(gen.specs) == list(range(500, 510))

    def test_moving_fraction_zero_means_all_stationary(self, sim):
        gen = WorkloadGenerator(
            WorkloadConfig(range_queries=30, moving_fraction=0.0, seed=2), sim
        )
        assert gen.moving_query_count == 0
        assert all(spec.carrier is None for spec in gen.specs.values())

    def test_moving_fraction_one_means_all_carried(self, sim):
        gen = WorkloadGenerator(
            WorkloadConfig(range_queries=30, moving_fraction=1.0, seed=2), sim
        )
        assert gen.moving_query_count == 30
        for spec in gen.specs.values():
            assert spec.carrier is not None
            assert spec.center == sim.position_of(spec.carrier)

    def test_deterministic_for_seed(self, sim):
        a = WorkloadGenerator(WorkloadConfig(range_queries=15, seed=5), sim)
        b = WorkloadGenerator(WorkloadConfig(range_queries=15, seed=5), sim)
        assert a.specs == b.specs


class TestFollowing:
    def test_updates_follow_carriers(self):
        local_sim = MovingObjectSimulator(manhattan_city(blocks=6), 50, seed=3)
        gen = WorkloadGenerator(
            WorkloadConfig(range_queries=25, moving_fraction=1.0, seed=4), local_sim
        )
        reports = local_sim.tick(5.0)
        moved = [r.oid for r in reports]
        updated = gen.updates_for_moved_objects(moved)
        assert updated  # with 25 carried queries over 50 objects, some move
        for spec in updated:
            assert spec.center == local_sim.position_of(spec.carrier)
            assert gen.specs[spec.qid] == spec

    def test_stationary_queries_never_update(self, sim):
        gen = WorkloadGenerator(
            WorkloadConfig(range_queries=10, moving_fraction=0.0, seed=6), sim
        )
        assert gen.updates_for_moved_objects(sim.object_ids) == []

    def test_unmoved_carriers_produce_no_updates(self):
        local_sim = MovingObjectSimulator(manhattan_city(blocks=6), 20, seed=7)
        gen = WorkloadGenerator(
            WorkloadConfig(range_queries=10, moving_fraction=1.0, seed=8), local_sim
        )
        assert gen.updates_for_moved_objects([]) == []
