"""Dijkstra routing over road networks."""

import pytest

from repro.generator import RoadClass, RoadNetwork, manhattan_city, shortest_path
from repro.generator.paths import path_length, path_travel_time
from repro.geometry import Point


def line_network(n: int = 5) -> RoadNetwork:
    net = RoadNetwork()
    for i in range(n):
        net.add_node(i, Point(float(i), 0.0))
    for i in range(n - 1):
        net.add_edge(i, i + 1, RoadClass.STREET)
    return net


class TestShortestPath:
    def test_trivial_same_node(self):
        net = line_network()
        assert shortest_path(net, 2, 2) == [2]

    def test_line_path(self):
        net = line_network()
        assert shortest_path(net, 0, 4) == [0, 1, 2, 3, 4]

    def test_unknown_node_raises(self):
        net = line_network()
        with pytest.raises(KeyError):
            shortest_path(net, 0, 99)

    def test_unreachable_returns_none(self):
        net = line_network()
        net.add_node(100, Point(50, 50))  # isolated
        assert shortest_path(net, 0, 100) is None

    def test_prefers_fast_roads_over_short_ones(self):
        # Triangle: direct slow street 0-2 vs highway detour 0-1-2.
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(0.5, 0.4))
        net.add_node(2, Point(1, 0))
        net.add_edge(0, 2, RoadClass.STREET)  # length 1.0, slow
        net.add_edge(0, 1, RoadClass.HIGHWAY)
        net.add_edge(1, 2, RoadClass.HIGHWAY)
        path = shortest_path(net, 0, 2)
        assert path == [0, 1, 2]

    def test_path_is_optimal_vs_exhaustive(self):
        net = manhattan_city(blocks=4)
        source, target = 0, net.node_count - 1
        path = shortest_path(net, source, target)
        assert path is not None
        # Dijkstra's distance must match a Bellman-Ford style relaxation.
        inf = float("inf")
        dist = {node: inf for node in net.nodes}
        dist[source] = 0.0
        for __ in range(net.node_count):
            for edge in net.edges:
                for u, v in ((edge.u, edge.v), (edge.v, edge.u)):
                    if dist[u] + edge.travel_time < dist[v]:
                        dist[v] = dist[u] + edge.travel_time
        assert path_travel_time(net, path) == pytest.approx(dist[target])


class TestPathMeasures:
    def test_path_length_line(self):
        net = line_network()
        assert path_length(net, [0, 1, 2]) == pytest.approx(2.0)

    def test_travel_time_uses_road_class(self):
        net = line_network()
        t = path_travel_time(net, [0, 1])
        assert t == pytest.approx(1.0 / RoadClass.STREET.speed)

    def test_missing_edge_raises(self):
        net = line_network()
        with pytest.raises(ValueError):
            path_length(net, [0, 2])
