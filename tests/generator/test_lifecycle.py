"""Object lifecycle and congestion extensions of the simulator."""

import pytest

from repro.generator import MovingObjectSimulator, manhattan_city


@pytest.fixture(scope="module")
def city():
    return manhattan_city(blocks=6)


class TestValidation:
    def test_bad_lifecycle_args(self, city):
        with pytest.raises(ValueError):
            MovingObjectSimulator(city, 5, routes_per_life=0)
        with pytest.raises(ValueError):
            MovingObjectSimulator(city, 5, arrivals_per_tick=-1)
        with pytest.raises(ValueError):
            MovingObjectSimulator(city, 5, congestion_alpha=-0.1)
        with pytest.raises(ValueError):
            MovingObjectSimulator(city, 5, edge_capacity=0)


class TestLifecycle:
    def test_objects_retire_after_their_routes(self, city):
        sim = MovingObjectSimulator(
            city, 30, seed=1, route_mode="walk", walk_length=2,
            routes_per_life=1,
        )
        departed = []
        for __ in range(100):
            sim.tick(30.0)
            departed.extend(sim.departed)
            if not sim.object_ids:
                break
        assert sorted(departed) == list(range(30))
        assert sim.object_ids == []

    def test_departed_resets_each_tick(self, city):
        sim = MovingObjectSimulator(
            city, 10, seed=2, route_mode="walk", walk_length=2,
            routes_per_life=1,
        )
        while sim.object_ids:
            sim.tick(30.0)
        sim_departed_last = list(sim.departed)
        # ticking an empty world produces no departures
        sim.tick(5.0)
        assert sim.departed == []
        assert sim_departed_last or True

    def test_arrivals_get_fresh_ids(self, city):
        sim = MovingObjectSimulator(
            city, 5, seed=3, route_mode="walk", arrivals_per_tick=2
        )
        sim.tick(5.0)
        assert len(sim.object_ids) == 7
        assert max(sim.object_ids) == 6  # ids 5 and 6 are the newcomers

    def test_newborns_report_on_their_first_tick(self, city):
        sim = MovingObjectSimulator(
            city, 5, seed=4, route_mode="walk", arrivals_per_tick=3
        )
        reports = sim.tick(5.0)
        assert {r.oid for r in reports} == set(range(8))

    def test_steady_state_population(self, city):
        """Arrivals replacing departures keep the population bounded."""
        sim = MovingObjectSimulator(
            city, 20, seed=5, route_mode="walk", walk_length=2,
            routes_per_life=1, arrivals_per_tick=5,
        )
        sizes = []
        for __ in range(20):
            sim.tick(30.0)
            sizes.append(len(sim.object_ids))
        assert all(size > 0 for size in sizes)


class TestCongestion:
    def test_occupancy_is_tracked(self, city):
        sim = MovingObjectSimulator(city, 50, seed=6, route_mode="walk")
        total = sum(sim.edge_occupancy(edge) for edge in city.edges)
        assert total == 50
        sim.tick(5.0)
        total = sum(sim.edge_occupancy(edge) for edge in city.edges)
        assert total == 50

    def test_occupancy_drops_on_retirement(self, city):
        sim = MovingObjectSimulator(
            city, 10, seed=7, route_mode="walk", walk_length=2,
            routes_per_life=1,
        )
        while sim.object_ids:
            sim.tick(30.0)
        assert sum(sim.edge_occupancy(edge) for edge in city.edges) == 0

    def test_congestion_slows_objects_down(self, city):
        """Same seed, same routes: with congestion on, objects cover
        less ground per tick."""
        free = MovingObjectSimulator(
            city, 80, seed=8, route_mode="walk", speed_jitter=0.0
        )
        jammed = MovingObjectSimulator(
            city, 80, seed=8, route_mode="walk", speed_jitter=0.0,
            congestion_alpha=5.0, edge_capacity=2,
        )
        free_start = free.positions()
        jam_start = jammed.positions()
        free.tick(10.0)
        jammed.tick(10.0)
        free_distance = sum(
            free_start[oid].distance_to(p) for oid, p in free.positions().items()
        )
        jam_distance = sum(
            jam_start[oid].distance_to(p) for oid, p in jammed.positions().items()
        )
        assert jam_distance < free_distance

    def test_congestion_preserves_report_structure(self, city):
        sim = MovingObjectSimulator(
            city, 30, seed=9, route_mode="walk", congestion_alpha=2.0
        )
        reports = sim.tick(5.0)
        assert len(reports) == 30
        world = city.bounding_rect()
        for report in reports:
            assert world.expanded(1e-9).contains_point(report.location)
