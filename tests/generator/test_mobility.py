"""Moving-object simulation on road networks."""

import pytest

from repro.generator import MovingObjectSimulator, manhattan_city
from repro.generator.roadnet import RoadClass


@pytest.fixture(scope="module")
def city():
    return manhattan_city(blocks=8)


class TestConstruction:
    def test_rejects_bad_args(self, city):
        with pytest.raises(ValueError):
            MovingObjectSimulator(city, 0)
        with pytest.raises(ValueError):
            MovingObjectSimulator(city, 10, speed_jitter=1.5)
        with pytest.raises(ValueError):
            MovingObjectSimulator(city, 10, route_mode="teleport")

    def test_rejects_disconnected_network(self):
        from repro.generator import RoadNetwork
        from repro.geometry import Point

        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        net.add_node(2, Point(0, 1))
        net.add_edge(0, 1, RoadClass.STREET)
        with pytest.raises(ValueError):
            MovingObjectSimulator(net, 5)

    def test_initial_reports_cover_all_objects(self, city):
        sim = MovingObjectSimulator(city, 25, seed=1)
        reports = sim.initial_reports()
        assert sorted(r.oid for r in reports) == list(range(25))
        assert all(r.t == 0.0 for r in reports)


class TestMovement:
    def test_objects_stay_in_world(self, city):
        sim = MovingObjectSimulator(city, 50, seed=2, route_mode="walk")
        world = city.bounding_rect()
        for __ in range(20):
            for report in sim.tick(5.0):
                assert world.expanded(1e-9).contains_point(report.location)

    def test_objects_move_at_plausible_speed(self, city):
        sim = MovingObjectSimulator(city, 30, seed=3, speed_jitter=0.0)
        before = sim.positions()
        dt = 5.0
        sim.tick(dt)
        after = sim.positions()
        max_speed = RoadClass.HIGHWAY.speed
        for oid in before:
            displacement = before[oid].distance_to(after[oid])
            # Straight-line displacement never exceeds path length.
            assert displacement <= max_speed * dt * 1.0001

    def test_time_advances(self, city):
        sim = MovingObjectSimulator(city, 5, seed=4)
        sim.tick(5.0)
        sim.tick(2.5)
        assert sim.now == pytest.approx(7.5)

    def test_rejects_nonpositive_dt(self, city):
        sim = MovingObjectSimulator(city, 5, seed=4)
        with pytest.raises(ValueError):
            sim.tick(0.0)

    def test_deterministic_given_seed(self, city):
        a = MovingObjectSimulator(city, 20, seed=7, route_mode="walk")
        b = MovingObjectSimulator(city, 20, seed=7, route_mode="walk")
        a.tick(5.0)
        b.tick(5.0)
        assert a.positions() == b.positions()

    def test_velocity_matches_actual_motion(self, city):
        sim = MovingObjectSimulator(city, 10, seed=5, speed_jitter=0.0)
        sim.tick(1.0)
        oid = 0
        before = sim.position_of(oid)
        velocity = sim.velocity_of(oid)
        dt = 0.1  # small enough to stay on the current edge (usually)
        sim.tick(dt)
        after = sim.position_of(oid)
        predicted = velocity.displace(before, dt)
        # Either the prediction holds or the object turned a corner.
        drift = predicted.distance_to(after)
        assert drift <= RoadClass.HIGHWAY.speed * dt * 2 + 1e-9


class TestReporting:
    def test_full_fraction_reports_all_moved(self, city):
        sim = MovingObjectSimulator(city, 40, seed=6)
        assert len(sim.tick(5.0, report_fraction=1.0)) == 40

    def test_zero_fraction_reports_none(self, city):
        sim = MovingObjectSimulator(city, 40, seed=6)
        assert sim.tick(5.0, report_fraction=0.0) == []

    def test_partial_fraction_reports_subset(self, city):
        sim = MovingObjectSimulator(city, 200, seed=8)
        count = len(sim.tick(5.0, report_fraction=0.3))
        assert 20 <= count <= 120  # loose binomial bounds around 60

    def test_unreported_movement_is_not_lost(self, city):
        sim = MovingObjectSimulator(city, 30, seed=9)
        sim.tick(5.0, report_fraction=0.0)
        # Next full tick must report everyone (still marked moved).
        assert len(sim.tick(5.0, report_fraction=1.0)) == 30

    def test_invalid_fraction_rejected(self, city):
        sim = MovingObjectSimulator(city, 5, seed=10)
        with pytest.raises(ValueError):
            sim.tick(5.0, report_fraction=1.5)

    def test_reports_carry_current_position(self, city):
        sim = MovingObjectSimulator(city, 15, seed=11)
        reports = sim.tick(5.0)
        for report in reports:
            assert report.location == sim.position_of(report.oid)
            assert report.t == sim.now


class TestRouteModes:
    def test_shortest_mode_runs(self, city):
        sim = MovingObjectSimulator(city, 10, seed=12, route_mode="shortest")
        for __ in range(30):
            sim.tick(10.0)  # long ticks force many re-routes

    def test_walk_mode_runs(self, city):
        sim = MovingObjectSimulator(city, 10, seed=13, route_mode="walk")
        for __ in range(30):
            sim.tick(10.0)
