"""Road network construction."""

import pytest

from repro.generator import RoadClass, RoadNetwork, manhattan_city, random_network
from repro.geometry import Point, Rect


class TestRoadNetwork:
    def test_add_node_and_edge(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        edge = net.add_edge(0, 1, RoadClass.STREET)
        assert edge.length == 1.0
        assert edge.travel_time == pytest.approx(1.0 / RoadClass.STREET.speed)
        assert net.degree(0) == 1 and net.degree(1) == 1

    def test_duplicate_node_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_node(0, Point(1, 1))

    def test_self_loop_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(ValueError):
            net.add_edge(0, 0, RoadClass.STREET)

    def test_edge_to_unknown_node_rejected(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        with pytest.raises(KeyError):
            net.add_edge(0, 99, RoadClass.STREET)

    def test_other_end(self):
        net = RoadNetwork()
        net.add_node(0, Point(0, 0))
        net.add_node(1, Point(1, 0))
        edge = net.add_edge(0, 1, RoadClass.HIGHWAY)
        assert edge.other_end(0) == 1
        assert edge.other_end(1) == 0
        with pytest.raises(ValueError):
            edge.other_end(2)

    def test_connectivity_detection(self):
        net = RoadNetwork()
        for i, p in enumerate([Point(0, 0), Point(1, 0), Point(0, 1)]):
            net.add_node(i, p)
        net.add_edge(0, 1, RoadClass.STREET)
        assert not net.is_connected()
        net.add_edge(1, 2, RoadClass.STREET)
        assert net.is_connected()


class TestSpeeds:
    def test_road_classes_are_ordered(self):
        assert (
            RoadClass.HIGHWAY.speed
            > RoadClass.ARTERIAL.speed
            > RoadClass.STREET.speed
            > 0
        )

    def test_speeds_small_relative_to_query_sides(self):
        # 5-second displacement must be well under the paper's smallest
        # query side (0.01), or incremental evaluation cannot pay off.
        assert RoadClass.HIGHWAY.speed * 5 < 0.01


class TestManhattanCity:
    def test_node_and_edge_counts(self):
        blocks = 6
        net = manhattan_city(blocks=blocks)
        side = blocks + 1
        assert net.node_count == side * side
        assert net.edge_count == 2 * side * blocks

    def test_is_connected(self):
        assert manhattan_city(blocks=5).is_connected()

    def test_bounds_match_world(self):
        world = Rect(0, 0, 2, 2)
        net = manhattan_city(blocks=4, world=world)
        assert net.bounding_rect() == world

    def test_ring_is_highway(self):
        net = manhattan_city(blocks=4)
        corner_edges = net.edges_from(0)
        assert all(e.road_class is RoadClass.HIGHWAY for e in corner_edges)

    def test_has_all_three_classes(self):
        net = manhattan_city(blocks=8, arterial_every=4)
        classes = {e.road_class for e in net.edges}
        assert classes == {RoadClass.HIGHWAY, RoadClass.ARTERIAL, RoadClass.STREET}

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            manhattan_city(blocks=0)


class TestRandomNetwork:
    def test_is_connected(self):
        assert random_network(80, seed=3).is_connected()

    def test_deterministic_for_seed(self):
        a = random_network(50, seed=9)
        b = random_network(50, seed=9)
        assert a.node_count == b.node_count
        assert a.edge_count == b.edge_count
        assert all(a.nodes[i] == b.nodes[i] for i in a.nodes)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            random_network(1)

    def test_no_duplicate_edges(self):
        net = random_network(60, seed=1)
        seen = set()
        for edge in net.edges:
            pair = frozenset((edge.u, edge.v))
            assert pair not in seen
            seen.add(pair)
