"""Setup shim: enables legacy editable installs in offline environments
where the ``wheel`` package (required by PEP 660 editable builds) is
unavailable.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
