"""Incremental count queries and dense-area monitors."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.grid import Grid


@dataclass(frozen=True, slots=True)
class CountUpdate:
    """A continuous count query's new value (sent only on change)."""

    qid: int
    count: int


@dataclass(frozen=True, slots=True)
class CellUpdate:
    """A density monitor's incremental answer change.

    ``sign`` follows the core engine's convention: +1 means the cell
    became dense (entered the monitor's answer), -1 means it stopped
    being dense.
    """

    qid: int
    cell: int
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")


@dataclass(slots=True)
class _CountQuery:
    qid: int
    region: Rect
    interior_cells: frozenset[int]  # fully covered: count wholesale
    boundary_cells: frozenset[int]  # partially covered: inspect objects
    last_count: int = -1  # force an initial report


@dataclass(slots=True)
class _DensityMonitor:
    qid: int
    threshold: int
    dense: set[int] = field(default_factory=set)


class AggregateEngine:
    """Grid-resident object counts plus the aggregate query types.

    Reports are applied immediately (each costs O(1) counter updates);
    :meth:`evaluate` then emits only the aggregate *changes* — a count
    query that kept its value and a cell that stayed on its side of the
    density threshold produce no traffic.
    """

    def __init__(self, world: Rect = Rect(0.0, 0.0, 1.0, 1.0), grid_size: int = 64):
        self.grid = Grid(world, grid_size)
        self._locations: dict[int, Point] = {}
        self._home_cell: dict[int, int] = {}
        self._residents: dict[int, set[int]] = {}
        self._count_queries: dict[int, _CountQuery] = {}
        self._monitors: dict[int, _DensityMonitor] = {}

    # ------------------------------------------------------------------
    # Object stream
    # ------------------------------------------------------------------

    @property
    def object_count(self) -> int:
        return len(self._locations)

    def report_object(self, oid: int, location: Point, t: float = 0.0) -> None:
        """Move (or insert) an object; O(1) counter maintenance."""
        new_cell = self.grid.cell_of(location)
        old_cell = self._home_cell.get(oid)
        if old_cell is not None and old_cell != new_cell:
            self._residents[old_cell].discard(oid)
            if not self._residents[old_cell]:
                del self._residents[old_cell]
        if old_cell != new_cell:
            self._residents.setdefault(new_cell, set()).add(oid)
            self._home_cell[oid] = new_cell
        self._locations[oid] = location

    def remove_object(self, oid: int) -> None:
        location = self._locations.pop(oid, None)
        if location is None:
            return
        cell = self._home_cell.pop(oid)
        self._residents[cell].discard(oid)
        if not self._residents[cell]:
            del self._residents[cell]

    def cell_count(self, cell: int) -> int:
        """Current number of objects resident in ``cell``."""
        residents = self._residents.get(cell)
        return len(residents) if residents else 0

    # ------------------------------------------------------------------
    # Query registration
    # ------------------------------------------------------------------

    def register_count_query(self, qid: int, region: Rect) -> None:
        """Continuous COUNT over ``region``; first evaluate() reports it."""
        if qid in self._count_queries or qid in self._monitors:
            raise KeyError(f"aggregate query {qid} is already registered")
        cells = self.grid.cells_overlapping_set(region)
        interior = frozenset(
            cell for cell in cells if region.contains_rect(self.grid.cell_rect(cell))
        )
        self._count_queries[qid] = _CountQuery(
            qid, region, interior, cells - interior
        )

    def register_density_monitor(self, qid: int, threshold: int) -> None:
        """Continuous discovery of cells holding >= ``threshold`` objects."""
        if qid in self._count_queries or qid in self._monitors:
            raise KeyError(f"aggregate query {qid} is already registered")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self._monitors[qid] = _DensityMonitor(qid, threshold)

    def unregister(self, qid: int) -> None:
        if self._count_queries.pop(qid, None) is None:
            if self._monitors.pop(qid, None) is None:
                raise KeyError(f"unknown aggregate query {qid}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self) -> list[CountUpdate | CellUpdate]:
        """Emit aggregate changes since the previous evaluation."""
        updates: list[CountUpdate | CellUpdate] = []
        for query in self._count_queries.values():
            count = self._count_region(query)
            if count != query.last_count:
                query.last_count = count
                updates.append(CountUpdate(query.qid, count))
        for monitor in self._monitors.values():
            now_dense = {
                cell
                for cell, residents in self._residents.items()
                if len(residents) >= monitor.threshold
            }
            for cell in sorted(monitor.dense - now_dense):
                updates.append(CellUpdate(monitor.qid, cell, -1))
            for cell in sorted(now_dense - monitor.dense):
                updates.append(CellUpdate(monitor.qid, cell, 1))
            monitor.dense = now_dense
        return updates

    def count_of(self, qid: int) -> int:
        """The current (exact, freshly computed) count for ``qid``."""
        return self._count_region(self._count_queries[qid])

    def dense_cells_of(self, qid: int) -> frozenset[int]:
        """The last evaluated dense-cell set of monitor ``qid``."""
        return frozenset(self._monitors[qid].dense)

    def _count_region(self, query: _CountQuery) -> int:
        count = 0
        for cell in query.interior_cells:
            residents = self._residents.get(cell)
            if residents:
                count += len(residents)
        for cell in query.boundary_cells:
            residents = self._residents.get(cell)
            if not residents:
                continue
            for oid in residents:
                if query.region.contains_point(self._locations[oid]):
                    count += 1
        return count
