"""Continuous aggregate queries over the shared grid.

The paper grounds its choice of data structure in the observation that
"simple grid structures are commonly used to support different
spatio-temporal queries (e.g., range queries, future queries, and
aggregate queries [Hadjieleftheriou et al., SSTD 2003])".  This package
supplies that third family with the same incremental discipline as the
core engine:

* **continuous count queries** — "how many vehicles are inside this
  region" — re-reported only when the count changes, and computed
  cell-wise: cells fully inside the region contribute their resident
  count wholesale, only boundary cells inspect individual objects;
* **density monitors** — on-line discovery of dense grid cells; clients
  receive positive/negative *cell* updates as cells cross the density
  threshold, mirroring the core engine's positive/negative object
  updates.
"""

from repro.aggregates.engine import (
    AggregateEngine,
    CellUpdate,
    CountUpdate,
)

__all__ = ["AggregateEngine", "CountUpdate", "CellUpdate"]
