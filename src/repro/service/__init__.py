"""The live service runtime: the paper's server behind a real socket.

Everything below :mod:`repro.core` is a library; this package is the
deployment.  :class:`ServiceRuntime` binds a TCP listener speaking the
line-delimited JSON protocol (:mod:`repro.service.protocol`), admits
sessions and logical clients under explicit capacity limits
(:mod:`repro.service.admission`), runs the evaluation cycle loop, and
serves ``/state`` + ``/metrics`` over HTTP.  The
:class:`~repro.service.loadgen.LoadDriver` replays generator workloads
as tens of thousands of multiplexed wire clients from a few OS threads.

Quick start::

    python -m repro.service --port 4710 --http-port 4711 --interval 0.5
    python -m repro.service.loadgen --clients 10000 --cycles 20 --self-host
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    downlink_op,
    encode,
)
from repro.service.runtime import ServiceConfig, ServiceRuntime
from repro.service.session import ClientSession

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "ClientSession",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceConfig",
    "ServiceRuntime",
    "decode_line",
    "downlink_op",
    "encode",
]
