"""``python -m repro.service`` — run a live server on real sockets."""

from __future__ import annotations

import argparse
import asyncio

from repro.faults.harness import default_plan
from repro.service.admission import AdmissionConfig
from repro.service.runtime import ServiceConfig, ServiceRuntime


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Continuous-query server on a line-JSON TCP transport.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=4710)
    parser.add_argument("--http-port", type=int, default=4711)
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between evaluation cycles (0 = tick-driven only)",
    )
    parser.add_argument("--grid", type=int, default=64)
    parser.add_argument(
        "--pipeline",
        default="cell-batched",
        help="engine pipeline (per-report, cell-batched, columnar, parallel)",
    )
    parser.add_argument("--max-sessions", type=int, default=1024)
    parser.add_argument("--max-clients", type=int, default=200_000)
    parser.add_argument("--max-backlog", type=int, default=65_536)
    parser.add_argument(
        "--oracle",
        action="store_true",
        help="attach the differential consistency oracle to every client",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help="install the default fault plan with this seed",
    )
    args = parser.parse_args(argv)

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        http_port=args.http_port,
        cycle_interval=args.interval,
        grid_size=args.grid,
        pipeline=args.pipeline,
        admission=AdmissionConfig(
            max_sessions=args.max_sessions,
            max_clients=args.max_clients,
            max_backlog=args.max_backlog,
        ),
        oracle=args.oracle,
        fault_plan=(
            default_plan(args.chaos_seed)
            if args.chaos_seed is not None
            else None
        ),
    )
    runtime = ServiceRuntime(config)

    async def _serve() -> None:
        task = asyncio.ensure_future(runtime.serve())
        while runtime.tcp_address is None and not task.done():
            await asyncio.sleep(0.01)
        if runtime.tcp_address is not None:
            print(
                f"repro.service listening on "
                f"{runtime.tcp_address[0]}:{runtime.tcp_address[1]} "
                f"(http {runtime.http_address[0]}:{runtime.http_address[1]})",
                flush=True,
            )
        await task

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
