"""The network-facing service runtime.

Wraps one :class:`~repro.core.server.LocationAwareServer` behind a real
socket transport: an asyncio TCP listener speaking the line-delimited
JSON protocol of :mod:`repro.service.protocol`, a cycle loop that
drains queued uplinks, runs one bulk evaluation, and flushes every
session's links to the wire, plus a minimal HTTP plane (``/state``,
``/metrics``, ``/healthz``) fed by the stack's own
:class:`~repro.obs.MetricsRegistry`.

Design points:

* **The link layer stays authoritative.**  Sessions never bypass
  :class:`~repro.net.ClientLink`: every downlink message goes through
  ``link.deliver`` (budgets, faults, connectivity) and only what
  reaches the inbox is flushed to the socket.  The chaos
  :class:`~repro.faults.FaultInjector` and the
  :class:`~repro.check.ConsistencyOracle` therefore work against live
  connections exactly as they do in-process.
* **Cycles are the unit of work.**  Uplink ops queue in a bounded
  per-session backlog (:mod:`repro.service.admission`) and are applied
  at the next cycle boundary in global arrival order, so one evaluation
  sees a consistent batch and the engine is never mutated mid-cycle.
  ``evaluate_cycle`` runs synchronously on the event loop — the cycle
  *is* the server's work; there is nothing to overlap it with.
* **Protocol completeness on the wire.**  The runtime subscribes to the
  server's observer hooks and emits ``wakeup_begin`` / ``wakeup_end`` /
  ``committed`` markers, each preceded by a flush of the affected
  client's inbox, so a wire client can maintain exactly the state the
  oracle's mirror holds (roll back to committed on wakeup, commit on
  acknowledgement).

Run it standalone with ``python -m repro.service`` or embedded via
:meth:`ServiceRuntime.start` (background thread, ephemeral ports) — the
tests, benchmark, and load driver use the latter.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field

from repro.check import ConsistencyOracle
from repro.core.server import LocationAwareServer
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.geometry import Point, Rect, Velocity
from repro.obs import FlightRecorder
from repro.obs.export import prometheus_text
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.protocol import (
    IMMEDIATE_OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    busy_op,
    decode_line,
    error_op,
    reject_op,
)
from repro.service.session import ClientSession

#: readline limit: uplink lines are small, but recovery ``answer``
#: downlinks (and symmetric test traffic) can carry large oid lists.
_LINE_LIMIT = 1 << 20


@dataclass(slots=True)
class ServiceConfig:
    """Everything one runtime needs to come up."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral; read back from tcp_address
    http_port: int = 0
    #: Seconds between automatic evaluation cycles; 0 disables the
    #: timer — cycles then run only on explicit ``tick`` control ops
    #: (the load driver's lock-step mode).
    cycle_interval: float = 0.0
    grid_size: int = 64
    pipeline: str = "cell-batched"
    parallelism: object = None
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Attach a differential consistency oracle to every session.
    oracle: bool = False
    #: Install a seeded chaos plan on the live transport.
    fault_plan: FaultPlan | None = None
    #: Arm the flight recorder for the whole stack.
    recorder: FlightRecorder | None = None


class ServiceRuntime:
    """One live deployment: sockets in front, the engine behind."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        server: LocationAwareServer | None = None,
    ):
        self.config = config or ServiceConfig()
        self.server = server or LocationAwareServer(
            grid_size=self.config.grid_size,
            pipeline=self.config.pipeline,
            parallelism=self.config.parallelism,
            recorder=self.config.recorder,
        )
        self.registry = self.server.registry
        self.admission = AdmissionController(
            self.config.admission, self.registry
        )
        self.oracle: ConsistencyOracle | None = (
            ConsistencyOracle(self.server) if self.config.oracle else None
        )
        self.injector: FaultInjector | None = None
        if self.config.fault_plan is not None:
            self.injector = FaultInjector(self.server, self.config.fault_plan)
            self.injector.install()
        self.server.add_observer(self)

        self.cycle_count = 0
        self.last_cycle: dict = {}
        self._sessions: dict[int, ClientSession] = {}
        self._next_session_id = 1
        #: client_id -> owning session (wire routing).
        self._client_session: dict[int, ClientSession] = {}
        #: Global FIFO of (session, op) drained at each cycle boundary.
        self._pending: list[tuple[ClientSession, dict]] = []

        self._m_cycles = self.registry.counter("service_cycles_total")
        self._m_uplink_errors = self.registry.counter(
            "service_uplink_errors_total"
        )
        self._m_backlog = self.registry.gauge("service_uplink_backlog")
        self._m_flushed = self.registry.counter(
            "service_downlink_flushed_total"
        )
        self._m_ops: dict[str, object] = {}

        self.tcp_address: tuple[str, int] | None = None
        self.http_address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self._http_server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def serve(self) -> None:
        """Bind both listeners and run until :meth:`request_stop`."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._tcp_server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=_LINE_LIMIT,
        )
        self.tcp_address = self._tcp_server.sockets[0].getsockname()[:2]
        self._http_server = await asyncio.start_server(
            self._handle_http, self.config.host, self.config.http_port
        )
        self.http_address = self._http_server.sockets[0].getsockname()[:2]
        cycle_task = None
        if self.config.cycle_interval > 0:
            cycle_task = asyncio.ensure_future(self._cycle_loop())
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            if cycle_task is not None:
                cycle_task.cancel()
            self._tcp_server.close()
            self._http_server.close()
            await self._tcp_server.wait_closed()
            await self._http_server.wait_closed()
            for session in list(self._sessions.values()):
                self._close_session(session)
            self.server.close()

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (thread-safe)."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    # -- background-thread embedding -----------------------------------

    def start(self, timeout: float = 10.0) -> "ServiceRuntime":
        """Run :meth:`serve` on a daemon thread; returns once bound."""
        if self._thread is not None:
            raise RuntimeError("runtime already started")
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.serve()),
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service runtime failed to come up")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "ServiceRuntime":
        # Tolerate ``with ServiceRuntime(...).start() as runtime``.
        return self if self._thread is not None else self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # TCP sessions
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not self.admission.admit_session():
            writer.write(
                json.dumps(
                    reject_op("sessions", self.config.admission.retry_after)
                ).encode()
                + b"\n"
            )
            try:
                await writer.drain()
            except ConnectionError:
                pass
            writer.close()
            return
        peername = writer.get_extra_info("peername")
        session = ClientSession(
            self._next_session_id, writer, peer=str(peername)
        )
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        try:
            while not session.closed:
                try:
                    line = await reader.readline()
                except (
                    ConnectionError,
                    asyncio.LimitOverrunError,
                    # Loop teardown cancels reader tasks; exit quietly
                    # through the normal cleanup path.
                    asyncio.CancelledError,
                ):
                    break
                if not line:
                    break
                session.lines_in += 1
                try:
                    op = decode_line(line)
                except ProtocolError as exc:
                    session.send(error_op(exc.code, exc.detail))
                    self._m_uplink_errors.inc()
                    continue
                name = op["op"]
                self._count_op(name)
                if name == "bye":
                    break
                if name in IMMEDIATE_OPS:
                    await self._handle_immediate(session, op)
                else:
                    if not self.admission.admit_uplink(session.backlog):
                        session.send(
                            busy_op(self.config.admission.retry_after)
                        )
                        continue
                    session.backlog += 1
                    self._pending.append((session, op))
                    self._m_backlog.set(len(self._pending))
        finally:
            self._close_session(session)
            self.admission.release_session()

    def _close_session(self, session: ClientSession) -> None:
        if session.session_id in self._sessions:
            del self._sessions[session.session_id]
        session.mark_closed()
        # The connection is the client's physical channel: losing it is
        # an outage — the links go dark (messages lost, not queued)
        # until the client reconnects and wakes up, exactly the paper's
        # out-of-sync model.
        for client_id in session.client_ids:
            try:
                self.server.link_of(client_id).disconnect()
            except KeyError:
                pass
            self._client_session.pop(client_id, None)
        try:
            session.writer.close()
        except RuntimeError:
            pass

    # -- immediate (control-plane) ops ---------------------------------

    async def _handle_immediate(
        self, session: ClientSession, op: dict
    ) -> None:
        name = op["op"]
        if name == "hello":
            self._handle_hello(session, op)
        elif name == "ping":
            session.send({"op": "pong", "protocol": PROTOCOL_VERSION})
        elif name == "tick":
            now = op.get("now")
            summary = self.run_cycle(
                float(now) if now is not None else None
            )
            # Reply before draining peers: a peer session that is not
            # reading yet (the load driver's lock-step workers) must not
            # hold the control session's cycle acknowledgement hostage.
            session.send({"op": "cycle", **summary})
            await self._drain_writers()
        elif name == "query_answer":
            qid = int(op["qid"])
            if qid not in self.server.engine.queries:
                session.send(error_op("unknown_query", f"no query {qid}"))
                return
            session.send(
                {
                    "op": "answer_state",
                    "qid": qid,
                    "oids": sorted(self.server.engine.answer_of(qid)),
                }
            )
        elif name == "chaos_off":
            if self.injector is not None:
                self.injector.uninstall()
                self.injector = None
            session.send({"op": "chaos", "active": False})
            await self._drain_writers()

    def _handle_hello(self, session: ClientSession, op: dict) -> None:
        client_id = int(op["client"])
        if "sync" in op:
            session.sync = bool(op["sync"])
        owner = self._client_session.get(client_id)
        if owner is not None and not owner.closed and owner is not session:
            session.send(
                error_op(
                    "client_busy",
                    f"client {client_id} is bound to another live session",
                )
            )
            return
        try:
            self.server.link_of(client_id)
            known = True
        except KeyError:
            known = False
        if known:
            # A reconnect: rebind the wire, but the link stays dark
            # until the client sends its wakeup — resynchronisation is
            # the client's move in the out-of-sync protocol.
            resumed = True
        else:
            if not self.admission.admit_client():
                session.send(
                    reject_op("clients", self.config.admission.retry_after)
                )
                return
            budget = op.get("budget")
            self.server.register_client(
                client_id,
                downlink_budget=int(budget) if budget is not None else None,
            )
            if self.oracle is not None:
                self.oracle.watch_client(client_id)
            if self.injector is not None:
                self.injector.bind_client(client_id)
            resumed = False
        session.client_ids.add(client_id)
        self._client_session[client_id] = session
        session.send(
            {
                "op": "welcome",
                "client": client_id,
                "session": session.session_id,
                "cycle": self.cycle_count,
                "resumed": resumed,
                "protocol": PROTOCOL_VERSION,
            }
        )

    # ------------------------------------------------------------------
    # The cycle loop
    # ------------------------------------------------------------------

    async def _cycle_loop(self) -> None:
        """Timer-paced cycles (the TrafficFlow-style free-running mode)."""
        while self._stop_event is not None and not self._stop_event.is_set():
            await asyncio.sleep(self.config.cycle_interval)
            self.run_cycle(None)
            await self._drain_writers()

    def run_cycle(self, now: float | None = None) -> dict:
        """One full service cycle; returns a JSON-ready summary.

        Order mirrors the in-process chaos harness: cycle-level faults
        first, then the uplink batch in arrival order, then the
        oracle-bracketed evaluation, then the downlink flush.
        """
        cycle = self.cycle_count
        if now is None:
            now = float(cycle + 1)
        if self.injector is not None:
            self.injector.begin_cycle(cycle)
        applied, errors = self._drain_uplinks()
        if self.oracle is not None:
            self.oracle.begin_cycle()
        result = self.server.evaluate_cycle(now)
        divergences_now = 0
        if self.oracle is not None:
            divergences_now = len(self.oracle.end_cycle(cycle, result.updates))
        flushed = self._flush_sessions(cycle, now)
        self.cycle_count += 1
        self._m_cycles.inc()
        self.last_cycle = {
            "cycle": cycle,
            "now": now,
            "uplinks_applied": applied,
            "uplink_errors": errors,
            "delivered_updates": result.delivered_updates,
            "dropped_updates": result.dropped_updates,
            "incremental_bytes": result.incremental_bytes,
            "flushed_messages": flushed,
            "divergences": divergences_now,
            "divergences_total": (
                len(self.oracle.divergences) if self.oracle else None
            ),
        }
        return self.last_cycle

    def _drain_uplinks(self) -> tuple[int, int]:
        """Apply every queued op in global arrival order."""
        pending, self._pending = self._pending, []
        applied = 0
        errors = 0
        for session, op in pending:
            session.backlog = max(0, session.backlog - 1)
            if session.closed:
                continue
            try:
                self._apply_op(op)
                applied += 1
            except (KeyError, ValueError, ProtocolError) as exc:
                errors += 1
                self._m_uplink_errors.inc()
                session.send(error_op("bad_op", f"{op.get('op')}: {exc}"))
        self._m_backlog.set(0)
        return applied, errors

    def _apply_op(self, op: dict) -> None:
        server = self.server
        name = op["op"]
        if name == "report":
            server.receive_object_report(
                int(op["oid"]),
                Point(float(op["x"]), float(op["y"])),
                float(op["t"]),
                Velocity(float(op.get("vx", 0.0)), float(op.get("vy", 0.0))),
            )
        elif name == "move":
            qid = int(op["qid"])
            # Validate up front: a buffered move for an unknown query
            # would fail the whole evaluation batch, not just this op.
            server.client_of(qid)
            kind = op["kind"]
            t = float(op["t"])
            if kind == "range":
                server.receive_range_query_move(qid, self._rect_of(op), t)
            elif kind == "knn":
                server.receive_knn_query_move(
                    qid, Point(float(op["cx"]), float(op["cy"])), t
                )
            else:
                server.receive_predictive_query_move(
                    qid, self._rect_of(op), t
                )
        elif name == "register":
            client_id = int(op["client"])
            qid = int(op["qid"])
            kind = op["kind"]
            t = float(op.get("t", 0.0))
            if kind == "range":
                server.register_range_query(
                    client_id, qid, self._rect_of(op), t
                )
            elif kind == "knn":
                server.register_knn_query(
                    client_id,
                    qid,
                    Point(float(op["cx"]), float(op["cy"])),
                    int(op.get("k", 1)),
                    t,
                )
            else:
                server.register_predictive_query(
                    client_id,
                    qid,
                    self._rect_of(op),
                    float(op.get("horizon", 0.0)),
                    t,
                )
        elif name == "commit":
            server.receive_commit(int(op["qid"]))
        elif name == "wakeup":
            server.receive_wakeup(int(op["client"]))
        elif name == "remove":
            server.remove_object(int(op["oid"]))
        elif name == "unregister":
            server.unregister_query(int(op["qid"]))
        else:  # pragma: no cover - decode_line already rejects these
            raise ProtocolError("bad_op", f"unroutable op {name!r}")

    @staticmethod
    def _rect_of(op: dict) -> Rect:
        try:
            return Rect(
                float(op["minx"]),
                float(op["miny"]),
                float(op["maxx"]),
                float(op["maxy"]),
            )
        except KeyError as exc:
            raise ProtocolError(
                "missing_field", f"rect op missing {exc.args[0]!r}"
            ) from exc

    # -- downlink flushing ---------------------------------------------

    def _flush_sessions(self, cycle: int, now: float) -> int:
        flushed = 0
        server = self.server
        for session in list(self._sessions.values()):
            if session.closed:
                continue
            for client_id in session.client_ids:
                try:
                    link = server.link_of(client_id)
                except KeyError:
                    continue
                if link._inbox:
                    flushed += session.flush_link(link)
            if session.sync:
                session.send({"op": "cycle_end", "cycle": cycle, "now": now})
        if flushed:
            self._m_flushed.inc(flushed)
        return flushed

    async def _drain_writers(self) -> None:
        for session in list(self._sessions.values()):
            if session.closed:
                continue
            try:
                await asyncio.wait_for(session.writer.drain(), timeout=30.0)
            except (ConnectionError, RuntimeError, asyncio.TimeoutError):
                # A peer that stopped reading cannot be allowed to stall
                # the cycle loop for everyone else.
                session.mark_closed()

    # -- server protocol observers (wire markers) ----------------------

    def _flush_then(self, client_id: int, marker: dict) -> None:
        """Flush a client's pending inbox, then emit ``marker``.

        The flush preserves wire order: everything the link accepted
        before the protocol event precedes the event's marker, so the
        wire client's rollback/commit lands on the same state the
        oracle mirror computes.
        """
        session = self._client_session.get(client_id)
        if session is None or session.closed:
            return
        try:
            link = self.server.link_of(client_id)
        except KeyError:
            return
        if link._inbox:
            self._m_flushed.inc(session.flush_link(link))
        session.send(marker)

    def on_wakeup_begin(self, client_id: int) -> None:
        self._flush_then(
            client_id, {"op": "wakeup_begin", "client": client_id}
        )

    def on_wakeup_end(self, client_id: int) -> None:
        self._flush_then(client_id, {"op": "wakeup_end", "client": client_id})

    def on_commit(self, qid: int) -> None:
        try:
            client_id = self.server.client_of(qid)
        except KeyError:
            return
        self._flush_then(client_id, {"op": "committed", "qid": qid})

    # ------------------------------------------------------------------
    # HTTP plane
    # ------------------------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1").split()
            method = parts[0] if parts else ""
            path = parts[1] if len(parts) > 1 else "/"
            if method != "GET":
                self._http_reply(writer, 405, "text/plain", b"method not allowed")
            elif path == "/metrics":
                body = prometheus_text(self.registry).encode()
                self._http_reply(
                    writer, 200, "text/plain; version=0.0.4", body
                )
            elif path == "/state":
                body = json.dumps(self.state(), sort_keys=True).encode()
                self._http_reply(writer, 200, "application/json", body)
            elif path == "/healthz":
                self._http_reply(writer, 200, "text/plain", b"ok")
            else:
                self._http_reply(writer, 404, "text/plain", b"not found")
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    @staticmethod
    def _http_reply(
        writer: asyncio.StreamWriter, status: int, ctype: str, body: bytes
    ) -> None:
        reason = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        writer.write(body)

    def state(self) -> dict:
        """The ``/state`` document: one JSON snapshot of the deployment."""
        engine = self.server.engine
        return {
            "protocol": PROTOCOL_VERSION,
            "cycle": self.cycle_count,
            "sessions": self.admission.sessions_active,
            "clients": self.admission.clients_active,
            "queries": len(engine.queries),
            "objects": len(engine.objects),
            "pending_uplinks": len(self._pending),
            "admission_rejections": self.admission.rejection_counts(),
            "oracle": (
                {
                    "attached": True,
                    "divergences": len(self.oracle.divergences),
                }
                if self.oracle is not None
                else {"attached": False}
            ),
            "chaos_active": self.injector is not None,
            "savings_ratio": self.server.savings_ratio(),
            "last_cycle": self.last_cycle,
        }

    # -- small helpers -------------------------------------------------

    def _count_op(self, name: str) -> None:
        counter = self._m_ops.get(name)
        if counter is None:
            counter = self._m_ops[name] = self.registry.counter(
                "service_uplink_ops_total", labels={"o": name}
            )
        counter.inc()
