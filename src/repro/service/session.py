"""One accepted connection and the logical clients it carries.

A session is deliberately thin: it owns the write half of the socket,
the set of client ids registered through it, and per-session wire
accounting.  All protocol *decisions* (admission, op routing, cycle
orchestration) live in :class:`~repro.service.runtime.ServiceRuntime`;
the session only knows how to put encoded lines on the wire and how to
drain its clients' links into the socket.

One session may multiplex many logical clients — the load driver runs
tens of thousands of simulated clients over a handful of sessions —
which is why downlink flushing walks ``client_ids`` rather than
assuming one link per connection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.service.protocol import downlink_op, encode

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from repro.net.link import ClientLink


class ClientSession:
    """Wire state for one accepted connection."""

    __slots__ = (
        "session_id",
        "writer",
        "peer",
        "sync",
        "client_ids",
        "backlog",
        "closed",
        "lines_in",
        "lines_out",
    )

    def __init__(
        self,
        session_id: int,
        writer: "asyncio.StreamWriter",
        peer: str = "?",
    ):
        self.session_id = session_id
        self.writer = writer
        self.peer = peer
        #: True once a ``hello`` asked for ``cycle_end`` markers.
        self.sync = False
        self.client_ids: set[int] = set()
        #: Uplink ops currently queued for the next cycle drain.
        self.backlog = 0
        self.closed = False
        self.lines_in = 0
        self.lines_out = 0

    # -- wire output ---------------------------------------------------

    def send(self, obj: dict) -> None:
        """Queue one encoded line on the transport (no await: asyncio
        buffers; the runtime drains writers at cycle boundaries)."""
        if self.closed:
            return
        try:
            self.writer.write(encode(obj))
            self.lines_out += 1
        except (ConnectionError, RuntimeError):
            self.closed = True

    def flush_link(self, link: "ClientLink") -> int:
        """Drain one client link's inbox onto the wire, in inbox order.

        The link layer already decided delivery (budget, faults,
        connectivity); whatever reached the inbox is what the wire
        client receives.  Returns the number of messages flushed.
        """
        messages = link.drain()
        for message in messages:
            self.send(downlink_op(message))
        return len(messages)

    def mark_closed(self) -> None:
        self.closed = True

    def describe(self) -> dict:
        return {
            "session": self.session_id,
            "peer": self.peer,
            "sync": self.sync,
            "clients": len(self.client_ids),
            "backlog": self.backlog,
            "lines_in": self.lines_in,
            "lines_out": self.lines_out,
        }
