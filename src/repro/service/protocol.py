"""The line-delimited JSON wire protocol of the live service.

One request or event per line, UTF-8, compact JSON, ``\\n``-terminated —
the shape a ``socket.makefile()`` / ``asyncio.StreamReader`` pair reads
and writes without framing code.  Every object carries an ``"op"`` key;
everything else is op-specific.

Uplink (client → server)
------------------------

========== ============================================================
op          fields
========== ============================================================
hello       ``client`` (int), optional ``budget`` (bytes/cycle →
            :class:`~repro.net.ThrottledLink`), optional ``sync``
            (bool: session wants ``cycle_end`` markers)
report      ``client``, ``oid``, ``x``, ``y``, ``t``, optional
            ``vx``/``vy``
remove      ``oid``
register    ``client``, ``qid``, ``kind`` (``range``/``knn``/
            ``predictive``), region or center fields, ``k``,
            ``horizon``, optional ``t``
move        ``qid``, ``kind``, region/center fields, ``t``
unregister  ``qid``
commit      ``qid``
wakeup      ``client``
tick        optional ``now`` — run one evaluation cycle (control)
query_answer ``qid`` — read back the live engine answer (control)
chaos_off   uninstall the fault plan, wake dark clients (control)
ping        liveness probe
bye         orderly close
========== ============================================================

Downlink (server → client)
--------------------------

``welcome``/``reject`` answer ``hello``; ``update`` and ``answer``
carry the engine's incremental stream and full-answer recoveries;
``wakeup_begin``/``wakeup_end``/``committed`` mirror the server's
protocol observer events so a wire client can maintain exactly the
state the consistency oracle's mirror holds; ``cycle_end`` marks the
end of one cycle's flush on sync sessions; ``busy`` (with
``retry_after``) is the backpressure verdict; ``error`` reports a bad
op without closing the session.
"""

from __future__ import annotations

import json

from repro.net.messages import (
    FullAnswerMessage,
    Message,
    UpdateMessage,
)

PROTOCOL_VERSION = 1

#: Ops a client may send.  ``tick``/``query_answer``/``chaos_off`` are
#: control-plane ops (the load driver and tests pace cycles with them).
UPLINK_OPS = frozenset(
    {
        "hello",
        "report",
        "remove",
        "register",
        "move",
        "unregister",
        "commit",
        "wakeup",
        "tick",
        "query_answer",
        "chaos_off",
        "ping",
        "bye",
    }
)

#: Ops handled immediately by the reader (admission, control plane,
#: liveness); everything else queues for the next evaluation cycle.
IMMEDIATE_OPS = frozenset(
    {"hello", "tick", "query_answer", "chaos_off", "ping", "bye"}
)

_REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "hello": ("client",),
    "report": ("client", "oid", "x", "y", "t"),
    "remove": ("oid",),
    "register": ("client", "qid", "kind"),
    "move": ("qid", "kind", "t"),
    "unregister": ("qid",),
    "commit": ("qid",),
    "wakeup": ("client",),
    "query_answer": ("qid",),
}

QUERY_KINDS = ("range", "knn", "predictive")


class ProtocolError(ValueError):
    """A malformed line or op; ``code`` travels on the error response."""

    def __init__(self, code: str, detail: str):
        super().__init__(detail)
        self.code = code
        self.detail = detail


def encode(obj: dict) -> bytes:
    """One wire line: compact JSON plus the terminating newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes | str) -> dict:
    """Parse and validate one uplink line into an op dict."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty", "empty line")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_json", f"not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("bad_json", "line must be a JSON object")
    op = obj.get("op")
    if op not in UPLINK_OPS:
        raise ProtocolError("bad_op", f"unknown op {op!r}")
    missing = [
        field for field in _REQUIRED_FIELDS.get(op, ()) if field not in obj
    ]
    if missing:
        raise ProtocolError(
            "missing_field", f"op {op!r} missing fields {missing}"
        )
    if op in ("register", "move") and obj["kind"] not in QUERY_KINDS:
        raise ProtocolError(
            "bad_kind", f"kind must be one of {QUERY_KINDS}, got {obj['kind']!r}"
        )
    return obj


def downlink_op(message: Message) -> dict:
    """The wire form of one link-delivered message."""
    if isinstance(message, UpdateMessage):
        return {
            "op": "update",
            "qid": message.qid,
            "oid": message.oid,
            "sign": message.sign,
        }
    if isinstance(message, FullAnswerMessage):
        return {
            "op": "answer",
            "qid": message.qid,
            "oids": sorted(message.oids),
        }
    raise ProtocolError(
        "bad_downlink", f"unencodable downlink message {type(message).__name__}"
    )


def error_op(code: str, detail: str) -> dict:
    return {"op": "error", "code": code, "detail": detail}


def busy_op(retry_after: float) -> dict:
    return {"op": "busy", "retry_after": retry_after}


def reject_op(reason: str, retry_after: float) -> dict:
    return {"op": "reject", "reason": reason, "retry_after": retry_after}
