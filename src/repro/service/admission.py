"""Admission control and uplink backpressure policy.

The paper's server degrades under congestion by shedding *downlink*
bytes (throttled links); a network-facing runtime must also protect the
*uplink* path — a server that accepts every connection and buffers every
report without bound falls over exactly when it is most loaded.  The
:class:`AdmissionController` is the single policy point:

* **sessions** — at most ``max_sessions`` concurrent connections; the
  surplus connection is told to go away (``reject`` + ``retry_after``)
  before it costs anything.
* **clients** — at most ``max_clients`` registered logical clients
  across all sessions (a mux session may carry thousands).
* **backlog** — at most ``max_backlog`` uplink ops queued per session
  between evaluation cycles; beyond it the op is dropped and the client
  told ``busy`` + ``retry_after`` (bounded queue, reject-with-retry —
  never silent unbounded buffering).

Every verdict is exported: ``service_sessions_active`` /
``service_clients_active`` gauges and the
``service_admission_rejections_total{reason=...}`` counter feed the
``/metrics`` endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import MetricsRegistry

#: Rejection reasons (the ``reason`` label on the rejection counter).
REASON_SESSIONS = "sessions"
REASON_CLIENTS = "clients"
REASON_BACKPRESSURE = "backpressure"


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Capacity limits for one runtime."""

    max_sessions: int = 1024
    max_clients: int = 200_000
    #: Uplink ops queued per session between cycles before ``busy``.
    max_backlog: int = 65_536
    #: Seconds a rejected/busy client should wait before retrying.
    retry_after: float = 1.0


class AdmissionController:
    """Tracks live capacity and renders admit/reject verdicts."""

    def __init__(self, config: AdmissionConfig, registry: MetricsRegistry):
        self.config = config
        self.sessions_active = 0
        self.clients_active = 0
        self._m_sessions = registry.gauge("service_sessions_active")
        self._m_clients = registry.gauge("service_clients_active")
        self._rejections = {
            reason: registry.counter(
                "service_admission_rejections_total",
                labels={"reason": reason},
            )
            for reason in (
                REASON_SESSIONS,
                REASON_CLIENTS,
                REASON_BACKPRESSURE,
            )
        }

    # -- sessions ------------------------------------------------------

    def admit_session(self) -> bool:
        if self.sessions_active >= self.config.max_sessions:
            self.reject(REASON_SESSIONS)
            return False
        self.sessions_active += 1
        self._m_sessions.set(self.sessions_active)
        return True

    def release_session(self) -> None:
        self.sessions_active = max(0, self.sessions_active - 1)
        self._m_sessions.set(self.sessions_active)

    # -- clients -------------------------------------------------------

    def admit_client(self) -> bool:
        if self.clients_active >= self.config.max_clients:
            self.reject(REASON_CLIENTS)
            return False
        self.clients_active += 1
        self._m_clients.set(self.clients_active)
        return True

    # -- uplink backlog ------------------------------------------------

    def admit_uplink(self, session_backlog: int) -> bool:
        """One more op for a session already holding ``session_backlog``."""
        if session_backlog >= self.config.max_backlog:
            self.reject(REASON_BACKPRESSURE)
            return False
        return True

    # -- accounting ----------------------------------------------------

    def reject(self, reason: str) -> None:
        self._rejections[reason].inc()

    def rejection_counts(self) -> dict[str, int]:
        return {
            reason: int(counter.value)
            for reason, counter in self._rejections.items()
        }
