"""Multiplexed load driver for the live service runtime.

Simulates tens of thousands of logical wire clients from a handful of
OS threads: each :class:`_SessionWorker` owns one TCP connection that
multiplexes a partition of the client population, and the driver's main
thread paces evaluation cycles over a separate control connection
(``tick`` ops), so the whole run is lock-step and deterministic.

The traffic is a generator replay: a
:class:`~repro.generator.MovingObjectSimulator` over a Manhattan-style
road network produces the object reports, and a
:class:`~repro.generator.WorkloadGenerator` the query population
(stationary and carried range / k-NN / predictive queries).  Workers
maintain a client-side mirror of every answer from the downlink stream
— exactly what the consistency oracle's mirrors hold server-side — and
the driver closes the loop by reading back a sample of live engine
answers (``query_answer``) and diffing them against the wire mirrors.

Phases per cycle (one reusable barrier, four waits):

1. main fills each worker's outbox from the simulator;
2. workers write their outboxes to the wire;
3. main sends ``tick`` and receives the cycle summary;
4. workers read downlink until the cycle's ``cycle_end`` marker.

Run standalone::

    python -m repro.service.loadgen --clients 10000 --cycles 20 --self-host
"""

from __future__ import annotations

import json
import socket
import threading
from collections import Counter
from dataclasses import dataclass, field

from repro.generator import (
    MovingObjectSimulator,
    WorkloadConfig,
    WorkloadGenerator,
    manhattan_city,
)
from repro.service.protocol import encode

#: Query ids start here so they never collide with object ids.
FIRST_QID = 1_000_000

_BARRIER_TIMEOUT = 120.0


@dataclass(slots=True)
class LoadConfig:
    """One load run: population sizes, pacing, verification."""

    clients: int = 10_000
    #: Reporting objects (object ``oid`` is reported by client ``oid``);
    #: the remaining clients are idle listeners — realistic fleets are
    #: mostly quiet, and the oracle's per-cycle snapshot check is
    #: O(queries x objects), which bounds how many reporters make sense.
    objects: int = 2_000
    range_queries: int = 120
    knn_queries: int = 30
    predictive_queries: int = 20
    #: Fraction of queries carried by a moving object (they emit
    #: ``move`` ops whenever their carrier reports).
    moving_fraction: float = 0.3
    query_side: float = 0.05
    k: int = 4
    horizon: float = 5.0
    cycles: int = 20
    #: Worker threads == TCP sessions carrying the client population.
    sessions: int = 4
    #: Fraction of moved objects that phone home each cycle.
    report_fraction: float = 0.35
    dt: float = 1.0
    #: Every Nth cycle, stationary range owners acknowledge (commit).
    commit_every: int = 4
    seed: int = 0
    #: Queries sampled for the end-of-run mirror-vs-engine diff.
    verify_samples: int = 32

    def __post_init__(self) -> None:
        if self.objects > self.clients:
            raise ValueError(
                f"objects ({self.objects}) must be <= clients "
                f"({self.clients}): client oid reports object oid"
            )
        if self.sessions < 1:
            raise ValueError("sessions must be >= 1")


class _SessionWorker(threading.Thread):
    """One TCP connection multiplexing a partition of the clients."""

    def __init__(
        self,
        index: int,
        address: tuple[str, int],
        qids_of_client: dict[int, list[int]],
        barrier: threading.Barrier,
        stop_flag: threading.Event,
    ):
        super().__init__(name=f"loadgen-{index}", daemon=True)
        self.index = index
        self.address = address
        #: client -> its qids (this partition only); wakeup rollback
        #: needs to know which mirrors belong to a waking client.
        self.qids_of_client = qids_of_client
        self.barrier = barrier
        self.stop_flag = stop_flag
        self.outbox: list[dict] = []
        #: qid -> the answer set proven on the wire.
        self.mirrors: dict[int, set[int]] = {}
        self.committed: dict[int, set[int]] = {}
        self.counts: Counter[str] = Counter()
        self.errors: list[dict] = []
        self.failure: str | None = None

    def run(self) -> None:  # pragma: no cover - exercised via LoadDriver
        try:
            with socket.create_connection(self.address, timeout=60) as sock:
                wire = sock.makefile("rwb")
                while True:
                    self.barrier.wait(_BARRIER_TIMEOUT)  # A: outbox ready
                    if self.stop_flag.is_set():
                        wire.write(encode({"op": "bye"}))
                        wire.flush()
                        return
                    for op in self.outbox:
                        wire.write(encode(op))
                        self.counts["uplink_lines"] += 1
                    # The trailing ping's pong proves the server has
                    # consumed (queued) every line above it — only then
                    # may the driver tick the cycle.
                    wire.write(encode({"op": "ping"}))
                    wire.flush()
                    self.outbox = []
                    self._read_until(wire, "pong")
                    self.barrier.wait(_BARRIER_TIMEOUT)  # B: consumed
                    self.barrier.wait(_BARRIER_TIMEOUT)  # C: cycle ran
                    self._read_until(wire, "cycle_end")
                    self.barrier.wait(_BARRIER_TIMEOUT)  # D: read done
        except Exception as exc:  # noqa: BLE001 - reported to the driver
            self.failure = f"{type(exc).__name__}: {exc}"
            self.barrier.abort()

    # -- downlink mirror maintenance -----------------------------------

    def _read_until(self, wire, terminal: str) -> None:
        while True:
            line = wire.readline()
            if not line:
                raise ConnectionError("server closed the session")
            op = json.loads(line)
            self.counts["downlink_lines"] += 1
            name = op["op"]
            if name == terminal:
                return
            self._apply_downlink(name, op)

    def _apply_downlink(self, name: str, op: dict) -> None:
        if name == "update":
            mirror = self.mirrors.setdefault(op["qid"], set())
            if op["sign"] > 0:
                mirror.add(op["oid"])
            else:
                mirror.discard(op["oid"])
            self.counts["updates"] += 1
        elif name == "answer":
            self.mirrors[op["qid"]] = set(op["oids"])
            self.counts["answers"] += 1
        elif name == "committed":
            self.committed[op["qid"]] = set(
                self.mirrors.get(op["qid"], ())
            )
            self.counts["committed"] += 1
        elif name == "wakeup_begin":
            # The paper's out-of-sync model: a waking client can trust
            # only its committed base until recovery re-delivers.
            for qid in self.qids_of_client.get(op["client"], ()):
                self.mirrors[qid] = set(self.committed.get(qid, ()))
            self.counts["wakeups"] += 1
        elif name in ("wakeup_end", "welcome", "pong", "chaos"):
            self.counts[name] += 1
        elif name == "busy":
            self.counts["busy"] += 1
        elif name in ("error", "reject"):
            self.counts["errors"] += 1
            if len(self.errors) < 10:
                self.errors.append(op)
        else:
            self.counts[f"unknown:{name}"] += 1


class _ControlLink:
    """The driver's own session: ticks cycles, reads back answers."""

    def __init__(self, address: tuple[str, int]):
        self.sock = socket.create_connection(address, timeout=60)
        self.wire = self.sock.makefile("rwb")

    def request(self, op: dict) -> dict:
        self.wire.write(encode(op))
        self.wire.flush()
        line = self.wire.readline()
        if not line:
            raise ConnectionError("server closed the control session")
        return json.loads(line)

    def close(self) -> None:
        try:
            self.wire.write(encode({"op": "bye"}))
            self.wire.flush()
        except (OSError, ValueError):
            pass
        self.sock.close()


class LoadDriver:
    """Replays a generator workload against a live service address."""

    def __init__(self, address: tuple[str, int], config: LoadConfig):
        self.address = address
        self.config = config
        self.sim = MovingObjectSimulator(
            manhattan_city(blocks=8),
            object_count=config.objects,
            seed=config.seed,
            route_mode="walk",
        )
        self.gen = WorkloadGenerator(
            WorkloadConfig(
                range_queries=config.range_queries,
                knn_queries=config.knn_queries,
                predictive_queries=config.predictive_queries,
                side=config.query_side,
                k=config.k,
                horizon=config.horizon,
                moving_fraction=config.moving_fraction,
                seed=config.seed,
            ),
            self.sim,
            first_qid=FIRST_QID,
        )
        self.cycle_summaries: list[dict] = []

    # -- partitioning ---------------------------------------------------

    def _worker_of_client(self, client_id: int) -> int:
        return client_id % self.config.sessions

    def _owner_of_qid(self, qid: int) -> int:
        return qid % self.config.clients

    # -- op builders ----------------------------------------------------

    def _register_op(self, spec) -> dict:
        client = self._owner_of_qid(spec.qid)
        op: dict = {
            "op": "register",
            "client": client,
            "qid": spec.qid,
            "kind": spec.kind,
            "t": self.sim.now,
        }
        if spec.kind == "knn":
            op["cx"], op["cy"] = spec.center.x, spec.center.y
            op["k"] = spec.k
        else:
            region = spec.region()
            op.update(
                minx=region.min_x,
                miny=region.min_y,
                maxx=region.max_x,
                maxy=region.max_y,
            )
            if spec.kind == "predictive":
                op["horizon"] = spec.horizon
        return op

    def _move_op(self, spec) -> dict:
        op: dict = {
            "op": "move",
            "qid": spec.qid,
            "kind": spec.kind,
            "t": self.sim.now,
        }
        if spec.kind == "knn":
            op["cx"], op["cy"] = spec.center.x, spec.center.y
        else:
            region = spec.region()
            op.update(
                minx=region.min_x,
                miny=region.min_y,
                maxx=region.max_x,
                maxy=region.max_y,
            )
        return op

    @staticmethod
    def _report_op(report) -> dict:
        return {
            "op": "report",
            "client": report.oid,
            "oid": report.oid,
            "x": report.location.x,
            "y": report.location.y,
            "vx": report.velocity.vx,
            "vy": report.velocity.vy,
            "t": report.t,
        }

    # -- the run --------------------------------------------------------

    def run(self) -> dict:
        cfg = self.config
        barrier = threading.Barrier(cfg.sessions + 1)
        stop_flag = threading.Event()
        partitions: list[dict[int, list[int]]] = [
            {} for _ in range(cfg.sessions)
        ]
        for qid in self.gen.specs:
            client = self._owner_of_qid(qid)
            partitions[self._worker_of_client(client)].setdefault(
                client, []
            ).append(qid)
        workers = [
            _SessionWorker(i, self.address, partitions[i], barrier, stop_flag)
            for i in range(cfg.sessions)
        ]
        for worker in workers:
            worker.start()
        control = _ControlLink(self.address)
        try:
            hello = control.request({"op": "hello", "client": -1})
            if hello["op"] != "welcome":
                raise RuntimeError(f"control hello rejected: {hello}")
            self._round(workers, barrier, self._setup_outboxes(), control)
            stationary = [
                spec.qid
                for spec in self.gen.specs.values()
                if spec.carrier is None and spec.kind == "range"
            ]
            for cycle in range(1, cfg.cycles + 1):
                reports = self.sim.tick(cfg.dt, cfg.report_fraction)
                moved = self.gen.updates_for_moved_objects(
                    [r.oid for r in reports]
                )
                outboxes: list[list[dict]] = [[] for _ in workers]
                for report in reports:
                    outboxes[self._worker_of_client(report.oid)].append(
                        self._report_op(report)
                    )
                for spec in moved:
                    owner = self._owner_of_qid(spec.qid)
                    outboxes[self._worker_of_client(owner)].append(
                        self._move_op(spec)
                    )
                if cfg.commit_every and cycle % cfg.commit_every == 0:
                    for qid in stationary:
                        owner = self._owner_of_qid(qid)
                        outboxes[self._worker_of_client(owner)].append(
                            {"op": "commit", "qid": qid}
                        )
                self._round(workers, barrier, outboxes, control)
            verify = self._verify(control, workers)
        finally:
            stop_flag.set()
            try:
                barrier.wait(_BARRIER_TIMEOUT)
            except threading.BrokenBarrierError:
                pass
            for worker in workers:
                worker.join(timeout=30)
            control.close()
        return self._report(workers, verify)

    def _setup_outboxes(self) -> list[list[dict]]:
        """Round 0: hellos, query registrations, initial reports."""
        cfg = self.config
        outboxes: list[list[dict]] = [[] for _ in range(cfg.sessions)]
        for client in range(cfg.clients):
            outboxes[self._worker_of_client(client)].append(
                {"op": "hello", "client": client, "sync": True}
            )
        # Only the first hello's sync flag matters per session, but the
        # per-client hellos are what register the fleet.
        for spec in self.gen.specs.values():
            owner = self._owner_of_qid(spec.qid)
            outboxes[self._worker_of_client(owner)].append(
                self._register_op(spec)
            )
        for report in self.sim.initial_reports():
            outboxes[self._worker_of_client(report.oid)].append(
                self._report_op(report)
            )
        return outboxes

    def _round(
        self,
        workers: list[_SessionWorker],
        barrier: threading.Barrier,
        outboxes: list[list[dict]],
        control: _ControlLink,
    ) -> None:
        for worker, outbox in zip(workers, outboxes):
            worker.outbox = outbox
        try:
            barrier.wait(_BARRIER_TIMEOUT)  # A
            barrier.wait(_BARRIER_TIMEOUT)  # B: workers sent
            summary = control.request({"op": "tick", "now": self.sim.now})
            if summary.get("op") != "cycle":
                raise RuntimeError(f"tick failed: {summary}")
            self.cycle_summaries.append(summary)
            barrier.wait(_BARRIER_TIMEOUT)  # C
            barrier.wait(_BARRIER_TIMEOUT)  # D: workers read
        except threading.BrokenBarrierError:
            failures = [w.failure for w in workers if w.failure]
            raise RuntimeError(
                f"load worker failed: {failures or 'barrier timeout'}"
            ) from None

    def _verify(
        self, control: _ControlLink, workers: list[_SessionWorker]
    ) -> dict:
        """Diff sampled live engine answers against the wire mirrors."""
        import random

        rng = random.Random(self.config.seed)
        qids = sorted(self.gen.specs)
        sample = rng.sample(qids, min(self.config.verify_samples, len(qids)))
        mirror_of: dict[int, set[int]] = {}
        for worker in workers:
            mirror_of.update(worker.mirrors)
        mismatches = []
        for qid in sample:
            reply = control.request({"op": "query_answer", "qid": qid})
            if reply["op"] != "answer_state":
                mismatches.append({"qid": qid, "error": reply})
                continue
            engine = set(reply["oids"])
            wire = mirror_of.get(qid, set())
            if engine != wire:
                mismatches.append(
                    {
                        "qid": qid,
                        "missing_on_wire": sorted(engine - wire)[:10],
                        "extra_on_wire": sorted(wire - engine)[:10],
                    }
                )
        return {"sampled": len(sample), "mismatches": mismatches}

    def _report(self, workers: list[_SessionWorker], verify: dict) -> dict:
        totals: Counter[str] = Counter()
        for worker in workers:
            totals.update(worker.counts)
        last = self.cycle_summaries[-1] if self.cycle_summaries else {}
        return {
            "clients": self.config.clients,
            "sessions": self.config.sessions,
            "cycles": self.config.cycles,
            "objects": self.config.objects,
            "queries": len(self.gen.specs),
            "counts": dict(totals),
            "worker_errors": [e for w in workers for e in w.errors],
            "divergences_total": last.get("divergences_total"),
            "last_cycle": last,
            "verify": verify,
            "ok": (
                not verify["mismatches"]
                and not any(w.failure for w in workers)
                and totals.get("errors", 0) == 0
                and (last.get("divergences_total") in (None, 0))
            ),
        }


# ----------------------------------------------------------------------
# HTTP scraping (benchmark + CI helpers, stdlib sockets only)
# ----------------------------------------------------------------------


def http_get(address: tuple[str, int], path: str) -> tuple[int, str]:
    """Minimal GET against the runtime's HTTP plane."""
    with socket.create_connection(address, timeout=30) as sock:
        sock.sendall(
            f"GET {path} HTTP/1.1\r\nHost: {address[0]}\r\n"
            "Connection: close\r\n\r\n".encode()
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks).decode("utf-8", errors="replace")
    head, _, body = raw.partition("\r\n\r\n")
    status = int(head.split()[1]) if head.split() else 0
    return status, body


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Replay a generator workload against a live service.",
    )
    parser.add_argument("--connect", default=None, metavar="HOST:PORT")
    parser.add_argument(
        "--self-host",
        action="store_true",
        help="boot an in-process ServiceRuntime (with oracle) to drive",
    )
    parser.add_argument("--clients", type=int, default=10_000)
    parser.add_argument("--objects", type=int, default=2_000)
    parser.add_argument("--cycles", type=int, default=20)
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--range-queries", type=int, default=120)
    parser.add_argument("--knn-queries", type=int, default=30)
    parser.add_argument("--predictive-queries", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if bool(args.connect) == bool(args.self_host):
        parser.error("exactly one of --connect or --self-host is required")

    config = LoadConfig(
        clients=args.clients,
        objects=min(args.objects, args.clients),
        cycles=args.cycles,
        sessions=args.sessions,
        range_queries=args.range_queries,
        knn_queries=args.knn_queries,
        predictive_queries=args.predictive_queries,
        seed=args.seed,
    )
    if args.self_host:
        from repro.service.runtime import ServiceConfig, ServiceRuntime

        with ServiceRuntime(ServiceConfig(oracle=True)) as runtime:
            report = LoadDriver(runtime.tcp_address, config).run()
            report["metrics_scrape"] = http_get(
                runtime.http_address, "/metrics"
            )[0]
    else:
        host, _, port = args.connect.rpartition(":")
        report = LoadDriver((host, int(port)), config).run()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
