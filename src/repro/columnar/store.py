"""Columnar (struct-of-arrays) stores for objects and queries.

The engine's per-object dataclasses are the right shape for scalar
incremental maintenance but the wrong shape for batch kernels: a
containment test over a million (query, object) pairs wants the four
query bounds and the four object coordinates as flat ``float64``
columns, not attribute chases through ``ObjectState.location.x``.

These stores keep that flat mirror **incrementally** — every ingestion
phase of :class:`repro.core.engine.IncrementalEngine` writes through to
them, so building a batch kernel's input is array slicing, never a
rebuild.  Two design rules:

* Columns are stdlib ``array.array`` buffers.  Scalar writes (one
  report, one query move) cost an index assignment; when numpy is
  available the kernels view the very same buffers zero-copy through
  ``np.frombuffer`` — one store serves both backends.  Views must be
  re-taken after any append (``array`` reallocates); the kernels take
  them fresh per batch.
* Rows are dense and unordered, with swap-remove deletion.  An
  identifier's row can change on *any* removal, so row handles are only
  valid between store mutations — the evaluator resolves rows per
  evaluation and caches them keyed on :attr:`ColumnarQueryStore.version`.

Object rows also carry the **previous** coordinates (``old_xs`` /
``old_ys``): the batch membership kernel classifies enter/leave/still
transitions by recomputing prior membership *geometrically* (a range
answer is exactly the set of objects inside the region, so "was a
member" == "old location inside current bounds"), which is what lets
the kernel run without any per-pair membership lookup.  New objects get
NaN old coordinates — every containment test on NaN is False, exactly
the "was not a member of anything" a fresh object needs.

Query rows mirror :mod:`repro.parallel.worker`'s wire descriptors:
``(kind, min_x, min_y, max_x, max_y)`` with zeroed bounds for k-NN and
predictive kinds, so the parallel planner can serve descriptor payloads
straight from this store.

:class:`ColumnarAnswerStore` completes the mirror set: answer
membership as sorted per-query oid arrays, lazily rebuilt from the
live ``set`` objects and explicitly invalidated by the engine whenever
it mutates an answer outside the array paths.  The evaluator's
predictive refresh reads and writes these arrays directly (one
``searchsorted`` delta instead of per-candidate set probes), the
answered sweep derives its k-NN member union from them, and
:meth:`ColumnarAnswerStore.csr` snapshots any qid subset as CSR
offsets + values for batch consumers.
"""

from __future__ import annotations

from array import array
from itertools import repeat

from repro.columnar.backend import numpy_or_none

#: Query-kind codes.  MUST match the wire constants in
#: :mod:`repro.parallel.worker` (which re-declares them because worker
#: modules deliberately import nothing from the package).
KIND_RANGE = 0
KIND_KNN = 1
KIND_PREDICTIVE = 2

_NAN = float("nan")


def _empty_f64_view(np):
    return np.empty(0, dtype=np.float64)


def _f64_view(np, column: array):
    """Zero-copy float64 numpy view over an ``array('d')`` column."""
    if not column:
        return _empty_f64_view(np)
    return np.frombuffer(column, dtype=np.float64)


class ColumnarObjectStore:
    """Parallel arrays of object state: oid, x, y, old x/y, velocity,
    report time, and home cell.

    ``apply_report`` is the single write path for position state (the
    engine calls it from its report-grouping phase), ``remove`` the
    single delete path.  ``row_of`` maps an oid to its current row.
    """

    __slots__ = (
        "oids",
        "xs",
        "ys",
        "old_xs",
        "old_ys",
        "vxs",
        "vys",
        "ts",
        "cells",
        "_row_of",
    )

    def __init__(self) -> None:
        self.oids = array("q")
        self.xs = array("d")
        self.ys = array("d")
        self.old_xs = array("d")
        self.old_ys = array("d")
        self.vxs = array("d")
        self.vys = array("d")
        self.ts = array("d")
        self.cells = array("q")
        self._row_of: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.oids)

    def __contains__(self, oid: int) -> bool:
        return oid in self._row_of

    def row_of(self, oid: int) -> int:
        """The current row of ``oid`` (valid until the next mutation)."""
        return self._row_of[oid]

    def apply_report(
        self,
        oid: int,
        x: float,
        y: float,
        vx: float,
        vy: float,
        t: float,
        cell: int,
    ) -> int:
        """Write one location report through; returns the object's row.

        An existing object's current coordinates become its old
        coordinates; a new object gets NaN old coordinates (member of
        nothing under every containment test).
        """
        row = self._row_of.get(oid)
        if row is None:
            row = len(self.oids)
            self._row_of[oid] = row
            self.oids.append(oid)
            self.xs.append(x)
            self.ys.append(y)
            self.old_xs.append(_NAN)
            self.old_ys.append(_NAN)
            self.vxs.append(vx)
            self.vys.append(vy)
            self.ts.append(t)
            self.cells.append(cell)
        else:
            xs = self.xs
            ys = self.ys
            self.old_xs[row] = xs[row]
            self.old_ys[row] = ys[row]
            xs[row] = x
            ys[row] = y
            self.vxs[row] = vx
            self.vys[row] = vy
            self.ts[row] = t
            self.cells[row] = cell
        return row

    def batch_apply(self, oids, xs, ys, vxs, vys, ts, cells, np=None) -> None:
        """Apply one whole report buffer in a few array passes.

        Equivalent to ``apply_report`` once per element — the oids must
        be **distinct** within the batch (the engine's report buffer is
        a dict, so they are).  Without numpy (``np=None``) this loops
        the scalar path over plain sequences; under numpy the columns
        must be aligned ndarrays (float64 coordinates/velocities/times,
        int64 cells): new rows are bulk-appended via ``frombytes`` and
        existing rows updated by gather/scatter through zero-copy
        ``frombuffer`` views (``array.array`` buffers are writable, so
        scatters write through).
        """
        if np is None:
            apply = self.apply_report
            for i in range(len(oids)):
                apply(oids[i], xs[i], ys[i], vxs[i], vys[i], ts[i], cells[i])
            return
        row_of = self._row_of
        get = row_of.get
        count = len(oids)
        # tolist() + map keeps the lookup loop in C and avoids boxing
        # one np.int64 per element.
        rows = np.fromiter(
            map(get, oids.tolist(), repeat(-1)), dtype=np.int64, count=count
        )
        fresh = np.flatnonzero(rows < 0)
        if len(fresh):
            # Bulk-append new rows first so the scatter views below are
            # taken after the last reallocation.
            base = len(self.oids)
            for offset, oid in enumerate(oids[fresh].tolist()):
                row_of[oid] = base + offset
            self.oids.frombytes(oids[fresh].tobytes())
            self.xs.frombytes(xs[fresh].tobytes())
            self.ys.frombytes(ys[fresh].tobytes())
            nan_block = np.full(len(fresh), _NAN).tobytes()
            self.old_xs.frombytes(nan_block)
            self.old_ys.frombytes(nan_block)
            self.vxs.frombytes(vxs[fresh].tobytes())
            self.vys.frombytes(vys[fresh].tobytes())
            self.ts.frombytes(ts[fresh].tobytes())
            self.cells.frombytes(cells[fresh].tobytes())
        known = (
            np.flatnonzero(rows >= 0) if len(fresh) else np.arange(count)
        )
        if len(known):
            target = rows[known]
            xs_v = np.frombuffer(self.xs, dtype=np.float64)
            ys_v = np.frombuffer(self.ys, dtype=np.float64)
            old_xs_v = np.frombuffer(self.old_xs, dtype=np.float64)
            old_ys_v = np.frombuffer(self.old_ys, dtype=np.float64)
            old_xs_v[target] = xs_v[target]
            old_ys_v[target] = ys_v[target]
            xs_v[target] = xs[known]
            ys_v[target] = ys[known]
            np.frombuffer(self.vxs, dtype=np.float64)[target] = vxs[known]
            np.frombuffer(self.vys, dtype=np.float64)[target] = vys[known]
            np.frombuffer(self.ts, dtype=np.float64)[target] = ts[known]
            np.frombuffer(self.cells, dtype=np.int64)[target] = cells[known]

    def remove(self, oid: int) -> None:
        """Swap-remove ``oid``'s row; unknown oids raise ``KeyError``."""
        row = self._row_of.pop(oid)
        last = len(self.oids) - 1
        if row != last:
            moved = self.oids[last]
            self.oids[row] = moved
            self.xs[row] = self.xs[last]
            self.ys[row] = self.ys[last]
            self.old_xs[row] = self.old_xs[last]
            self.old_ys[row] = self.old_ys[last]
            self.vxs[row] = self.vxs[last]
            self.vys[row] = self.vys[last]
            self.ts[row] = self.ts[last]
            self.cells[row] = self.cells[last]
            self._row_of[moved] = row
        self.oids.pop()
        self.xs.pop()
        self.ys.pop()
        self.old_xs.pop()
        self.old_ys.pop()
        self.vxs.pop()
        self.vys.pop()
        self.ts.pop()
        self.cells.pop()

    def coord_views(self):
        """Fresh zero-copy numpy views ``(x, y, old_x, old_y)``.

        Only valid until the next append/remove; numpy backend only.
        """
        np = numpy_or_none()
        return (
            _f64_view(np, self.xs),
            _f64_view(np, self.ys),
            _f64_view(np, self.old_xs),
            _f64_view(np, self.old_ys),
        )

    def xy_views(self):
        """Fresh zero-copy numpy views ``(x, y)`` (numpy backend only)."""
        np = numpy_or_none()
        return _f64_view(np, self.xs), _f64_view(np, self.ys)


class ColumnarQueryStore:
    """Parallel arrays of query descriptors: qid, kind code, and range
    bounds (zeroed for k-NN and predictive kinds).

    ``version`` increments on **every** mutation; downstream caches
    (the evaluator's per-cell candidate entries, whose contents embed
    store rows and range bounds) key their validity on it.  k-NN
    footprint re-placements in the grid index do *not* touch this store
    — deliberately, since they happen every evaluation and never affect
    a cached range/predictive entry.
    """

    __slots__ = (
        "qids",
        "kinds",
        "min_xs",
        "min_ys",
        "max_xs",
        "max_ys",
        "_row_of",
        "version",
    )

    def __init__(self) -> None:
        self.qids = array("q")
        self.kinds = array("b")
        self.min_xs = array("d")
        self.min_ys = array("d")
        self.max_xs = array("d")
        self.max_ys = array("d")
        self._row_of: dict[int, int] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self.qids)

    def __contains__(self, qid: int) -> bool:
        return qid in self._row_of

    def row_of(self, qid: int) -> int:
        """The current row of ``qid`` (valid until the next mutation)."""
        return self._row_of[qid]

    def put(
        self,
        qid: int,
        kind: int,
        min_x: float = 0.0,
        min_y: float = 0.0,
        max_x: float = 0.0,
        max_y: float = 0.0,
    ) -> int:
        """Insert or update one query's descriptor row; returns the row."""
        self.version += 1
        row = self._row_of.get(qid)
        if row is None:
            row = len(self.qids)
            self._row_of[qid] = row
            self.qids.append(qid)
            self.kinds.append(kind)
            self.min_xs.append(min_x)
            self.min_ys.append(min_y)
            self.max_xs.append(max_x)
            self.max_ys.append(max_y)
        else:
            self.kinds[row] = kind
            self.min_xs[row] = min_x
            self.min_ys[row] = min_y
            self.max_xs[row] = max_x
            self.max_ys[row] = max_y
        return row

    def remove(self, qid: int) -> None:
        """Swap-remove ``qid``'s row; unknown qids raise ``KeyError``."""
        self.version += 1
        row = self._row_of.pop(qid)
        last = len(self.qids) - 1
        if row != last:
            moved = self.qids[last]
            self.qids[row] = moved
            self.kinds[row] = self.kinds[last]
            self.min_xs[row] = self.min_xs[last]
            self.min_ys[row] = self.min_ys[last]
            self.max_xs[row] = self.max_xs[last]
            self.max_ys[row] = self.max_ys[last]
            self._row_of[moved] = row
        self.qids.pop()
        self.kinds.pop()
        self.min_xs.pop()
        self.min_ys.pop()
        self.max_xs.pop()
        self.max_ys.pop()

    def descriptor(self, qid: int) -> tuple[int, float, float, float, float]:
        """``(kind, min_x, min_y, max_x, max_y)`` — the exact wire
        descriptor format :mod:`repro.parallel.worker` consumes."""
        row = self._row_of[qid]
        return (
            self.kinds[row],
            self.min_xs[row],
            self.min_ys[row],
            self.max_xs[row],
            self.max_ys[row],
        )

    def descriptors(
        self, qids
    ) -> dict[int, tuple[int, float, float, float, float]]:
        """Descriptor rows for ``qids`` as a payload-ready dict."""
        return {qid: self.descriptor(qid) for qid in qids}

    def bounds_views(self):
        """Fresh zero-copy numpy views ``(min_x, min_y, max_x, max_y)``.

        Only valid until the next ``put`` of a new qid or ``remove``;
        numpy backend only.
        """
        np = numpy_or_none()
        return (
            _f64_view(np, self.min_xs),
            _f64_view(np, self.min_ys),
            _f64_view(np, self.max_xs),
            _f64_view(np, self.max_ys),
        )


class _NoopCounter:
    """Stands in for registry counters when no registry is wired."""

    __slots__ = ()

    def inc(self, value: float = 1.0) -> None:
        pass


_NOOP_COUNTER = _NoopCounter()


class ColumnarAnswerStore:
    """Answer membership as sorted per-query oid arrays.

    Each entry mirrors one query's live ``answer`` set as an ascending
    ``int64`` ndarray (numpy backend) or sorted list (python backend).
    Entries are built lazily on :meth:`get` and stay valid until the
    engine **invalidates** them: a length check catches most drift
    defensively, but same-length membership swaps (one oid out, one
    in) are invisible to it, so every code path that mutates a
    mirrored answer outside the array paths must call
    :meth:`invalidate` — the engine does this for removals,
    unregistrations, query moves, scalar predictive refreshes, and
    k-NN re-solves.

    ``version`` increments on every write (put, rebuild, invalidate);
    derived snapshots — the evaluator's k-NN member union, CSR views —
    key their validity on it.  Hit/miss/invalidation counters surface
    the cache's churn (``engine_answer_cache_*_total``).
    """

    __slots__ = (
        "_arrays",
        "version",
        "_np",
        "_m_hits",
        "_m_misses",
        "_m_invalidations",
    )

    def __init__(self, registry=None, backend: str = "numpy") -> None:
        self._np = numpy_or_none() if backend == "numpy" else None
        self._arrays: dict[int, object] = {}
        self.version = 0
        if registry is not None:
            counter = registry.counter
            self._m_hits = counter("engine_answer_cache_hits_total")
            self._m_misses = counter("engine_answer_cache_misses_total")
            self._m_invalidations = counter(
                "engine_answer_cache_invalidations_total"
            )
        else:
            self._m_hits = _NOOP_COUNTER
            self._m_misses = _NOOP_COUNTER
            self._m_invalidations = _NOOP_COUNTER

    def __len__(self) -> int:
        return len(self._arrays)

    def __contains__(self, qid: int) -> bool:
        return qid in self._arrays

    def get(self, qid: int, live) -> object:
        """``qid``'s sorted oid array, coherent with the ``live`` set.

        A cached array whose length matches the live set is served as a
        hit; anything else (absent, or a missed invalidation caught by
        the length check) rebuilds from ``live`` and counts a miss.
        """
        arr = self._arrays.get(qid)
        if arr is not None and len(arr) == len(live):
            self._m_hits.inc()
            return arr
        self._m_misses.inc()
        np = self._np
        if np is not None:
            arr = np.fromiter(live, dtype=np.int64, count=len(live))
            arr.sort()
        else:
            arr = sorted(live)
        self._arrays[qid] = arr
        self.version += 1
        return arr

    def peek(self, qid: int):
        """The cached array, or ``None`` — never rebuilds."""
        return self._arrays.get(qid)

    def put(self, qid: int, arr) -> None:
        """Install a known-sorted answer array (the predictive refresh
        writes ``candidates[inside]`` back directly)."""
        self._arrays[qid] = arr
        self.version += 1

    def invalidate(self, qid: int) -> None:
        """Drop ``qid``'s array after an out-of-band answer mutation.

        Always bumps ``version`` — derived snapshots may depend on the
        *live* set even when no array was cached for ``qid``.
        """
        self.version += 1
        self._m_invalidations.inc()
        self._arrays.pop(qid, None)

    def csr(self, qids, live_of):
        """CSR snapshot ``(offsets, values)`` over ``qids`` (in order).

        ``live_of(qid)`` supplies each query's live answer set; rows
        come from :meth:`get`, so repeated snapshots are cache hits.
        Under numpy both outputs are ``int64`` ndarrays; under the
        python backend, plain lists.
        """
        np = self._np
        if np is not None:
            parts = [self.get(qid, live_of(qid)) for qid in qids]
            offsets = np.zeros(len(parts) + 1, dtype=np.int64)
            if parts:
                np.cumsum(
                    np.fromiter(
                        map(len, parts), dtype=np.int64, count=len(parts)
                    ),
                    out=offsets[1:],
                )
                values = np.concatenate(parts)
            else:
                values = np.empty(0, dtype=np.int64)
            return offsets, values
        offsets = [0]
        values: list[int] = []
        for qid in qids:
            values.extend(self.get(qid, live_of(qid)))
            offsets.append(len(values))
        return offsets, values
