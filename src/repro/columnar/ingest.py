"""Vectorized report-buffer ingest (the engine's phase 5a).

The serial ``IncrementalEngine._group_reports`` walks the report buffer
one object at a time: home-cell arithmetic, old-cell lookup through the
grid's auxiliary hash index, a per-object columnar-store write, a
per-object grid bucket move, and a dict append into its transition
cohort.  At 100K reports that loop is the last major serial phase of
the columnar pipeline.  :class:`BatchIngest` replaces it with a few
array passes:

* **home cells** for the entire buffer via the shared batch kernel
  (:func:`repro.grid.cellmath.point_cells_batch` — bit-identical to the
  scalar ``Grid.cell_of`` clamp arithmetic);
* **old cells** gathered from a dense ``oid -> cell`` int64 column kept
  in lockstep with the grid index (sentinels for "not indexed" and
  "multi-cell footprint"), replacing 100K dict lookups with one fancy
  index;
* **transition cohorts** recovered by one ``lexsort`` over
  ``(key, oid)`` with group-boundary detection, where ``key`` encodes
  ``(old_cell, new_cell)``; cohorts are emitted in first-occurrence
  order (``minimum.reduceat`` over the original positions), which is
  exactly the serial dicts' insertion order;
* **grid reassignment** in one pass per touched *cell* via
  :meth:`~repro.grid.index.GridIndex.bulk_drain_points` /
  ``bulk_fill_points`` — every old cell is drained of its departing
  members and every new cell filled with its arrivals in a single set
  operation each, instead of two set operations per object (or even
  per transition);
* **columnar store writes** for the whole batch through
  :meth:`~repro.columnar.store.ColumnarObjectStore.batch_apply`.

The predictive **minority** — reports carrying velocity while
prediction is enabled, and objects currently holding a multi-cell
footprint — falls out to a scalar loop that replicates the serial
branch body verbatim.  This split is exact, not approximate: minority
reports are precisely the ones the serial loop routes into
``set_groups``, and majority reports precisely the ones routed into
``point_groups``, so batching one while looping the other preserves
both dicts' first-occurrence orders.

Cohort member lists come out oid-sorted rather than in report order.
That is safe because every consumer sorts members by oid before any
emission (``_evaluate_cohort``, the columnar plan builder, and the
parallel worker all do) — and it lets the parallel planner reuse the
already-sorted per-cohort oid/coordinate slices as payload columns.

Sorted-order equivalence is pinned by the golden ingest tests
(``tests/columnar/test_ingest_golden.py``) across all four pipelines
and both backends.

Like the rest of this package, the module imports nothing from
``repro.core`` — the engine injects its state class and sentinels.
"""

from __future__ import annotations

from operator import attrgetter, itemgetter

from repro.columnar.backend import numpy_or_none
from repro.grid.cellmath import point_cells_batch

#: C-level column extractors for the report buffer's (location,
#: velocity, t) tuples.
_GET_X = attrgetter("x")
_GET_Y = attrgetter("y")
_GET_VX = attrgetter("vx")
_GET_VY = attrgetter("vy")
_GET_T = itemgetter(2)

#: Dense-column sentinel: oid currently has no grid placement.
NOT_INDEXED = -1
#: Dense-column sentinel: oid occupies a multi-cell (predictive)
#: footprint; its exact cells live in the grid index's hash index.
MULTI_CELL = -2

#: The dense column is worth its memory only while oids are reasonably
#: dense.  If the largest oid exceeds this multiple of the live
#: population (plus slack for small worlds), batch ingest disables
#: itself for the engine's lifetime and the serial path takes over.
_MAX_SPARSITY = 8
_SPARSITY_SLACK = 65_536


def _cell_runs(cells_sorted, np):
    """Group boundaries of a sorted cell array: parallel lists of
    (cell id, run start, run stop) for zipping."""
    n = len(cells_sorted)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(cells_sorted[1:], cells_sorted[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    stops = np.append(starts[1:], n)
    return cells_sorted[starts].tolist(), starts.tolist(), stops.tolist()


class BatchIngest:
    """Batch phase 5a for one engine: owns the dense ``oid -> cell``
    column and turns a report buffer into the serial pipelines' cohort
    structures in a few array passes."""

    __slots__ = ("engine", "state_cls", "no_cells", "np", "enabled", "_cell_by_oid")

    def __init__(self, engine, state_cls, no_cells) -> None:
        self.engine = engine
        self.state_cls = state_cls
        self.no_cells = no_cells
        self.np = numpy_or_none()
        # Once disabled (no numpy, or a pathologically sparse oid
        # space), batch ingest stays off for the engine's lifetime:
        # the serial path does not maintain the dense column, so there
        # is no consistent state to re-enable from.
        self.enabled = self.np is not None
        self._cell_by_oid = None

    # ------------------------------------------------------------------
    # Dense-column maintenance
    # ------------------------------------------------------------------

    def forget(self, oid: int) -> None:
        """Mark ``oid`` unindexed (the engine's removal phase)."""
        column = self._cell_by_oid
        if column is not None and 0 <= oid < len(column):
            column[oid] = NOT_INDEXED

    def cell_hint(self, oid: int) -> int | None:
        """The dense column's view of ``oid`` (tests/invariants only)."""
        column = self._cell_by_oid
        if column is None or not 0 <= oid < len(column):
            return None
        return int(column[oid])

    def _ensure_capacity(self, max_oid: int, population: int) -> bool:
        """Grow the dense column to cover ``max_oid``; False = too sparse."""
        needed = max_oid + 1
        column = self._cell_by_oid
        if column is not None and needed <= len(column):
            return True
        if needed > _MAX_SPARSITY * max(population, 1) + _SPARSITY_SLACK:
            return False
        np = self.np
        grown = max(needed, 1024)
        if column is not None:
            grown = max(grown, (len(column) * 3) // 2)
        fresh = np.full(grown, NOT_INDEXED, dtype=np.int64)
        if column is not None:
            fresh[: len(column)] = column
        self._cell_by_oid = fresh
        return True

    # ------------------------------------------------------------------
    # The batch kernel
    # ------------------------------------------------------------------

    def group(self, reports, want_columns: bool):
        """Apply and group one report buffer.

        Returns ``(point_groups, set_groups, point_columns)`` — the
        exact structures ``_group_reports`` builds (cohort members
        oid-sorted), plus per-cohort ``(oids, xs, ys)`` column lists
        keyed like ``point_groups`` when ``want_columns`` — or ``None``
        when the kernel cannot run (caller falls back to the serial
        loop).  Clears the buffer on success, mutates nothing on
        ``None``.
        """
        if not self.enabled or not reports:
            return None
        np = self.np
        engine = self.engine
        objects = engine.objects
        oid_list = list(reports.keys())
        oid_arr = np.asarray(oid_list, dtype=np.int64)
        # Capacity/sparsity guard runs before any state mutation so a
        # fallback round leaves the engine untouched for the serial loop.
        if int(oid_arr.min()) < 0 or not self._ensure_capacity(
            int(oid_arr.max()), len(objects) + len(oid_list)
        ):
            self.enabled = False
            return None

        # --- extraction.  Coordinate columns come straight out of the
        # buffer via C-level passes (list comprehensions + fromiter over
        # attrgetter maps — no per-report Python frame); the one
        # remaining per-report Python loop applies each report to its
        # ObjectState, exactly as the serial loop does.
        count = len(oid_list)
        vals = reports.values()
        locs = [v[0] for v in vals]
        vels = [v[1] for v in vals]
        f64 = np.float64
        x_arr = np.fromiter(map(_GET_X, locs), f64, count=count)
        y_arr = np.fromiter(map(_GET_Y, locs), f64, count=count)
        vx_arr = np.fromiter(map(_GET_VX, vels), f64, count=count)
        vy_arr = np.fromiter(map(_GET_VY, vels), f64, count=count)
        t_arr = np.fromiter(map(_GET_T, vals), f64, count=count)
        state_cls = self.state_cls
        states_buf: list = []
        add_state = states_buf.append
        get_state = objects.get
        for oid, (location, velocity, t) in reports.items():
            state = get_state(oid)
            if state is None:
                state = state_cls(oid, location, velocity, t)
                objects[oid] = state
            else:
                state.location = location
                state.velocity = velocity
                state.t = t
            add_state(state)
        reports.clear()

        grid = engine.grid
        new_cells = point_cells_batch(x_arr, y_arr, grid, np)
        column = self._cell_by_oid
        old_cells = column[oid_arr]

        # --- majority/minority split.  Minority == exactly the reports
        # the serial loop routes into set_groups: moving objects while
        # prediction is enabled, plus anything currently multi-cell.
        if engine.prediction_horizon > 0:
            minority = (vx_arr != 0.0) | (vy_arr != 0.0)
            minority |= old_cells == MULTI_CELL
        else:
            minority = old_cells == MULTI_CELL
        minority_idx = np.flatnonzero(minority)
        if len(minority_idx):
            majority_idx = np.flatnonzero(~minority)
            m_oid = oid_arr[majority_idx]
            m_old = old_cells[majority_idx]
            m_new = new_cells[majority_idx]
        else:
            majority_idx = None
            m_oid = oid_arr
            m_old = old_cells
            m_new = new_cells

        ostore = engine._ostore
        if ostore is not None and len(m_oid):
            if majority_idx is None:
                ostore.batch_apply(
                    m_oid, x_arr, y_arr, vx_arr, vy_arr, t_arr, m_new, np
                )
            else:
                ostore.batch_apply(
                    m_oid,
                    x_arr[majority_idx],
                    y_arr[majority_idx],
                    vx_arr[majority_idx],
                    vy_arr[majority_idx],
                    t_arr[majority_idx],
                    m_new,
                    np,
                )

        # --- cohort grouping: sort by (transition key, oid), find the
        # group boundaries, emit groups by first occurrence in report
        # order (== the serial dict's insertion order).
        point_groups: dict = {}
        set_groups: dict = {}
        point_columns: dict | None = {} if want_columns else None
        index = engine.index
        if len(m_oid):
            n_cells = grid.n * grid.n
            key = (m_old + np.int64(1)) * np.int64(n_cells) + m_new
            order = np.lexsort((m_oid, key))
            sorted_key = key[order]
            boundary = np.empty(len(sorted_key), dtype=bool)
            boundary[0] = True
            np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundary[1:])
            starts = np.flatnonzero(boundary)
            stops = np.append(starts[1:], len(sorted_key))
            # `order` holds original majority positions, so the minimum
            # per group is its first occurrence in report order.
            first_seen = np.minimum.reduceat(order, starts)
            group_keys = sorted_key[starts]
            # Permute the per-group columns into emission order once, so
            # the loop below zips plain lists instead of re-indexing.
            perm = np.argsort(first_seen, kind="stable")
            old_of_group = ((group_keys // n_cells) - 1)[perm].tolist()
            new_of_group = (group_keys % n_cells)[perm].tolist()
            starts_list = starts[perm].tolist()
            stops_list = stops[perm].tolist()
            # Materialise the member states in sorted order with one
            # object-array gather: per-group members are then plain list
            # slices instead of 100K individual indexed lookups.
            states_arr = np.empty(len(states_buf), dtype=object)
            states_arr[:] = states_buf
            if majority_idx is None:
                states_sorted = states_arr[order].tolist()
            else:
                states_sorted = states_arr[majority_idx][order].tolist()
            oid_sorted = m_oid[order].tolist()
            # The whole cohort dict is assembled in C: transition keys
            # zipped with member slices, in first-occurrence order.
            slices = list(map(slice, starts_list, stops_list))
            point_groups = dict(
                zip(
                    zip(old_of_group, new_of_group),
                    map(states_sorted.__getitem__, slices),
                )
            )
            if want_columns:
                if majority_idx is None:
                    x_sorted = x_arr[order].tolist()
                    y_sorted = y_arr[order].tolist()
                else:
                    x_sorted = x_arr[majority_idx][order].tolist()
                    y_sorted = y_arr[majority_idx][order].tolist()
                point_columns = dict(
                    zip(
                        point_groups.keys(),
                        zip(
                            map(oid_sorted.__getitem__, slices),
                            map(x_sorted.__getitem__, slices),
                            map(y_sorted.__getitem__, slices),
                        ),
                    )
                )

            # --- grid reassignment, one pass per *cell* rather than per
            # transition: drain every old cell of its departing members,
            # then fill every new cell with its arrivals (new objects
            # and movers alike).  Net bucket/footprint state is
            # identical to per-transition moves — set operations
            # commute and stay-put members never leave their bucket —
            # but the number of Python-level set operations drops from
            # two per transition to one per touched cell.
            sorted_old = m_old[order]
            sorted_new = m_new[order]
            moved = sorted_old != sorted_new
            if moved.any():
                oid_sorted_arr = m_oid[order]
                drain = index.bulk_drain_points
                fill = index.bulk_fill_points
                dep_mask = moved & (sorted_old != np.int64(NOT_INDEXED))
                if dep_mask.any():
                    # Already sorted by (old, new), so departures are
                    # contiguous runs of old cell.
                    dep_old = sorted_old[dep_mask]
                    dep_oids = oid_sorted_arr[dep_mask].tolist()
                    for cell, lo, hi in zip(*_cell_runs(dep_old, np)):
                        drain(cell, dep_oids[lo:hi])
                arr_new = sorted_new[moved]
                arr_order = np.argsort(arr_new, kind="stable")
                arr_new = arr_new[arr_order]
                arr_oids = oid_sorted_arr[moved][arr_order].tolist()
                for cell, lo, hi in zip(*_cell_runs(arr_new, np)):
                    fill(cell, arr_oids[lo:hi])
            column[m_oid] = m_new

        # --- minority fallback: the serial branch bodies verbatim, in
        # report order (minority_idx is ascending), so set_groups gets
        # the exact serial insertion and member order.
        if len(minority_idx):
            no_cells = self.no_cells
            group_into = engine._group_into
            object_cells = index.object_cells
            predictive_possible = engine.prediction_horizon > 0
            new_cell_list = new_cells.tolist()
            for i in minority_idx.tolist():
                oid = oid_list[i]
                state = states_buf[i]
                location = state.location
                velocity = state.velocity
                known = old_cells[i] != NOT_INDEXED
                if predictive_possible and (
                    velocity.vx != 0.0 or velocity.vy != 0.0
                ):
                    old_fs = object_cells(oid) if known else None
                    new_fs = engine._object_footprint(state)
                    if old_fs != new_fs:
                        index.place_object(oid, new_fs)
                    if ostore is not None:
                        ostore.apply_report(
                            oid,
                            location.x,
                            location.y,
                            velocity.vx,
                            velocity.vy,
                            state.t,
                            grid.cell_of(location),
                        )
                    group_into(
                        set_groups,
                        no_cells if old_fs is None else old_fs,
                        new_fs,
                        state,
                    )
                    column[oid] = (
                        MULTI_CELL if len(new_fs) > 1 else next(iter(new_fs))
                    )
                else:
                    # Was predictive (multi-cell), now stationary.
                    new_cell = new_cell_list[i]
                    old_fs = object_cells(oid)
                    if ostore is not None:
                        ostore.apply_report(
                            oid,
                            location.x,
                            location.y,
                            velocity.vx,
                            velocity.vy,
                            state.t,
                            new_cell,
                        )
                    new_fs = frozenset((new_cell,))
                    index.place_object(oid, new_fs)
                    group_into(set_groups, old_fs, new_fs, state)
                    column[oid] = new_cell

        return point_groups, set_groups, point_columns
