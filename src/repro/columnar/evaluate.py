"""The columnar cohort evaluator: plan → kernel → ordered emission.

This is the ``pipeline="columnar"`` replacement for the engine's
per-cohort Python membership loop
(:meth:`repro.core.engine.IncrementalEngine._evaluate_cohort`).  It
reuses the cell-batched pipeline's transition grouping verbatim and
must emit a **byte-identical update stream**, so every ordering rule of
the serial pass is preserved structurally:

* pairs are laid out cohort-major, then cell, then partial-before-
  covering entries sorted by qid, then members sorted by oid — the
  kernel's changed-pair positions are therefore already in serial
  emission order;
* a query candidate appearing in several cells of one multi-cell
  cohort joins on first occurrence only — plan construction drops late
  duplicates (the order-preserving mirror of the serial seen-qid skip;
  duplicate pairs would compute identical change bits, so they are
  dead weight for the kernel and the emitter alike);
* ``stay_put`` cohorts join against partial entries only, and
  point-pair cohorts drop queries covering both cells at plan time —
  in either case a covering query provably yields ``in_old == in_new``
  for every member, so the skipped pairs could never emit;
* each cohort's answered sweep runs right after its own emissions,
  interleaved exactly like the serial pass.

Candidate entries are cached **across evaluations**: a cell's entry
arrays depend only on registered range/predictive queries, so the
cache is keyed on :attr:`ColumnarQueryStore.version` and survives
arbitrarily many object-report batches untouched.  k-NN queries are
deliberately left out of the cached entries (their grid footprints are
re-placed every repair, which would otherwise thrash the cache);
cohort k-NN dirty-marking instead intersects live cell buckets with
the engine's registered-knn set, memoised per evaluation.
"""

from __future__ import annotations

from repro.columnar.kernels import PairPlan, classify_transitions
from repro.columnar.store import (
    KIND_KNN,
    KIND_PREDICTIVE,
    KIND_RANGE,
    ColumnarAnswerStore,
)
from repro.columnar.backend import numpy_or_none

#: ``engine_columnar_batch_size`` histogram bounds: powers of four from
#: a single pair up to 16M pairs per batch.
BATCH_SIZE_BUCKETS: tuple[float, ...] = tuple(4.0**e for e in range(13))

_EMPTY_QIDS: frozenset[int] = frozenset()


def _by_oid(state) -> int:
    return state.oid


class _CellEntries:
    """One cell's cached candidate rows (query-store row indices).

    ``partial``/``full`` are int32 ndarrays under the numpy backend and
    plain lists under the python backend; ``full_rows`` is always the
    plain-list form of ``full`` (multi-cell cohorts filter it against
    rows already joined in an earlier cell); ``cover_set`` holds the
    covering rows as a frozenset (point-pair cohorts intersect the two
    cells' sets to skip queries that provably cannot change);
    ``static_qids`` snapshots the cell's range + predictive qids for
    the answered sweep (k-NN qids are intentionally absent — see the
    module docstring)."""

    __slots__ = ("partial", "full", "full_rows", "cover_set", "static_qids")

    def __init__(self, partial, full, full_rows, cover_set, static_qids):
        self.partial = partial
        self.full = full
        self.full_rows = full_rows
        self.cover_set = cover_set
        self.static_qids = static_qids


class _DualCounter:
    """Feeds one span duration into two counters (phase + total)."""

    __slots__ = ("first", "second")

    def __init__(self, first, second):
        self.first = first
        self.second = second

    def inc(self, value: float = 1.0) -> None:
        self.first.inc(value)
        self.second.inc(value)


class ColumnarEvaluator:
    """Batch evaluator bound to one engine's live structures.

    All references (``queries``, ``objects``, ``knn_qids``) alias the
    engine's own dicts/sets; the evaluator never rebinds them.
    Emission goes through the update stream's ``push`` /
    ``extend_columns`` contract, which keeps this package import-free
    of :mod:`repro.core` (the engine imports us).
    """

    def __init__(
        self,
        grid,
        index,
        ostore,
        qstore,
        objects,
        queries,
        knn_qids,
        backend: str,
        registry,
        tracer,
    ):
        self.grid = grid
        self.index = index
        self.ostore = ostore
        self.qstore = qstore
        self.objects = objects
        self.queries = queries
        self.knn_qids = knn_qids
        self.backend = backend
        self.tracer = tracer
        self._np = numpy_or_none() if backend == "numpy" else None
        self._cell_cache: dict[int, _CellEntries] = {}
        self._cohort_cache: dict[tuple, tuple] = {}
        self._cache_version = -1
        self._knn_memo: dict[int, tuple] = {}
        if self._np is not None:
            empty = self._np.empty(0, dtype=self._np.int32)
            self._empty_entries = _CellEntries(
                empty, empty, (), frozenset(), _EMPTY_QIDS
            )
        else:
            self._empty_entries = _CellEntries(
                (), (), (), frozenset(), _EMPTY_QIDS
            )
        self._h_batch_size = registry.histogram(
            "engine_columnar_batch_size", buckets=BATCH_SIZE_BUCKETS
        )
        counter = registry.counter
        self._m_batches = counter("engine_columnar_batches_total")
        self._m_pairs = counter("engine_columnar_pairs_total")
        self._m_changes = counter("engine_columnar_changes_total")
        # Per-phase wall time of the batch pass (plan/join/emit) — the
        # benchmark reads the deltas to attribute a round's cost.
        self._phase_counters = {
            phase: counter(
                "engine_columnar_phase_seconds_total",
                labels={"phase": phase},
            )
            for phase in ("plan", "join", "emit")
        }
        # The emit span feeds both the per-phase breakdown and the
        # pipeline-neutral total the benchmark/CI gate reads.
        self._emit_span_counter = _DualCounter(
            self._phase_counters["emit"],
            counter("engine_emit_seconds_total"),
        )
        # Answer membership as sorted oid arrays: the predictive
        # refresh's membership delta becomes one vectorized
        # searchsorted instead of per-candidate set probes, and the
        # answered sweep's k-NN member union is assembled from (and
        # cached against) the same arrays.  The engine invalidates an
        # entry whenever it mutates an answer outside these paths.
        self.answers = ColumnarAnswerStore(registry, backend)
        self._knn_union_cache: tuple[tuple[int, int], frozenset[int]] | None = (
            None
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, cohorts, updates, knn_dirty) -> None:
        """Evaluate one batch of transition cohorts (engine phase 5b)."""
        span = self.tracer.span
        phase_counters = self._phase_counters
        with span("columnar_plan", phase_counters["plan"]):
            plan, metas = self._build_plan(cohorts, knn_dirty)
        self._m_batches.inc()
        self._m_pairs.inc(plan.total_pairs)
        self._h_batch_size.observe(plan.total_pairs)
        bulk = self._np is not None
        with span("columnar_join", phase_counters["join"]):
            qids, oids, signs, ends, arrays = classify_transitions(
                plan,
                self.ostore,
                self.qstore,
                self.backend,
                want_arrays=True,
            )
        self._m_changes.inc(len(qids))
        with span("columnar_emit", self._emit_span_counter):
            special = self._sweep_candidates()
            if bulk:
                self._emit_bulk(
                    metas,
                    ends,
                    qids,
                    oids,
                    signs,
                    arrays,
                    special,
                    updates,
                    knn_dirty,
                )
            else:
                self._emit(
                    metas, ends, qids, oids, signs, special, updates, knn_dirty
                )

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------

    def _build_plan(self, cohorts, knn_dirty):
        qstore = self.qstore
        if self._cache_version != qstore.version:
            self._cell_cache.clear()
            self._cohort_cache.clear()
            self._cache_version = qstore.version
        self._knn_memo.clear()
        cohort_cache = self._cohort_cache
        plan = PairPlan()
        ent_parts = plan.ent_parts
        metas = []
        row_of = self.ostore._row_of
        obj_rows = plan.obj_rows
        for cells, states, stay_put, point_pair in cohorts:
            if len(states) > 1:
                states.sort(key=_by_oid)
            parts = 0
            if len(cells) == 1:
                cell = cells[0]
                entries = self._cell_entries(cell)
                self._mark_knn(cell, knn_dirty)
                part = entries.partial if stay_put else entries.full
                total_entries = len(part)
                if total_entries:
                    ent_parts.append(part)
                    parts = 1
                seen = entries.static_qids
            else:
                # The deduped multi-cell entry layout depends only on
                # the cells (and the point-pair cover skip), so recur-
                # ring transitions reuse it across evaluations.
                key = (cells, point_pair)
                cached = cohort_cache.get(key)
                if cached is None:
                    cached = self._plan_multi(cells, point_pair)
                    cohort_cache[key] = cached
                for cell in cells:
                    self._mark_knn(cell, knn_dirty)
                parts_seq, total_entries, seen = cached
                if total_entries:
                    ent_parts.extend(parts_seq)
                    parts = len(parts_seq)
            plan.parts_per_cohort.append(parts)
            plan.ent_counts.append(total_entries)
            for state in states:
                obj_rows.append(row_of[state.oid])
            plan.obj_counts.append(len(states))
            metas.append((states, seen))
        plan.seal()
        return plan, metas

    def _plan_multi(self, cells, point_pair: bool):
        """Deduped candidate layout for one multi-cell transition.

        A row already joined for an earlier cell is dropped (first-
        occurrence order — the mirror of the serial seen-qid skip).
        For point-pair transitions, queries covering *both* cells are
        dropped outright: the member's old location lies in the old
        cell and its new location in the new cell, so ``in_old`` and
        ``in_new`` are both true and no update can result.  (Only
        point pairs guarantee real old locations inside the cohort's
        cells — new objects with NaN old coordinates always land in
        single-cell cohorts.)
        """
        entry_list = [self._cell_entries(cell) for cell in cells]
        joined: set[int] = set()
        if point_pair:
            a, b = entry_list
            if a.cover_set and b.cover_set:
                joined |= a.cover_set & b.cover_set
        np = self._np
        parts: list = []
        total = 0
        seen: set[int] = set()
        for entries in entry_list:
            full_rows = entries.full_rows
            if full_rows:
                if joined:
                    keep = [r for r in full_rows if r not in joined]
                else:
                    keep = full_rows
                if keep:
                    joined.update(keep)
                    if len(keep) == len(full_rows):
                        part = entries.full
                    elif np is not None:
                        part = np.asarray(keep, dtype=np.int32)
                    else:
                        part = keep
                    parts.append(part)
                    total += len(part)
            if entries.static_qids:
                seen |= entries.static_qids
        return tuple(parts), total, frozenset(seen)

    def _mark_knn(self, cell: int, knn_dirty) -> None:
        """Serial-equivalent per-cell k-NN dirty marking, memoised."""
        memo = self._knn_memo
        hit = memo.get(cell)
        if hit is None:
            resident = self.index.queries_in_cell(cell)
            hit = (
                tuple(self.knn_qids.intersection(resident))
                if resident
                else ()
            )
            memo[cell] = hit
        if hit:
            knn_dirty.update(hit)

    def _cell_entries(self, cell: int) -> _CellEntries:
        cached = self._cell_cache.get(cell)
        if cached is not None:
            return cached
        qids = self.index.cell_query_tuple(cell)
        if not qids:
            cached = self._empty_entries
            self._cell_cache[cell] = cached
            return cached
        qstore = self.qstore
        qrow_of = qstore._row_of
        kinds = qstore.kinds
        min_xs = qstore.min_xs
        min_ys = qstore.min_ys
        max_xs = qstore.max_xs
        max_ys = qstore.max_ys
        # Inline Grid.cell_rect — the same arithmetic as the serial
        # pipeline's candidate resolution, so the partial/covering split
        # is bit-identical on boundary regions.
        grid = self.grid
        world = grid.world
        cell_w = grid.cell_width
        cell_h = grid.cell_height
        row, col = divmod(cell, grid.n)
        c_min_x = world.min_x + col * cell_w
        c_min_y = world.min_y + row * cell_h
        c_max_x = world.min_x + (col + 1) * cell_w
        c_max_y = world.min_y + (row + 1) * cell_h
        partial: list[int] = []
        covering: list[int] = []
        static: list[int] = []
        # ``qids`` is sorted ascending, so partial/covering (and their
        # concatenation order below) match the serial entry sort.
        for qid in qids:
            qrow = qrow_of[qid]
            kind = kinds[qrow]
            if kind == KIND_RANGE:
                static.append(qid)
                if (
                    min_xs[qrow] <= c_min_x
                    and min_ys[qrow] <= c_min_y
                    and max_xs[qrow] >= c_max_x
                    and max_ys[qrow] >= c_max_y
                ):
                    covering.append(qrow)
                else:
                    partial.append(qrow)
            elif kind == KIND_PREDICTIVE:
                static.append(qid)
        full = partial + covering
        if not full and not static:
            cached = self._empty_entries
        else:
            np = self._np
            if np is not None:
                cached = _CellEntries(
                    np.asarray(partial, dtype=np.int32),
                    np.asarray(full, dtype=np.int32),
                    full,
                    frozenset(covering),
                    frozenset(static),
                )
            else:
                cached = _CellEntries(
                    partial, full, full, frozenset(covering), frozenset(static)
                )
        self._cell_cache[cell] = cached
        return cached

    def predicted_inside(
        self,
        oids,
        region,
        now: float,
        horizon: float,
        trust_horizon: float,
    ):
        """Vectorized ``_predicted_in_region`` over candidate ``oids``.

        Returns one bool per oid (same order), or ``None`` under the
        python backend (callers fall back to the scalar path).  The
        arithmetic replicates the scalar sequence operation-for-
        operation — ``position_at`` displacement, then Liang–Barsky
        slab clipping in the same edge order with the same running
        ``t0``/``t1`` comparisons — so each lane's IEEE result is
        bit-identical to ``LinearMotion.time_in_rect``'s verdict.
        Stationary objects need no special branch: a zero velocity
        makes every slab test degenerate to the closed containment
        check the scalar path uses.
        """
        ok = self._predicted_inside_arr(oids, region, now, horizon, trust_horizon)
        return None if ok is None else ok.tolist()

    def _predicted_inside_arr(
        self,
        oids,
        region,
        now: float,
        horizon: float,
        trust_horizon: float,
    ):
        """:meth:`predicted_inside` as a bool ndarray (numpy only)."""
        np = self._np
        if np is None or not oids:
            return None
        ostore = self.ostore
        row_of = ostore._row_of
        rows = np.fromiter(
            (row_of[oid] for oid in oids), count=len(oids), dtype=np.int64
        )
        xs, ys, _, _ = ostore.coord_views()
        t = np.frombuffer(ostore.ts, dtype=np.float64)[rows]
        x = xs[rows]
        y = ys[rows]
        vx = np.frombuffer(ostore.vxs, dtype=np.float64)[rows]
        vy = np.frombuffer(ostore.vys, dtype=np.float64)[rows]
        start = np.maximum(now, t)
        end = np.minimum(now + horizon, t + trust_horizon)
        # An empty window is an unconditional miss; the clip below may
        # see a reversed segment on those lanes, but ``ok`` only ever
        # clears, never sets.
        ok = end >= start
        ds = start - t
        de = end - t
        sx = x + vx * ds
        sy = y + vy * ds
        dx = (x + vx * de) - sx
        dy = (y + vy * de) - sy
        t0 = np.zeros(len(rows))
        t1 = np.ones(len(rows))
        with np.errstate(divide="ignore", invalid="ignore"):
            for p, q in (
                (-dx, sx - region.min_x),
                (dx, region.max_x - sx),
                (-dy, sy - region.min_y),
                (dy, region.max_y - sy),
            ):
                pz = p == 0.0
                ok &= ~(pz & (q < 0.0))
                r = q / p  # junk on pz lanes; masked out below
                neg = p < 0.0
                ok &= ~(neg & (r > t1))
                pos = p > 0.0
                ok &= ~(pos & (r < t0))
                np.copyto(t0, r, where=neg & (r > t0))
                np.copyto(t1, r, where=pos & (r < t1))
        return ok

    # ------------------------------------------------------------------
    # Columnar predictive answers
    # ------------------------------------------------------------------

    def invalidate_answer(self, qid: int) -> None:
        """Drop ``qid``'s sorted answer array.  Called by the engine
        whenever it mutates an answer outside the array paths (object
        removals, query unregistration/moves, scalar predictive
        refreshes, k-NN re-solves) — the next reader rebuilds the
        array from the live set."""
        self.answers.invalidate(qid)

    def answer_view(self, qid: int, live) -> frozenset[int] | None:
        """``qid``'s answer served from the cached sorted array, or
        ``None`` when no coherent array is cached (caller falls back
        to the live set).  This is the read path external consumers
        (oracle, recovery, ``answer_of``) exercise, so a stale array —
        a missed invalidation — surfaces as a visible divergence
        instead of silent drift."""
        arr = self.answers.peek(qid)
        if arr is None or len(arr) != len(live):
            return None
        if self._np is not None:
            return frozenset(arr.tolist())
        return frozenset(arr)

    def refresh_predictive(
        self,
        qid: int,
        query,
        ordered,
        now: float,
        horizon: float,
        trust_horizon: float,
        updates,
    ) -> bool:
        """Vectorized predictive refresh for one query (no flip
        schedule).  ``ordered`` is the ascending candidate list and is
        always a superset of the current answer (the engine seeds
        candidates with the answer itself), so the new answer is
        exactly ``ordered[inside]``.

        Membership deltas come from one ``searchsorted`` of the
        candidates against the stored sorted answer array; changed
        memberships are applied to the live ``answer``/``answered``
        sets and emitted ascending by oid — precisely the serial
        loop's order.  Returns ``False`` (engine falls back to the
        scalar loop) under the python backend.
        """
        np = self._np
        inside = self._predicted_inside_arr(
            ordered, query.region, now, horizon, trust_horizon
        )
        if inside is None:
            return False
        answer = query.answer
        candidates = np.asarray(ordered, dtype=np.int64)
        # The store's length check doubles as the defensive rebuild for
        # any missed invalidation hook (counted as a miss).
        stored = self.answers.get(qid, answer)
        if len(stored):
            pos = np.searchsorted(stored, candidates)
            pos[pos == len(stored)] = len(stored) - 1
            was = stored[pos] == candidates
        else:
            was = np.zeros(len(candidates), dtype=bool)
        changed = np.flatnonzero(inside != was)
        if len(changed):
            objects = self.objects
            push = updates.push
            entering = inside[changed].tolist()
            for i, entered in zip(changed.tolist(), entering):
                oid = ordered[i]
                if entered:
                    answer.add(oid)
                    objects[oid].answered.add(qid)
                    push(qid, oid, 1)
                else:
                    answer.discard(oid)
                    objects[oid].answered.discard(qid)
                    push(qid, oid, -1)
        self.answers.put(qid, candidates[inside])
        return True

    def _sweep_candidates(self) -> frozenset[int] | set[int]:
        """Oids that can possibly fail the sweep's ``answered <= seen``
        guard — everything else provably passes and is skipped unchecked.

        A member's ``answered`` set holds, at sweep time, (a) range
        memberships, (b) predictive memberships, (c) k-NN memberships.
        Range memberships are correct as of the member's last evaluated
        position (query moves update answers immediately; this batch's
        pair corrections are applied before any sweep runs), and a range
        query containing an **in-world** point always has a candidate
        entry in that point's cell — so for members whose current *and*
        previous coordinates lie inside the world, every range qid in
        ``answered`` appears in the cohort's ``seen`` set, as does every
        predictive qid (``static_qids`` carries both kinds).  The only
        states on which the sweep body can *act* are therefore members
        of some k-NN answer (k-NN qids are never in ``seen``) and
        objects whose old or new coordinates fall outside the world
        (grid clamping breaks the cell-coverage argument for them).
        Predictive memberships may also escape ``seen`` — a footprint
        need not cover its members' cells — but the sweep body skips
        ``KIND_PREDICTIVE`` qids outright, so running it on a state
        whose only escaped qids are predictive is a provable no-op and
        those members are deliberately left out.  The golden-
        equivalence suites drive all of these paths — off-world
        reports, query moves, every query kind — against the serial
        stream byte-for-byte.
        """
        ostore = self.ostore
        world = self.grid.world
        np = self._np
        knn_members = self._knn_member_union()
        special: set[int] = set()
        if np is not None:
            xs, ys, old_xs, old_ys = ostore.coord_views()
            # NaN old coordinates (new objects) compare False on every
            # bound: a fresh object is never off-world-stale.
            with np.errstate(invalid="ignore"):
                off = (
                    (xs < world.min_x)
                    | (xs > world.max_x)
                    | (ys < world.min_y)
                    | (ys > world.max_y)
                    | (old_xs < world.min_x)
                    | (old_xs > world.max_x)
                    | (old_ys < world.min_y)
                    | (old_ys > world.max_y)
                )
            off_rows = np.flatnonzero(off)
            if len(off_rows):
                oid_col = np.frombuffer(ostore.oids, dtype=np.int64)
                special.update(oid_col[off_rows].tolist())
        else:
            xs = ostore.xs
            ys = ostore.ys
            old_xs = ostore.old_xs
            old_ys = ostore.old_ys
            oid_col = ostore.oids
            min_x, min_y = world.min_x, world.min_y
            max_x, max_y = world.max_x, world.max_y
            for row in range(len(oid_col)):
                if (
                    xs[row] < min_x
                    or xs[row] > max_x
                    or ys[row] < min_y
                    or ys[row] > max_y
                    or old_xs[row] < min_x
                    or old_xs[row] > max_x
                    or old_ys[row] < min_y
                    or old_ys[row] > max_y
                ):
                    special.add(oid_col[row])
        if not special:
            return knn_members
        special.update(knn_members)
        return special

    def _knn_member_union(self) -> frozenset[int]:
        """Every oid in some k-NN answer, via the answer store's sorted
        arrays — one concatenate + unique over cached rows instead of
        per-qid set unions every batch.  The union itself is cached
        against the (query store, answer store) version pair; k-NN
        answer mutations always run an ``invalidate_answer`` hook, so
        any membership change bumps the answer-store version."""
        qstore = self.qstore
        cached = self._knn_union_cache
        key = (qstore.version, self.answers.version)
        if cached is not None and cached[0] == key:
            return cached[1]
        queries = self.queries
        answers = self.answers
        np = self._np
        if np is not None:
            kind_col = np.frombuffer(qstore.kinds, dtype=np.int8)
            rows = np.flatnonzero(kind_col == KIND_KNN)
            if len(rows):
                qid_col = np.frombuffer(qstore.qids, dtype=np.int64)
                parts = [
                    answers.get(qid, queries[qid].answer)
                    for qid in qid_col[rows].tolist()
                ]
                union = frozenset(
                    np.unique(np.concatenate(parts)).tolist()
                )
            else:
                union = frozenset()
        else:
            members: set[int] = set()
            for row, kind in enumerate(qstore.kinds):
                if kind == KIND_KNN:
                    qid = qstore.qids[row]
                    members.update(answers.get(qid, queries[qid].answer))
            union = frozenset(members)
        # Key re-read after the build: the gets above may have bumped
        # the answer-store version while rebuilding missing rows.
        self._knn_union_cache = ((qstore.version, self.answers.version), union)
        return union

    # ------------------------------------------------------------------
    # Ordered emission + answered sweep
    # ------------------------------------------------------------------

    def _emit_bulk(
        self, metas, ends, qids, oids, signs, arrays, special, updates, knn_dirty
    ) -> None:
        """numpy fast path: bulk set maintenance + spliced emission.

        Every object belongs to exactly one transition cohort per
        batch, so cohort *i*'s pair emissions touch membership atoms —
        (query, member) pairs — disjoint from every other cohort's
        emissions and sweeps.  Applying the whole batch's answer /
        answered changes up front (grouped by query and by object,
        C-speed bulk set operations) therefore leaves each cohort's
        answered sweep reading exactly the state it would have seen
        under strict serial interleaving.  The update stream itself is
        reassembled in serial order **as columns**: the kernel's
        qid/oid/sign lists splice straight into the batch via
        ``extend_columns`` (zero per-pair allocation), with each
        cohort's sweep output spliced in right after its pair span.
        """
        np = self._np
        queries = self.queries
        if arrays is not None:
            qid_arr, oid_arr, _ = arrays
            # One argsort per side yields contiguous per-id groups; each
            # group applies as a single C-speed symmetric difference.
            # Signs are not needed: a positive pair's object is provably
            # absent from the answer and a negative pair's present (the
            # very invariant that lets the kernel recompute ``in_old``
            # geometrically), so toggling is exactly add-the-positives /
            # remove-the-negatives, and a batch's atoms are distinct.
            for id_arr, payload_arr, is_answer in (
                (qid_arr, oid_arr, True),
                (oid_arr, qid_arr, False),
            ):
                order = np.argsort(id_arr)
                k_sorted = id_arr[order]
                cuts = (
                    np.flatnonzero(k_sorted[1:] != k_sorted[:-1]) + 1
                ).tolist()
                payload = payload_arr[order].tolist()
                starts = [0, *cuts]
                stops = [*cuts, len(payload)]
                group_keys = k_sorted[starts].tolist()
                if is_answer:
                    for k, s, e in zip(group_keys, starts, stops):
                        queries[k].answer.symmetric_difference_update(
                            payload[s:e]
                        )
                else:
                    objects = self.objects
                    for k, s, e in zip(group_keys, starts, stops):
                        objects[k].answered.symmetric_difference_update(
                            payload[s:e]
                        )
        qstore = self.qstore
        qrow_of = qstore._row_of
        kinds = qstore.kinds
        min_xs = qstore.min_xs
        min_ys = qstore.min_ys
        max_xs = qstore.max_xs
        max_ys = qstore.max_ys
        splices: list[tuple[int, list, list, list]] = []
        if not special:
            # No k-NN answer members and no off-world objects: every
            # sweep body would be a no-op (see _sweep_candidates).
            metas = ()
        for (states, seen), end in zip(metas, ends):
            chunk = None
            for state in states:
                answered = state.answered
                if not answered or state.oid not in special:
                    continue
                if answered <= seen:
                    continue
                location = state.location
                x = location.x
                y = location.y
                oid = state.oid
                for qid in sorted(answered - seen):
                    qrow = qrow_of[qid]
                    kind = kinds[qrow]
                    if kind == KIND_RANGE:
                        query = queries[qid]
                        inside = (
                            min_xs[qrow] <= x <= max_xs[qrow]
                            and min_ys[qrow] <= y <= max_ys[qrow]
                        )
                        if inside:
                            if oid not in query.answer:
                                query.answer.add(oid)
                                answered.add(qid)
                                if chunk is None:
                                    chunk = ([], [], [])
                                chunk[0].append(qid)
                                chunk[1].append(oid)
                                chunk[2].append(1)
                        elif oid in query.answer:
                            query.answer.discard(oid)
                            answered.discard(qid)
                            if chunk is None:
                                chunk = ([], [], [])
                            chunk[0].append(qid)
                            chunk[1].append(oid)
                            chunk[2].append(-1)
                    elif kind != KIND_PREDICTIVE:
                        knn_dirty.add(qid)
            if chunk is not None:
                splices.append((end, *chunk))
        if splices:
            extend_columns = updates.extend_columns
            prev = 0
            for end_pos, c_qids, c_oids, c_signs in splices:
                if end_pos > prev:
                    extend_columns(
                        qids[prev:end_pos],
                        oids[prev:end_pos],
                        signs[prev:end_pos],
                    )
                    prev = end_pos
                extend_columns(c_qids, c_oids, c_signs)
            if prev < len(qids):
                extend_columns(qids[prev:], oids[prev:], signs[prev:])
        else:
            updates.extend_columns(qids, oids, signs)

    def _emit(
        self, metas, ends, qids, oids, signs, special, updates, knn_dirty
    ) -> None:
        queries = self.queries
        objects = self.objects
        qstore = self.qstore
        qrow_of = qstore._row_of
        kinds = qstore.kinds
        min_xs = qstore.min_xs
        min_ys = qstore.min_ys
        max_xs = qstore.max_xs
        max_ys = qstore.max_ys
        push = updates.push
        pos = 0
        for (states, seen), end in zip(metas, ends):
            if pos < end:
                # Plan-level dedup guarantees every changed pair is
                # unique within its cohort: emit them all, in order.
                for qid, oid, sign in zip(
                    qids[pos:end], oids[pos:end], signs[pos:end]
                ):
                    query = queries[qid]
                    state = objects[oid]
                    if sign > 0:
                        query.answer.add(oid)
                        state.answered.add(qid)
                    else:
                        query.answer.discard(oid)
                        state.answered.discard(qid)
                    push(qid, oid, sign)
                pos = end
            # Answered sweep: queries the member left entirely behind.
            if not special:
                continue
            for state in states:
                answered = state.answered
                if not answered or state.oid not in special:
                    continue
                if answered <= seen:
                    continue
                location = state.location
                x = location.x
                y = location.y
                oid = state.oid
                for qid in sorted(answered - seen):
                    qrow = qrow_of[qid]
                    kind = kinds[qrow]
                    if kind == KIND_RANGE:
                        query = queries[qid]
                        inside = (
                            min_xs[qrow] <= x <= max_xs[qrow]
                            and min_ys[qrow] <= y <= max_ys[qrow]
                        )
                        if inside:
                            if oid not in query.answer:
                                query.answer.add(oid)
                                answered.add(qid)
                                push(qid, oid, 1)
                        elif oid in query.answer:
                            query.answer.discard(oid)
                            answered.discard(qid)
                            push(qid, oid, -1)
                    elif kind != KIND_PREDICTIVE:
                        knn_dirty.add(qid)
