"""Columnar (struct-of-arrays) stores and batch kernels.

The ``pipeline="columnar"`` evaluation core: object and query state
mirrored into parallel arrays (:mod:`repro.columnar.store`), batch
kernels for the cell-range join and cohort membership classification
(:mod:`repro.columnar.kernels`) and k-NN candidate distance filtering
(:mod:`repro.columnar.knn`), orchestrated per evaluation by
:class:`~repro.columnar.evaluate.ColumnarEvaluator`.  Kernels run on
numpy when available and on pure-Python ``array`` columns otherwise
(:mod:`repro.columnar.backend` — the stdlib-only guarantee holds).
"""

from repro.columnar.backend import (
    BACKEND_ENV_VAR,
    BACKENDS,
    numpy_available,
    numpy_or_none,
    resolve_backend,
)
from repro.columnar.evaluate import ColumnarEvaluator
from repro.columnar.ingest import MULTI_CELL, NOT_INDEXED, BatchIngest
from repro.columnar.kernels import PairPlan, classify_transitions
from repro.columnar.knn import knn_search_columnar
from repro.columnar.store import (
    KIND_KNN,
    KIND_PREDICTIVE,
    KIND_RANGE,
    ColumnarAnswerStore,
    ColumnarObjectStore,
    ColumnarQueryStore,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "BACKENDS",
    "BatchIngest",
    "MULTI_CELL",
    "NOT_INDEXED",
    "ColumnarAnswerStore",
    "ColumnarEvaluator",
    "ColumnarObjectStore",
    "ColumnarQueryStore",
    "KIND_KNN",
    "KIND_PREDICTIVE",
    "KIND_RANGE",
    "PairPlan",
    "classify_transitions",
    "knn_search_columnar",
    "numpy_available",
    "numpy_or_none",
    "resolve_backend",
]
