"""Kernel backend selection for the columnar evaluation core.

The columnar pipeline has exactly two kernel implementations per batch
operation: a vectorized one on numpy arrays and a pure-Python one over
``array``-module columns.  The dispatch rule is deliberately simple —
**one decision per engine, never per call**:

* ``"auto"`` (the default) resolves to ``"numpy"`` when numpy imports,
  otherwise ``"python"``.  The environment variable
  ``REPRO_COLUMNAR_BACKEND`` overrides ``"auto"`` (CI's no-numpy leg
  exports ``REPRO_COLUMNAR_BACKEND=python`` to exercise the fallback
  even where numpy happens to be installed).
* an explicit ``"numpy"`` or ``"python"`` wins over the environment;
  requesting numpy on a host without it is an error, not a silent
  downgrade — a benchmark that thinks it measured the vector path must
  never have measured the fallback.

Nothing outside this module imports numpy directly: kernels fetch the
module through :func:`numpy_or_none` so the stdlib-only guarantee is a
single ``try: import`` here.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

#: Environment override consulted when the requested backend is "auto".
BACKEND_ENV_VAR = "REPRO_COLUMNAR_BACKEND"

BACKENDS = ("auto", "numpy", "python")


def numpy_or_none():
    """The numpy module, or ``None`` when it is not installed."""
    return _numpy


def numpy_available() -> bool:
    return _numpy is not None


def resolve_backend(requested: str = "auto") -> str:
    """Resolve ``requested`` to a concrete backend name.

    Returns ``"numpy"`` or ``"python"``; raises ``ValueError`` for an
    unknown name or for an explicit ``"numpy"`` request on a host
    without numpy.
    """
    if requested not in BACKENDS:
        raise ValueError(
            f"columnar backend must be one of {BACKENDS}, got {requested!r}"
        )
    if requested == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "").strip()
        if env:
            if env not in ("numpy", "python"):
                raise ValueError(
                    f"{BACKEND_ENV_VAR} must be 'numpy' or 'python', "
                    f"got {env!r}"
                )
            requested = env
        else:
            return "numpy" if _numpy is not None else "python"
    if requested == "numpy" and _numpy is None:
        raise ValueError(
            "columnar backend 'numpy' requested but numpy is not installed"
        )
    return requested
