"""Columnar k-NN search: ring expansion with batch distance filtering.

Same algorithm and *identical results* as :func:`repro.core.knn.knn_search`
— expanding ring over the grid, max-heap of the k best ``(distance,
oid)`` candidates, stop once the k-th best distance beats the next
ring's lower bound — but the per-candidate distance work is split in
two:

1. a vectorized squared-distance pass over the ring's whole candidate
   batch, pruning every candidate that provably cannot enter the heap
   (``d² > kth² · (1 + 1e-12)`` — the relative margin covers the few-ulp
   disagreement between the squared form and the exact distance, and
   the heap's k-th distance only shrinks within a ring, so a candidate
   the ring-start bound rejects could never have displaced anything);
2. an exact ``math.hypot`` for the survivors only.  CPython's ``hypot``
   is correctly rounded and is what :meth:`Point.distance_to` uses, so
   ranked distances — and therefore the maintained k-NN circle radius —
   stay bit-identical to the scalar search.

Tiny rings skip the vectorized pass entirely (numpy call overhead
exceeds the work below ~8 candidates).  The pure-Python backend simply
*is* the scalar search: the engine dispatches to
:func:`repro.core.knn.knn_search` when the columnar backend is
``"python"``.
"""

from __future__ import annotations

import heapq
import math

from repro.columnar.backend import numpy_or_none

#: Below this many ring candidates the scalar path wins.
MIN_VECTOR_CANDIDATES = 8

#: Relative safety margin for squared-distance pruning.
PRUNE_MARGIN = 1.0 + 1e-12


def knn_search_columnar(index, ostore, center, k: int):
    """The ``(distance, oid)`` list of the k nearest stored objects.

    Drop-in equivalent of :func:`repro.core.knn.knn_search` over a
    :class:`~repro.columnar.store.ColumnarObjectStore` (numpy backend).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    np = numpy_or_none()
    grid = index.grid
    home = grid.cell_of(center)
    max_radius = grid.max_ring_radius(home)
    cell_extent = min(grid.cell_width, grid.cell_height)
    cx = center.x
    cy = center.y
    xs = ostore.xs
    ys = ostore.ys
    row_of = ostore._row_of

    heap: list[tuple[float, int]] = []
    seen: set[int] = set()
    candidates: list[int] = []
    for radius in range(max_radius + 1):
        if len(heap) == k and (radius - 1) * cell_extent > -heap[0][0]:
            break
        candidates.clear()
        for cell in grid.ring_around(home, radius):
            bucket = index.bucket(cell)
            if bucket is None:
                continue
            for oid in bucket.objects:
                if oid in seen:
                    continue
                seen.add(oid)
                candidates.append(oid)
        if not candidates:
            continue
        if len(heap) == k and len(candidates) >= MIN_VECTOR_CANDIDATES:
            # Batch filter: squared distances for the whole ring, keep
            # only candidates that could still enter the heap.
            rows = np.fromiter(
                (row_of[oid] for oid in candidates),
                dtype=np.int64,
                count=len(candidates),
            )
            x_view, y_view = ostore.xy_views()
            dx = x_view[rows] - cx
            dy = y_view[rows] - cy
            d2 = dx * dx + dy * dy
            kth = -heap[0][0]
            survivors = np.nonzero(d2 <= kth * kth * PRUNE_MARGIN)[0]
            pool = [candidates[i] for i in survivors.tolist()]
        else:
            pool = candidates
        for oid in pool:
            row = row_of[oid]
            distance = math.hypot(xs[row] - cx, ys[row] - cy)
            candidate = (-distance, -oid)
            if len(heap) < k:
                heapq.heappush(heap, candidate)
            elif candidate > heap[0]:
                heapq.heapreplace(heap, candidate)
    return sorted((-d, -negated_oid) for d, negated_oid in heap)
