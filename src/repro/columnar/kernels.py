"""Batch kernels for the columnar evaluation core.

The cell-batched pipeline's inner loop visits every (candidate query,
cohort object) pair of every transition cohort in Python.  The columnar
pipeline replaces that loop with two array passes over the whole batch:

1. **Cell-range join** — expand the batch's ragged (cohort → candidate
   entry rows × member object rows) structure into two flat pair-index
   arrays, in *exactly* the order the serial loop would visit pairs
   (cohort → cell → partial-then-covering entries sorted by qid →
   objects sorted by oid).
2. **Membership classification** — one vectorized containment test per
   pair against the object's new and old coordinates.  ``enter`` is
   inside-new ∧ ¬inside-old (a positive update), ``leave`` the reverse
   (negative), ``still-inside``/``still-outside`` produce nothing.
   Prior membership is *recomputed geometrically from the old
   coordinates* rather than looked up: a range answer always equals
   the set of objects inside the region (the engine maintains exactly
   that invariant through every phase), and NaN old coordinates — new
   objects — test False against every bound.

Kernel contract (both backends)::

    classify_transitions(plan, ostore, qstore, backend)
        -> (qids, oids, signs, cohort_ends)

``qids``/``oids`` are the public query/object identifiers of the
*changed* pairs only, as plain Python lists in flat pair order (the
numpy path maps store rows to identifiers with one vectorized gather
over the id columns — never per pair in Python); ``signs`` holds
+1/-1; ``cohort_ends[i]`` is the exclusive end of cohort ``i``'s span
in those lists.  The kernel classifies exactly the pairs the plan
enumerates, in the plan's order — plan construction has already
deduplicated candidate entries across a multi-cell cohort's cells
(first-occurrence order, the mirror of the serial pass's seen-qid
skip), so every changed pair maps one-to-one onto an emitted update.

The numpy path materialises pair-index arrays for the whole batch
(int32: two 4-byte columns per pair) but runs the float work in
:data:`PAIR_CHUNK`-sized chunks so peak temporary memory stays bounded
regardless of batch size.
"""

from __future__ import annotations

from repro.columnar.backend import numpy_or_none

#: Pairs per float-kernel chunk (eight float64 temporaries per pair in
#: flight → ~70 MB peak at this setting).
PAIR_CHUNK = 1 << 20


class PairPlan:
    """The ragged join structure for one batch, cohort-major.

    * ``ent_parts`` — one sequence of query-store rows per (cohort,
      cell) with at least one candidate entry, in cohort order; each
      part is already in the serial candidate order (partial entries
      then covering entries, each sorted by qid).  numpy backend: int32
      ndarrays; python backend: lists.
    * ``parts_per_cohort[i]`` — how many of those parts belong to
      cohort ``i``.
    * ``ent_counts[i]`` — total candidate entries of cohort ``i``.
    * ``obj_rows`` — object-store rows of every cohort member, flat,
      cohort-major, sorted by oid within a cohort.
    * ``obj_counts[i]`` — member count of cohort ``i``.
    """

    __slots__ = (
        "ent_parts",
        "parts_per_cohort",
        "ent_counts",
        "obj_rows",
        "obj_counts",
        "total_pairs",
    )

    def __init__(self) -> None:
        self.ent_parts: list = []
        self.parts_per_cohort: list[int] = []
        self.ent_counts: list[int] = []
        self.obj_rows: list[int] = []
        self.obj_counts: list[int] = []
        self.total_pairs = 0

    @property
    def cohort_count(self) -> int:
        return len(self.ent_counts)

    def seal(self) -> None:
        """Finalize derived totals after the last cohort is added."""
        self.total_pairs = sum(
            e * m for e, m in zip(self.ent_counts, self.obj_counts)
        )


def classify_transitions(
    plan: PairPlan,
    ostore,
    qstore,
    backend: str,
    chunk_pairs: int = PAIR_CHUNK,
    want_arrays: bool = False,
):
    """Run the join + membership classification for one batch.

    Dispatches on ``backend`` (``"numpy"`` or ``"python"``); both
    implementations honour the contract above and return identical
    results on identical inputs (tested property).

    With ``want_arrays`` a fifth element is returned: the int64
    ``(qids, oids, signs)`` ndarray triple under the numpy backend
    (``None`` when there are no changed pairs or under the python
    backend) — the bulk emitter groups set maintenance from it without
    re-materialising arrays from the lists.
    """
    if backend == "numpy":
        return _classify_numpy(plan, ostore, qstore, chunk_pairs, want_arrays)
    result = _classify_python(plan, ostore, qstore)
    return (*result, None) if want_arrays else result


def _classify_numpy(
    plan: PairPlan, ostore, qstore, chunk_pairs: int, want_arrays: bool = False
):
    np = numpy_or_none()
    n_cohorts = plan.cohort_count
    if plan.total_pairs == 0:
        empty = ([], [], [], [0] * n_cohorts)
        return (*empty, None) if want_arrays else empty

    ent_counts = np.asarray(plan.ent_counts, dtype=np.int64)
    obj_counts = np.asarray(plan.obj_counts, dtype=np.int64)
    pairs = ent_counts * obj_counts
    pair_start = np.zeros(n_cohorts + 1, dtype=np.int64)
    np.cumsum(pairs, out=pair_start[1:])
    total = int(pair_start[-1])
    # int32 pair indices halve the bandwidth of the expansion
    # temporaries; int64 only when a batch actually overflows them.
    idx = np.int32 if total < 2**31 else np.int64

    # --- the cell-range join: flat (query row, object row) pair arrays.
    ent = np.concatenate(plan.ent_parts)
    obj = np.asarray(plan.obj_rows, dtype=np.int32)
    # Each candidate entry repeats once per cohort member, entry-major.
    qidx = np.repeat(ent, np.repeat(obj_counts, ent_counts))
    # Pair p of cohort c addresses member (p - pair_start[c]) % m[c].
    obj_start = np.zeros(n_cohorts, dtype=idx)
    np.cumsum(obj_counts[:-1].astype(idx), out=obj_start[1:])
    rel = np.arange(total, dtype=idx)
    rel -= np.repeat(pair_start[:-1].astype(idx), pairs)
    rel %= np.repeat(obj_counts.astype(idx), pairs)
    rel += np.repeat(obj_start, pairs)
    oidx = obj[rel]
    del rel

    xs, ys, old_xs, old_ys = ostore.coord_views()
    min_xs, min_ys, max_xs, max_ys = qstore.bounds_views()

    out_q: list = []
    out_o: list = []
    out_s: list = []
    out_pos: list = []
    # NaN old coordinates (new objects) must compare False silently.
    with np.errstate(invalid="ignore"):
        for lo in range(0, total, chunk_pairs):
            hi = min(lo + chunk_pairs, total)
            q = qidx[lo:hi]
            o = oidx[lo:hi]
            lx = min_xs[q]
            hx = max_xs[q]
            ly = min_ys[q]
            hy = max_ys[q]
            px = xs[o]
            py = ys[o]
            in_new = (lx <= px) & (px <= hx) & (ly <= py) & (py <= hy)
            px = old_xs[o]
            py = old_ys[o]
            in_old = (lx <= px) & (px <= hx) & (ly <= py) & (py <= hy)
            changed = in_new != in_old
            pos = np.nonzero(changed)[0]
            if not len(pos):
                continue
            out_q.append(q[pos])
            out_o.append(o[pos])
            out_s.append(np.where(in_new[pos], 1, -1))
            out_pos.append(pos + lo)

    if not out_q:
        empty = ([], [], [], [0] * n_cohorts)
        return (*empty, None) if want_arrays else empty
    # One vectorized gather over the id columns (array('q') buffers are
    # int64 in memory) turns store rows into public identifiers — the
    # emitter never touches a row index per pair.
    qid_col = np.frombuffer(qstore.qids, dtype=np.int64)
    oid_col = np.frombuffer(ostore.oids, dtype=np.int64)
    qid_arr = qid_col[np.concatenate(out_q)]
    oid_arr = oid_col[np.concatenate(out_o)]
    sign_arr = np.concatenate(out_s).astype(np.int64, copy=False)
    qids = qid_arr.tolist()
    oids = oid_arr.tolist()
    signs = sign_arr.tolist()
    # Chunks were processed in order, so global positions are sorted;
    # per-cohort spans fall out of one searchsorted over the boundaries.
    global_pos = np.concatenate(out_pos)
    cohort_ends = np.searchsorted(global_pos, pair_start[1:], side="left")
    ends = cohort_ends.tolist()
    if want_arrays:
        return qids, oids, signs, ends, (qid_arr, oid_arr, sign_arr)
    return qids, oids, signs, ends


def _classify_python(plan: PairPlan, ostore, qstore):
    """Pure-Python fallback: same flat enumeration, scalar columns."""
    xs = ostore.xs
    ys = ostore.ys
    old_xs = ostore.old_xs
    old_ys = ostore.old_ys
    oid_col = ostore.oids
    min_xs = qstore.min_xs
    min_ys = qstore.min_ys
    max_xs = qstore.max_xs
    max_ys = qstore.max_ys
    qid_col = qstore.qids

    qids: list[int] = []
    oids: list[int] = []
    signs: list[int] = []
    cohort_ends: list[int] = []
    ent_parts = plan.ent_parts
    obj_rows = plan.obj_rows
    part_index = 0
    obj_index = 0
    for cohort, m in enumerate(plan.obj_counts):
        members = obj_rows[obj_index : obj_index + m]
        obj_index += m
        for _ in range(plan.parts_per_cohort[cohort]):
            part = ent_parts[part_index]
            part_index += 1
            for erow in part:
                lx = min_xs[erow]
                hx = max_xs[erow]
                ly = min_ys[erow]
                hy = max_ys[erow]
                qid = qid_col[erow]
                for orow in members:
                    in_new = (
                        lx <= xs[orow] <= hx and ly <= ys[orow] <= hy
                    )
                    # NaN old coordinates compare False: new objects
                    # were members of nothing.
                    in_old = (
                        lx <= old_xs[orow] <= hx
                        and ly <= old_ys[orow] <= hy
                    )
                    if in_new != in_old:
                        qids.append(qid)
                        oids.append(oid_col[orow])
                        signs.append(1 if in_new else -1)
        cohort_ends.append(len(qids))
    return qids, oids, signs, cohort_ends
