"""The chaos harness: a seeded hostile workload with the oracle watching.

:func:`run_chaos` builds a small but complete deployment — three
clients (one behind a throttled downlink) owning range, k-NN and
predictive queries, a population of moving objects — installs a
:class:`~repro.faults.FaultInjector`, and runs evaluation cycles with
the :class:`~repro.check.ConsistencyOracle` checking every one.  After
the hostile phase the faults are uninstalled and clients are woken
repeatedly until every mirror matches the engine (a throttled link may
need several wakeups — each advances the committed base by what fits).

Everything is derived from the plan's seed; a failing
``(pipeline, seed)`` pair replays exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.check import ConsistencyOracle, Divergence
from repro.core.server import LocationAwareServer
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.geometry import Point, Rect, Velocity
from repro.obs import DEFAULT_RING_SIZE, FlightRecorder
from repro.parallel import ParallelConfig

PIPELINES = ("per-object", "cell-batched", "parallel", "columnar")

#: A moderately hostile default: every fault dimension exercised.
DEFAULT_PLAN_RATES = dict(
    disconnect_rate=0.10,
    reconnect_after=2,
    drop_rate=0.08,
    duplicate_rate=0.05,
    reorder_rate=0.05,
    uplink_delay_rate=0.10,
    worker_crash_rate=0.15,
)


@dataclass(slots=True)
class ChaosReport:
    """What one chaos run did and found."""

    pipeline: str
    seed: int
    cycles: int
    faults: dict[str, int] = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    converged: bool = False
    wakeup_rounds: int = 0
    #: Failing runs only: the flight-recorder ring (protocol events
    #: leading up to the failure) and a full metrics snapshot.
    flight_events: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.converged and not self.divergences

    def to_dict(self) -> dict:
        out = {
            "pipeline": self.pipeline,
            "seed": self.seed,
            "cycles": self.cycles,
            "faults": dict(self.faults),
            "total_faults": sum(self.faults.values()),
            "divergences": [str(d) for d in self.divergences],
            "converged": self.converged,
            "wakeup_rounds": self.wakeup_rounds,
            "ok": self.ok,
        }
        if self.flight_events:
            out["flight_events"] = self.flight_events
        if self.metrics:
            out["metrics"] = self.metrics
        return out


def _build_server(
    pipeline: str, recorder: FlightRecorder | None = None
) -> LocationAwareServer:
    if pipeline == "parallel":
        # Thread backend with a tiny dispatch threshold: deterministic,
        # works on single-core hosts, still drives the full
        # plan/worker/merge (and crash-recovery) machinery.
        parallelism: ParallelConfig | None = ParallelConfig(
            workers=2, backend="thread", min_batch=1
        )
    else:
        parallelism = None
    return LocationAwareServer(
        grid_size=16,
        pipeline=pipeline,
        parallelism=parallelism,
        recorder=recorder,
    )


def run_chaos(
    pipeline: str,
    plan: FaultPlan,
    cycles: int = 30,
    n_objects: int = 40,
    max_wakeup_rounds: int = 50,
) -> ChaosReport:
    """One seeded chaos run; returns the report (never raises on
    divergence — the caller decides what failure means)."""
    if pipeline not in PIPELINES:
        raise ValueError(f"pipeline must be one of {PIPELINES}, got {pipeline!r}")
    report = ChaosReport(pipeline=pipeline, seed=plan.seed, cycles=cycles)
    rng = random.Random(f"{plan.seed}:workload")
    # Every chaos run flies with the black box armed: a failure report
    # embeds the protocol events that led to it, not just tallies.
    recorder = FlightRecorder(capacity=DEFAULT_RING_SIZE)
    with _build_server(pipeline, recorder=recorder) as server:
        # -- deployment: 3 clients, 5 queries, moving objects ----------
        server.register_client(0)
        server.register_client(1)
        server.register_client(2, downlink_budget=60)  # ~3 updates/cycle
        server.register_range_query(0, qid=1, region=Rect(0.1, 0.1, 0.5, 0.5))
        server.register_range_query(0, qid=2, region=Rect(0.4, 0.4, 0.9, 0.9))
        server.register_knn_query(1, qid=3, center=Point(0.5, 0.5), k=5)
        server.register_predictive_query(
            2, qid=4, region=Rect(0.2, 0.2, 0.8, 0.8), horizon=5.0
        )
        server.register_range_query(2, qid=5, region=Rect(0.0, 0.0, 0.4, 0.9))
        for oid in range(n_objects):
            velocity = (
                Velocity(rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02))
                if oid % 2
                else Velocity.ZERO
            )
            server.receive_object_report(
                oid, Point(rng.random(), rng.random()), t=0.0, velocity=velocity
            )

        oracle = ConsistencyOracle(server)
        injector = FaultInjector(server, plan)
        injector.install()

        # -- hostile phase --------------------------------------------
        for cycle in range(cycles):
            now = float(cycle + 1)
            injector.begin_cycle(cycle)
            for oid in rng.sample(range(n_objects), k=max(1, n_objects // 3)):
                velocity = (
                    Velocity(rng.uniform(-0.02, 0.02), rng.uniform(-0.02, 0.02))
                    if oid % 2
                    else Velocity.ZERO
                )
                server.receive_object_report(
                    oid, Point(rng.random(), rng.random()), now, velocity
                )
            if cycle % 3 == 1:  # the moving queries report new anchors
                server.receive_range_query_move(
                    2, _jittered_rect(rng), now
                )
                server.receive_knn_query_move(
                    3, Point(rng.random(), rng.random()), now
                )
            if cycle % 4 == 2:  # a stationary client acknowledges
                server.receive_commit(1)
                server.receive_commit(5)
            oracle.begin_cycle()
            result = server.evaluate_cycle(now)
            oracle.end_cycle(cycle, result.updates)

        # -- clean convergence phase ----------------------------------
        injector.uninstall()
        rounds = 0
        while rounds < max_wakeup_rounds and not all(
            oracle.in_sync(cid) for cid in server.client_ids()
        ):
            rounds += 1
            for client_id in server.client_ids():
                if not oracle.in_sync(client_id):
                    server.receive_wakeup(client_id)
        report.wakeup_rounds = rounds
        report.converged = all(
            oracle.in_sync(cid) for cid in server.client_ids()
        )
        # One last fault-free cycle: the oracle must stay clean on a
        # healthy network too.
        oracle.begin_cycle()
        result = server.evaluate_cycle(float(cycles + 1))
        oracle.end_cycle(cycles, result.updates)

        report.faults = dict(injector.counts)
        report.divergences = list(oracle.divergences)
        if not report.ok:
            if recorder.triggered is None:
                recorder.trigger(
                    "chaos_failure",
                    converged=report.converged,
                    divergences=len(report.divergences),
                )
            report.flight_events = recorder.events()
            report.metrics = server.registry.to_dict()
    return report


def default_plan(seed: int) -> FaultPlan:
    """The harness's standard hostile plan for ``seed``."""
    return FaultPlan(seed=seed, **DEFAULT_PLAN_RATES)


def _jittered_rect(rng: random.Random) -> Rect:
    x = rng.uniform(0.0, 0.6)
    y = rng.uniform(0.0, 0.6)
    return Rect(x, y, x + 0.35, y + 0.35)
