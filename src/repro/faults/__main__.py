"""Chaos suite CLI: ``python -m repro.faults``.

Runs :func:`repro.faults.run_chaos` for every (pipeline, seed) pair,
prints a per-run line, writes an optional JSON report, and exits
non-zero if any run diverged or failed to converge — the shape CI
wants.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.faults.harness import PIPELINES, default_plan, run_chaos


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run the seeded chaos suite with the consistency "
        "oracle enabled.",
    )
    parser.add_argument(
        "--pipelines",
        nargs="+",
        default=list(PIPELINES),
        choices=list(PIPELINES),
        help="engine pipelines to exercise (default: all three)",
    )
    parser.add_argument(
        "--seeds",
        nargs="+",
        type=int,
        default=[1, 2, 3, 4, 5],
        help="fault-plan seeds (default: 1..5)",
    )
    parser.add_argument(
        "--cycles", type=int, default=30, help="hostile cycles per run"
    )
    parser.add_argument(
        "--objects", type=int, default=40, help="moving objects per run"
    )
    parser.add_argument(
        "--report", default=None, help="write a JSON report to this path"
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        help="directory for per-failure flight-recorder JSONL dumps "
        "(CHAOS_FLIGHT_<pipeline>_<seed>.jsonl)",
    )
    args = parser.parse_args(argv)

    reports = []
    failures = 0
    for pipeline in args.pipelines:
        for seed in args.seeds:
            report = run_chaos(
                pipeline,
                default_plan(seed),
                cycles=args.cycles,
                n_objects=args.objects,
            )
            reports.append(report)
            status = "ok" if report.ok else "FAIL"
            print(
                f"[{status}] pipeline={pipeline} seed={seed} "
                f"faults={sum(report.faults.values())} "
                f"divergences={len(report.divergences)} "
                f"converged={report.converged} "
                f"wakeup_rounds={report.wakeup_rounds}"
            )
            for divergence in report.divergences:
                print(f"    {divergence}")
            if not report.ok:
                failures += 1
                if args.flight_dir:
                    flight_dir = Path(args.flight_dir)
                    flight_dir.mkdir(parents=True, exist_ok=True)
                    dump = (
                        flight_dir
                        / f"CHAOS_FLIGHT_{pipeline}_{seed}.jsonl"
                    )
                    with dump.open("w", encoding="utf-8") as handle:
                        for event in report.flight_events:
                            handle.write(
                                json.dumps(event, sort_keys=True) + "\n"
                            )
                    print(f"    flight recorder dump: {dump}")

    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "runs": [r.to_dict() for r in reports],
                    "failures": failures,
                },
                handle,
                indent=2,
            )
        print(f"report written to {args.report}")

    print(
        f"{len(reports) - failures}/{len(reports)} chaos runs clean "
        f"({failures} failures)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
