"""Installing a fault plan into a live server stack.

The :class:`FaultInjector` wires one :class:`~repro.faults.FaultPlan`
into every injectable hook the stack exposes — downlink
``link.fault_hook``, the server's ``uplink_gate``, the engine's
``worker_crash_hook`` — and drives the cycle-level faults (client
disconnects and their scheduled wakeups) from :meth:`begin_cycle`.
Every injected fault increments ``fault_injected_total{kind=...}`` in
the server's registry, so a chaos run can assert both "faults actually
happened" and "the oracle still found nothing".
"""

from __future__ import annotations

from collections import Counter

from repro.core.server import LocationAwareServer
from repro.faults.plan import FaultPlan
from repro.net.link import DELIVER


class FaultInjector:
    """Applies a :class:`FaultPlan` to a server; one injector per run."""

    def __init__(self, server: LocationAwareServer, plan: FaultPlan):
        self.server = server
        self.plan = plan
        self.schedule = plan.schedule()
        self.counts: Counter[str] = Counter()
        #: client_id -> cycle index at which the scheduled wakeup fires.
        self._reconnect_at: dict[int, int] = {}
        self._active = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Hook the plan into every fault surface of the stack."""
        for client_id in self.server.client_ids():
            self.server.link_of(client_id).fault_hook = self._downlink_fault
        self.server.uplink_gate = self._uplink_gate
        self.server.engine.worker_crash_hook = self._worker_crash
        self._active = True

    def bind_client(self, client_id: int) -> None:
        """Hook a client that registered after :meth:`install`.

        The live service runtime admits clients while a chaos plan is
        running; each late arrival's downlink joins the same fault
        schedule.  A no-op unless the injector is installed.
        """
        if self._active:
            self.server.link_of(client_id).fault_hook = self._downlink_fault

    def uninstall(self) -> None:
        """Remove every hook and wake any still-dark client.

        After this the stack is fault-free: the convergence phase of a
        chaos run happens on a clean network.
        """
        self._active = False
        for client_id in self.server.client_ids():
            self.server.link_of(client_id).fault_hook = None
        self.server.uplink_gate = None
        self.server.engine.worker_crash_hook = None
        engine_pool = self.server.engine._worker_pool
        if engine_pool is not None:
            engine_pool.crash_hook = None
        for client_id in sorted(self._reconnect_at):
            self.server.receive_wakeup(client_id)
        self._reconnect_at.clear()

    def begin_cycle(self, cycle: int) -> None:
        """Fire the cycle-level faults: scheduled wakeups, then fresh
        disconnects (a client never disconnects and wakes in the same
        cycle)."""
        if not self._active:
            return
        due = [
            client_id
            for client_id, at in self._reconnect_at.items()
            if at <= cycle
        ]
        for client_id in sorted(due):
            del self._reconnect_at[client_id]
            self.server.receive_wakeup(client_id)
        for client_id in self.server.client_ids():
            if client_id in self._reconnect_at:
                continue
            if self.schedule.should_disconnect():
                self.server.link_of(client_id).disconnect()
                self._reconnect_at[client_id] = (
                    cycle + self.plan.reconnect_after
                )
                self._count("disconnect")

    # ------------------------------------------------------------------
    # Hooks (called by the stack, not by users)
    # ------------------------------------------------------------------

    def _downlink_fault(self, link, message) -> str:
        action = self.schedule.downlink_action()
        if action != DELIVER:
            self._count(action)
        return action

    def _uplink_gate(self, kind: str) -> bool:
        if self.schedule.should_delay_uplink():
            self._count("uplink_delay")
            return False
        return True

    def _worker_crash(self, payload) -> bool:
        if self.schedule.should_crash_worker():
            self._count("worker_crash")
            return True
        return False

    def _count(self, kind: str) -> None:
        self.counts[kind] += 1
        self.server.registry.counter(
            "fault_injected_total", labels={"kind": kind}
        ).inc()
        self.server.recorder.record("fault", fault=kind)

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())
