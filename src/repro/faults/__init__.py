"""Seeded fault injection for the continuous-query stack.

Three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan` (frozen, seeded rates)
  and :class:`FaultSchedule` (one independent RNG stream per fault
  dimension, so runs replay exactly);
* :mod:`repro.faults.injector` — :class:`FaultInjector` wires a plan
  into the stack's injectable hooks: downlink ``link.fault_hook``
  (drop / duplicate / cross-query reorder), the server's
  ``uplink_gate`` (delayed uplinks), the engine's
  ``worker_crash_hook`` (simulated shard-worker deaths), plus
  cycle-level client disconnects with scheduled wakeups;
* :mod:`repro.faults.harness` — :func:`run_chaos` runs a seeded
  workload under a plan with the
  :class:`~repro.check.ConsistencyOracle` checking every cycle, then
  converges every client on a clean network.

``python -m repro.faults`` runs the chaos suite across pipelines and
seeds and writes a JSON report (non-zero exit on any divergence or
non-convergence).
"""

from repro.faults.harness import (
    DEFAULT_PLAN_RATES,
    PIPELINES,
    ChaosReport,
    default_plan,
    run_chaos,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSchedule

__all__ = [
    "DEFAULT_PLAN_RATES",
    "PIPELINES",
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "FaultSchedule",
    "default_plan",
    "run_chaos",
]
