"""Seeded fault plans and their deterministic schedules.

A :class:`FaultPlan` is a frozen description of *how hostile* the run
is — per-dimension probabilities plus one seed.  A
:class:`FaultSchedule` turns the plan into streams of decisions, one
independent :class:`random.Random` per fault dimension (keyed
``"{seed}:{dimension}"``), so the downlink dice never consume the
disconnect dice: adding a fault dimension, or changing one rate, does
not scramble the decisions of the others.  Same plan, same decisions,
every run — chaos failures replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from repro.net.link import DELIVER, DROP, DUPLICATE, REORDER

_RATE_FIELDS = (
    "disconnect_rate",
    "drop_rate",
    "duplicate_rate",
    "reorder_rate",
    "uplink_delay_rate",
    "worker_crash_rate",
)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Probabilities for each fault dimension, plus the master seed.

    Rates are per decision point: ``disconnect_rate`` per client per
    cycle, ``drop_rate`` / ``duplicate_rate`` / ``reorder_rate`` per
    downlink delivery attempt (mutually exclusive, in that precedence),
    ``uplink_delay_rate`` per uplink call, ``worker_crash_rate`` per
    dispatched shard.  ``reconnect_after`` is how many cycles a
    disconnected client stays dark before its wakeup.
    """

    seed: int = 0
    disconnect_rate: float = 0.0
    reconnect_after: int = 2
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    uplink_delay_rate: float = 0.0
    worker_crash_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.drop_rate + self.duplicate_rate + self.reorder_rate > 1.0:
            raise ValueError(
                "drop_rate + duplicate_rate + reorder_rate must not "
                "exceed 1.0 (they partition one roll)"
            )
        if self.reconnect_after < 1:
            raise ValueError(
                f"reconnect_after must be >= 1, got {self.reconnect_after}"
            )

    def schedule(self) -> "FaultSchedule":
        return FaultSchedule(self)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultSchedule:
    """The plan's decision streams (one seeded RNG per dimension)."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._downlink = random.Random(f"{plan.seed}:downlink")
        self._disconnect = random.Random(f"{plan.seed}:disconnect")
        self._uplink = random.Random(f"{plan.seed}:uplink")
        self._crash = random.Random(f"{plan.seed}:crash")

    def downlink_action(self) -> str:
        """The fate of one delivery attempt (a :data:`FAULT_ACTIONS`)."""
        plan = self.plan
        roll = self._downlink.random()
        if roll < plan.drop_rate:
            return DROP
        roll -= plan.drop_rate
        if roll < plan.duplicate_rate:
            return DUPLICATE
        roll -= plan.duplicate_rate
        if roll < plan.reorder_rate:
            return REORDER
        return DELIVER

    def should_disconnect(self) -> bool:
        return self._disconnect.random() < self.plan.disconnect_rate

    def should_delay_uplink(self) -> bool:
        return self._uplink.random() < self.plan.uplink_delay_rate

    def should_crash_worker(self) -> bool:
        return self._crash.random() < self.plan.worker_crash_rate
