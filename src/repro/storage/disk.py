"""Page-granular storage backends."""

from __future__ import annotations

import os

from repro.storage.page import PAGE_SIZE


class DiskManager:
    """Reads and writes fixed-size pages of a single file.

    Page ids are dense: :meth:`allocate` returns the next id and extends
    the file.  The file handle stays open for the manager's lifetime;
    call :meth:`close` (or use as a context manager) when done.
    """

    def __init__(self, path: str):
        self.path = path
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        if size % PAGE_SIZE != 0:
            raise ValueError(
                f"{path} is {size} bytes, not a multiple of the page size"
            )
        self._page_count = size // PAGE_SIZE

    @property
    def page_count(self) -> int:
        return self._page_count

    def allocate(self) -> int:
        """Extend the file by one zeroed page and return its id."""
        page_id = self._page_count
        os.pwrite(self._fd, bytes(PAGE_SIZE), page_id * PAGE_SIZE)
        self._page_count += 1
        return page_id

    def read_page(self, page_id: int) -> bytes:
        self._check(page_id)
        data = os.pread(self._fd, PAGE_SIZE, page_id * PAGE_SIZE)
        if len(data) != PAGE_SIZE:
            raise IOError(f"short read on page {page_id}")
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check(page_id)
        if len(data) != PAGE_SIZE:
            raise ValueError(f"page data must be {PAGE_SIZE} bytes")
        os.pwrite(self._fd, data, page_id * PAGE_SIZE)

    def sync(self) -> None:
        os.fsync(self._fd)

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "DiskManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _check(self, page_id: int) -> None:
        if not 0 <= page_id < self._page_count:
            raise IndexError(
                f"page {page_id} out of range 0..{self._page_count - 1}"
            )


class InMemoryDiskManager:
    """A RAM-backed stand-in with the same interface (tests, benchmarks)."""

    def __init__(self) -> None:
        self._pages: list[bytes] = []

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        self._pages.append(bytes(PAGE_SIZE))
        return len(self._pages) - 1

    def read_page(self, page_id: int) -> bytes:
        return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise ValueError(f"page data must be {PAGE_SIZE} bytes")
        self._pages[page_id] = bytes(data)

    def sync(self) -> None:  # no-op: RAM is "durable" for tests
        return None

    def close(self) -> None:
        return None
