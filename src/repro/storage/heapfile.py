"""Heap files: unordered record storage with stable record ids."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.storage.bufferpool import BufferPool
from repro.storage.page import PageFullError


@dataclass(frozen=True, slots=True, order=True)
class RecordId:
    """A stable record address: (page id, slot number)."""

    page_id: int
    slot: int


class HeapFile:
    """An unordered collection of variable-length records.

    The file owns a set of page ids inside the shared buffer pool's disk
    space and keeps an in-memory free-space hint per page (rebuilt on
    open by scanning, the way Shore rebuilds its free-space map).
    """

    def __init__(self, pool: BufferPool, page_ids: list[int] | None = None):
        self.pool = pool
        self._page_ids: list[int] = list(page_ids) if page_ids else []
        self._free_hints: dict[int, int] = {}
        for page_id in self._page_ids:
            with self.pool.pinned(page_id) as page:
                self._free_hints[page_id] = page.free_space

    @property
    def page_ids(self) -> list[int]:
        """The pages owned by this file (persist these to reopen it)."""
        return list(self._page_ids)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------

    def insert(self, record: bytes) -> RecordId:
        """Store ``record`` in the first page with room; grow if needed."""
        for page_id, free in self._free_hints.items():
            if free >= len(record) + 8:  # slot entry + slack
                with self.pool.pinned(page_id) as page:
                    try:
                        slot = page.insert(record)
                    except PageFullError:
                        self._free_hints[page_id] = page.free_space
                        continue
                    self._free_hints[page_id] = page.free_space
                    return RecordId(page_id, slot)
        page = self.pool.new_page()
        try:
            slot = page.insert(record)
        finally:
            self.pool.unpin(page)
        self._page_ids.append(page.page_id)
        self._free_hints[page.page_id] = page.free_space
        return RecordId(page.page_id, slot)

    def delete(self, rid: RecordId) -> None:
        self._check_owned(rid)
        with self.pool.pinned(rid.page_id) as page:
            page.delete(rid.slot)
            page.compact()
            self._free_hints[rid.page_id] = page.free_space

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read(self, rid: RecordId) -> bytes:
        self._check_owned(rid)
        with self.pool.pinned(rid.page_id) as page:
            return page.read(rid.slot)

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """All live records, page by page."""
        for page_id in self._page_ids:
            with self.pool.pinned(page_id) as page:
                for slot in page.live_slots():
                    yield RecordId(page_id, slot), page.read(slot)

    def record_count(self) -> int:
        total = 0
        for page_id in self._page_ids:
            with self.pool.pinned(page_id) as page:
                total += len(page.live_slots())
        return total

    def _check_owned(self, rid: RecordId) -> None:
        if rid.page_id not in self._free_hints:
            raise KeyError(f"page {rid.page_id} does not belong to this file")
