"""An LRU buffer pool with pin/unpin semantics.

Cache behaviour is counted on a :class:`~repro.obs.MetricsRegistry`
(``bufferpool_hits_total``, ``..._misses_total``, ``..._evictions_total``,
``..._flushes_total``, plus a ``bufferpool_resident_pages`` gauge); the
:class:`BufferPoolStats` dataclass remains the public read surface as a
snapshot view built from those counters.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs import MetricsRegistry
from repro.storage.page import Page


@dataclass(slots=True)
class BufferPoolStats:
    """Counters for cache behaviour (exported to the benchmarks)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPoolFullError(Exception):
    """Raised when every frame is pinned and a new page must come in."""


class BufferPool:
    """Caches up to ``capacity`` pages over a disk manager.

    Pages are pinned while in use and unpinned after; only unpinned pages
    are eviction candidates, evicted in least-recently-used order with
    dirty pages written back first.
    """

    def __init__(
        self,
        disk,
        capacity: int = 128,
        registry: MetricsRegistry | None = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_hits = self.registry.counter("bufferpool_hits_total")
        self._m_misses = self.registry.counter("bufferpool_misses_total")
        self._m_evictions = self.registry.counter("bufferpool_evictions_total")
        self._m_flushes = self.registry.counter("bufferpool_flushes_total")
        self._m_resident = self.registry.gauge("bufferpool_resident_pages")
        self._frames: OrderedDict[int, Page] = OrderedDict()

    @property
    def stats(self) -> BufferPoolStats:
        """A snapshot of the registry counters in the legacy dataclass shape."""
        return BufferPoolStats(
            hits=int(self._m_hits.value),
            misses=int(self._m_misses.value),
            evictions=int(self._m_evictions.value),
            flushes=int(self._m_flushes.value),
        )

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------

    def new_page(self) -> Page:
        """Allocate a fresh page on disk and return it pinned."""
        page_id = self.disk.allocate()
        self._make_room()
        page = Page(page_id)
        page.pin_count = 1
        page.dirty = True
        self._frames[page_id] = page
        self._m_resident.set(len(self._frames))
        return page

    def fetch(self, page_id: int) -> Page:
        """Return the page pinned, reading from disk on a miss."""
        page = self._frames.get(page_id)
        if page is not None:
            self._m_hits.inc()
            self._frames.move_to_end(page_id)
        else:
            self._m_misses.inc()
            self._make_room()
            page = Page(page_id, self.disk.read_page(page_id))
            self._frames[page_id] = page
            self._m_resident.set(len(self._frames))
        page.pin_count += 1
        return page

    def unpin(self, page: Page) -> None:
        if page.pin_count <= 0:
            raise ValueError(f"page {page.page_id} is not pinned")
        page.pin_count -= 1

    @contextmanager
    def pinned(self, page_id: int) -> Iterator[Page]:
        """``with pool.pinned(pid) as page:`` fetch/unpin pairing."""
        page = self.fetch(page_id)
        try:
            yield page
        finally:
            self.unpin(page)

    # ------------------------------------------------------------------
    # Write-back
    # ------------------------------------------------------------------

    def flush(self, page_id: int) -> None:
        page = self._frames.get(page_id)
        if page is not None and page.dirty:
            self.disk.write_page(page.page_id, bytes(page.data))
            page.dirty = False
            self._m_flushes.inc()

    def flush_all(self) -> None:
        for page_id in list(self._frames):
            self.flush(page_id)
        self.disk.sync()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @property
    def resident_page_ids(self) -> list[int]:
        return list(self._frames)

    def _make_room(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for page_id, page in self._frames.items():
            if page.pin_count == 0:
                if page.dirty:
                    self.disk.write_page(page.page_id, bytes(page.data))
                    self._m_flushes.inc()
                del self._frames[page_id]
                self._m_evictions.inc()
                self._m_resident.set(len(self._frames))
                return
        raise BufferPoolFullError(
            f"all {self.capacity} frames are pinned; cannot bring in a page"
        )
