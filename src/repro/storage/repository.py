"""The repository server: persistent history of superseded locations.

"Once a moving object or query sends new information, the old
information becomes persistent and is stored in a repository server"
(paper, Section 1.3).  :class:`HistoryRepository` implements that role:
an append-only heap file of :class:`LocationRecord` entries with an
in-memory per-object index for trajectory retrieval.
"""

from __future__ import annotations

from repro.storage.bufferpool import BufferPool
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.records import LocationRecord


class HistoryRepository:
    """Append-only location history with per-object retrieval."""

    def __init__(self, pool: BufferPool):
        self._file = HeapFile(pool)
        self._by_object: dict[int, list[RecordId]] = {}
        self._appended = 0

    @property
    def appended_count(self) -> int:
        """Total records ever appended (monotone counter)."""
        return self._appended

    def append(self, record: LocationRecord) -> RecordId:
        """Persist a superseded location report."""
        rid = self._file.insert(record.pack())
        self._by_object.setdefault(record.oid, []).append(rid)
        self._appended += 1
        return rid

    def history_of(self, oid: int) -> list[LocationRecord]:
        """All persisted reports for ``oid`` in append order."""
        return [
            LocationRecord.unpack(self._file.read(rid))
            for rid in self._by_object.get(oid, ())
        ]

    def trajectory_of(self, oid: int) -> list[tuple[float, float, float]]:
        """``(t, x, y)`` samples for ``oid`` — the stored trajectory."""
        return [
            (rec.t, rec.location.x, rec.location.y)
            for rec in self.history_of(oid)
        ]

    def tracked_objects(self) -> set[int]:
        return set(self._by_object)

    def record_count(self) -> int:
        return self._file.record_count()

    def rebuild_index(self) -> None:
        """Rebuild the per-object index by scanning the heap file.

        This is the crash-recovery path: the index is volatile, the heap
        file is the durable truth.
        """
        self._by_object.clear()
        count = 0
        for rid, payload in self._file.scan():
            record = LocationRecord.unpack(payload)
            self._by_object.setdefault(record.oid, []).append(rid)
            count += 1
        self._appended = count
