"""Binary codecs for the records the server persists.

The encoding is deliberately explicit (fixed-width little-endian struct
formats) because Figure 5 of the paper reports *answer sizes in
kilobytes*: a concrete wire/record encoding is required before any byte
count is meaningful.  The same sizes are used by ``repro.net`` for
message accounting, keeping stored and transmitted representations
consistent.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.geometry import Point, Rect, Velocity

_LOCATION = struct.Struct("<qdddd d")  # oid, x, y, vx, vy, t
# qid, kind, minx, miny, maxx, maxy, t, k, horizon — k and horizon are
# zero for kinds that do not use them.
_QUERY = struct.Struct("<qBdddd d q d")

_QUERY_KINDS = ("range", "knn", "predictive")


@dataclass(frozen=True, slots=True)
class LocationRecord:
    """A persisted object location report."""

    oid: int
    location: Point
    velocity: Velocity
    t: float

    SIZE = _LOCATION.size

    def pack(self) -> bytes:
        return _LOCATION.pack(
            self.oid,
            self.location.x,
            self.location.y,
            self.velocity.vx,
            self.velocity.vy,
            self.t,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "LocationRecord":
        oid, x, y, vx, vy, t = _LOCATION.unpack(payload)
        return cls(oid, Point(x, y), Velocity(vx, vy), t)


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """A persisted continuous-query registration or region update.

    ``region`` doubles as the anchor for k-NN queries (a degenerate
    rectangle at the focal point); ``k`` and ``horizon`` are meaningful
    only for the ``knn`` and ``predictive`` kinds respectively.
    """

    qid: int
    kind: str
    region: Rect
    t: float
    k: int = 0
    horizon: float = 0.0

    SIZE = _QUERY.size

    def pack(self) -> bytes:
        return _QUERY.pack(
            self.qid,
            _QUERY_KINDS.index(self.kind),
            self.region.min_x,
            self.region.min_y,
            self.region.max_x,
            self.region.max_y,
            self.t,
            self.k,
            self.horizon,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "QueryRecord":
        qid, kind_code, min_x, min_y, max_x, max_y, t, k, horizon = (
            _QUERY.unpack(payload)
        )
        return cls(
            qid,
            _QUERY_KINDS[kind_code],
            Rect(min_x, min_y, max_x, max_y),
            t,
            k,
            horizon,
        )
