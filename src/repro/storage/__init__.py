"""A small Shore-like storage manager.

The paper plans to "use a storage manager that is based on Shore to
store information and access structures for moving objects and moving
queries", and its PLACE environment persists superseded locations in a
*repository server*.  This package is that substrate, scaled to the
reproduction: fixed-size slotted pages, a disk (or in-memory) page
manager, an LRU buffer pool with pin/unpin semantics, heap files with
record identifiers, binary record codecs for object/query state, and an
append-only :class:`HistoryRepository` of past locations.

The engine runs entirely in memory; persistence is *write-behind* — the
server checkpoints its tables and appends history through this layer, so
the same update stream exercises a realistic storage path without
putting disk I/O on the query-evaluation critical path.
"""

from repro.storage.page import PAGE_SIZE, Page
from repro.storage.disk import DiskManager, InMemoryDiskManager
from repro.storage.bufferpool import BufferPool
from repro.storage.heapfile import HeapFile, RecordId
from repro.storage.records import LocationRecord, QueryRecord
from repro.storage.repository import HistoryRepository

__all__ = [
    "PAGE_SIZE",
    "Page",
    "DiskManager",
    "InMemoryDiskManager",
    "BufferPool",
    "HeapFile",
    "RecordId",
    "LocationRecord",
    "QueryRecord",
    "HistoryRepository",
]
