"""Slotted pages.

Layout of a 4 KiB page::

    +-----------------------+--------------------------->   <---------+
    | slot_count | free_end |  slot directory (grows ->) ... records  |
    +-----------------------+------------------------------------------+

* a 4-byte header: ``slot_count`` (uint16) and ``free_end`` (uint16, the
  offset one past the lowest byte used by record data, records grow
  *down* from the page end);
* a slot directory growing up from the header, 4 bytes per slot:
  ``offset`` (uint16) and ``length`` (uint16).  A deleted slot keeps its
  directory entry with ``offset == 0`` as a tombstone so record ids of
  live records never change.
"""

from __future__ import annotations

import struct

PAGE_SIZE = 4096

_HEADER = struct.Struct("<HH")
_SLOT = struct.Struct("<HH")
_HEADER_SIZE = _HEADER.size
_SLOT_SIZE = _SLOT.size


class PageFullError(Exception):
    """Raised when a record does not fit in the page's free space."""


class Page:
    """One fixed-size slotted page."""

    __slots__ = ("page_id", "data", "dirty", "pin_count")

    def __init__(self, page_id: int, data: bytes | None = None):
        self.page_id = page_id
        if data is None:
            self.data = bytearray(PAGE_SIZE)
            self._write_header(0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise ValueError(
                    f"page data must be {PAGE_SIZE} bytes, got {len(data)}"
                )
            self.data = bytearray(data)
        self.dirty = False
        self.pin_count = 0

    # ------------------------------------------------------------------
    # Header / slot directory access
    # ------------------------------------------------------------------

    def _read_header(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self.data, 0)

    def _write_header(self, slot_count: int, free_end: int) -> None:
        _HEADER.pack_into(self.data, 0, slot_count, free_end)

    def _read_slot(self, slot: int) -> tuple[int, int]:
        return _SLOT.unpack_from(self.data, _HEADER_SIZE + slot * _SLOT_SIZE)

    def _write_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(
            self.data, _HEADER_SIZE + slot * _SLOT_SIZE, offset, length
        )

    @property
    def slot_count(self) -> int:
        return self._read_header()[0]

    @property
    def free_space(self) -> int:
        """Bytes available for one more record *including* its new slot."""
        slot_count, free_end = self._read_header()
        directory_end = _HEADER_SIZE + slot_count * _SLOT_SIZE
        return max(0, free_end - directory_end - _SLOT_SIZE)

    # ------------------------------------------------------------------
    # Record operations
    # ------------------------------------------------------------------

    def insert(self, record: bytes) -> int:
        """Store ``record`` and return its slot number."""
        if not record:
            raise ValueError("empty records are not storable")
        if len(record) > self.free_space:
            raise PageFullError(
                f"record of {len(record)} bytes exceeds free space "
                f"{self.free_space}"
            )
        slot_count, free_end = self._read_header()
        offset = free_end - len(record)
        self.data[offset:free_end] = record
        self._write_slot(slot_count, offset, len(record))
        self._write_header(slot_count + 1, offset)
        self.dirty = True
        return slot_count

    def read(self, slot: int) -> bytes:
        """The record stored in ``slot``; raises KeyError on tombstones."""
        self._check_slot(slot)
        offset, length = self._read_slot(slot)
        if offset == 0:
            raise KeyError(f"slot {slot} is deleted")
        return bytes(self.data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone ``slot``.  Space is reclaimed by :meth:`compact`."""
        self._check_slot(slot)
        offset, __ = self._read_slot(slot)
        if offset == 0:
            raise KeyError(f"slot {slot} already deleted")
        self._write_slot(slot, 0, 0)
        self.dirty = True

    def is_live(self, slot: int) -> bool:
        self._check_slot(slot)
        return self._read_slot(slot)[0] != 0

    def live_slots(self) -> list[int]:
        return [s for s in range(self.slot_count) if self._read_slot(s)[0] != 0]

    def compact(self) -> None:
        """Slide live records to the page end, reclaiming tombstone space.

        Slot numbers are preserved (only offsets change), so record ids
        remain valid across compaction.
        """
        slot_count, __ = self._read_header()
        records: list[tuple[int, bytes]] = []
        for slot in range(slot_count):
            offset, length = self._read_slot(slot)
            if offset != 0:
                records.append((slot, bytes(self.data[offset : offset + length])))
        free_end = PAGE_SIZE
        for slot, payload in records:
            free_end -= len(payload)
            self.data[free_end : free_end + len(payload)] = payload
            self._write_slot(slot, free_end, len(payload))
        self._write_header(slot_count, free_end)
        self.dirty = True

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.slot_count:
            raise IndexError(f"slot {slot} out of range 0..{self.slot_count - 1}")
