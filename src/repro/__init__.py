"""repro — scalable incremental processing of continuous spatio-temporal queries.

A full reproduction of Mokbel, *Continuous Query Processing in
Spatio-temporal Databases* (EDBT 2004 Ph.D. workshop): one shared grid
indexes both moving objects and moving queries, bulk evaluation runs as
a spatial join over buffered updates, and clients receive only positive
and negative answer updates instead of complete answers.

Quick start::

    from repro import IncrementalEngine, Point, Rect

    engine = IncrementalEngine()
    engine.report_object(1, Point(0.52, 0.51), t=0.0)
    engine.register_range_query(100, Rect(0.5, 0.5, 0.6, 0.6))
    print(engine.evaluate(0.0))          # [(Q100, +p1)]
    engine.report_object(1, Point(0.9, 0.9), t=5.0)
    print(engine.evaluate(5.0))          # [(Q100, -p1)]

Subpackages: :mod:`repro.core` (the engine, server, clients),
:mod:`repro.grid`, :mod:`repro.rtree`, :mod:`repro.join`,
:mod:`repro.generator`, :mod:`repro.storage`, :mod:`repro.net`,
:mod:`repro.baselines`, :mod:`repro.lang`, :mod:`repro.stats`,
:mod:`repro.obs` (metrics registry, cycle tracer, exporters).
"""

from repro.geometry import Circle, LinearMotion, Point, Rect, Segment, Velocity
from repro.core import (
    Client,
    CycleResult,
    IncrementalEngine,
    LocationAwareServer,
    Update,
    apply_updates,
    diff_answers,
)
from repro.core.simulation import Simulation, SimulationConfig
from repro.generator import WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Rect",
    "Circle",
    "Segment",
    "Velocity",
    "LinearMotion",
    "Update",
    "diff_answers",
    "apply_updates",
    "IncrementalEngine",
    "LocationAwareServer",
    "Client",
    "CycleResult",
    "Simulation",
    "SimulationConfig",
    "WorkloadConfig",
    "__version__",
]
