"""Wire messages and their sizes.

Sizes follow the fixed-width encodings of :mod:`repro.storage.records`:
identifiers are 8 bytes, coordinates and timestamps are 8-byte doubles.
An incremental update tuple ``(Q, +/-A)`` is 17 bytes (two identifiers
plus a sign byte); a complete answer is 16 bytes of header plus 8 bytes
per member object — the quantities behind Figure 5's KB axis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect, Velocity

_ID_BYTES = 8
_FLOAT_BYTES = 8
_SIGN_BYTES = 1


class Message:
    """Base class so links can treat all traffic uniformly."""

    @property
    def size_bytes(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class UpdateMessage(Message):
    """A positive (``sign=+1``) or negative (``sign=-1``) update tuple."""

    qid: int
    oid: int
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")

    @property
    def size_bytes(self) -> int:
        return 2 * _ID_BYTES + _SIGN_BYTES


@dataclass(frozen=True, slots=True)
class FullAnswerMessage(Message):
    """A complete answer retransmission (what snapshot servers send)."""

    qid: int
    oids: frozenset[int]

    @property
    def size_bytes(self) -> int:
        return 2 * _ID_BYTES + len(self.oids) * _ID_BYTES


@dataclass(frozen=True, slots=True)
class ObjectReportMessage(Message):
    """Uplink: an object reports its location (and optional velocity)."""

    oid: int
    location: Point
    velocity: Velocity
    t: float

    @property
    def size_bytes(self) -> int:
        return _ID_BYTES + 5 * _FLOAT_BYTES


@dataclass(frozen=True, slots=True)
class QueryRegionMessage(Message):
    """Uplink: a moving query reports its new region."""

    qid: int
    region: Rect
    t: float

    @property
    def size_bytes(self) -> int:
        return _ID_BYTES + 5 * _FLOAT_BYTES


@dataclass(frozen=True, slots=True)
class KnnMoveMessage(Message):
    """Uplink: a moving k-NN query reports its new focal point.

    A k-NN move carries a center and a timestamp — not a rectangle —
    so its wire cost is 3 doubles plus the identifier, not the 5-double
    :class:`QueryRegionMessage` a range move pays.  (``k`` itself never
    changes after registration and is not re-sent.)
    """

    qid: int
    center: Point
    t: float

    @property
    def size_bytes(self) -> int:
        return _ID_BYTES + 3 * _FLOAT_BYTES


@dataclass(frozen=True, slots=True)
class ObjectRemovalMessage(Message):
    """Uplink: an object announces it is leaving the system."""

    oid: int

    @property
    def size_bytes(self) -> int:
        return _ID_BYTES


@dataclass(frozen=True, slots=True)
class WakeupMessage(Message):
    """Uplink: an out-of-sync client announces it reconnected."""

    client_id: int

    @property
    def size_bytes(self) -> int:
        return _ID_BYTES


@dataclass(frozen=True, slots=True)
class CommitMessage(Message):
    """Uplink: a stationary query acknowledges its current answer."""

    qid: int

    @property
    def size_bytes(self) -> int:
        return _ID_BYTES
