"""Per-client links and aggregate traffic statistics.

Traffic accounting is registry-backed (:mod:`repro.obs`): the familiar
:class:`NetworkStats` surface (``delivered_bytes``, ``by_type``, ...)
is now a view over named counters in a :class:`~repro.obs.MetricsRegistry`,
and every :class:`ClientLink` additionally maintains per-link series
(``link_*_total{client="N"}``) in the same registry — so one Prometheus
scrape shows both the aggregate downlink picture and which client is
dropping messages.
"""

from __future__ import annotations

from collections import Counter as TallyCounter

from repro.net.messages import Message
from repro.obs import MetricsRegistry

#: Fault-hook verdicts for one delivery attempt (see
#: :attr:`ClientLink.fault_hook`).  ``DELIVER`` is the no-fault path;
#: ``DROP`` loses the message on the wire; ``DUPLICATE`` delivers it
#: twice back to back; ``REORDER`` lets it overtake the previous inbox
#: message *if* they belong to different queries (per-query FIFO is a
#: protocol requirement — the commit/recovery machinery assumes a
#: client applies one query's updates in emission order — so same-qid
#: reordering is never injected).
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
REORDER = "reorder"

FAULT_ACTIONS = (DELIVER, DROP, DUPLICATE, REORDER)


class NetworkStats:
    """Aggregate traffic counters (downstream delivery plus uplink).

    Owns a private :class:`MetricsRegistry` unless one is injected —
    each server stack keeps its own series, and callers that want one
    process-wide pipe pass :func:`repro.obs.default_registry`.
    """

    __slots__ = (
        "registry",
        "_delivered_bytes",
        "_dropped_bytes",
        "_delivered_messages",
        "_dropped_messages",
        "_uplink_bytes",
        "_uplink_messages",
    )

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        counter = self.registry.counter
        self._delivered_bytes = counter("net_delivered_bytes_total")
        self._dropped_bytes = counter("net_dropped_bytes_total")
        self._delivered_messages = counter("net_delivered_messages_total")
        self._dropped_messages = counter("net_dropped_messages_total")
        self._uplink_bytes = counter("net_uplink_bytes_total")
        self._uplink_messages = counter("net_uplink_messages_total")

    # -- recording -----------------------------------------------------

    def record(self, message: Message, delivered: bool) -> None:
        kind = type(message).__name__
        if delivered:
            self._delivered_bytes.inc(message.size_bytes)
            self._delivered_messages.inc()
            self._tally(kind)
        else:
            self._dropped_bytes.inc(message.size_bytes)
            self._dropped_messages.inc()
            self._tally(f"dropped:{kind}")

    def record_uplink(self, message: Message) -> None:
        """Account one client-to-server message (reports, moves, commits)."""
        self._uplink_bytes.inc(message.size_bytes)
        self._uplink_messages.inc()
        self._tally(f"uplink:{type(message).__name__}")

    def _tally(self, kind: str) -> None:
        self.registry.counter("net_messages_total", labels={"type": kind}).inc()

    # -- the legacy read surface (snapshot views over the counters) ----

    @property
    def delivered_bytes(self) -> int:
        return int(self._delivered_bytes.value)

    @property
    def dropped_bytes(self) -> int:
        return int(self._dropped_bytes.value)

    @property
    def delivered_messages(self) -> int:
        return int(self._delivered_messages.value)

    @property
    def dropped_messages(self) -> int:
        return int(self._dropped_messages.value)

    @property
    def uplink_bytes(self) -> int:
        return int(self._uplink_bytes.value)

    @property
    def uplink_messages(self) -> int:
        return int(self._uplink_messages.value)

    @property
    def by_type(self) -> TallyCounter:
        """Per-message-kind tallies, rebuilt from the registry series."""
        tally: TallyCounter = TallyCounter()
        for instrument in self.registry.families().get("net_messages_total", []):
            tally[instrument.labels["type"]] = int(instrument.value)
        return tally


class ClientLink:
    """The downstream channel to one client.

    While disconnected, messages are *lost*, not queued — the paper's
    out-of-sync problem exists precisely because a cheap passive device
    misses whatever the server sent during the outage.  The link records
    what was lost only for accounting: per-link delivered/dropped
    message and byte counters plus a queued-depth gauge, all labelled
    ``client="<id>"`` in the owning stats registry.

    Two injectable hooks support the fault/consistency tooling:

    * ``fault_hook(link, message) -> action`` decides the fate of each
      delivery attempt (one of :data:`FAULT_ACTIONS`); ``None`` means
      no faults.  Faults apply only while connected — a disconnected
      link loses everything regardless.
    * ``delivery_observer(client_id, message, delivered)`` is called
      once per wire outcome (including each duplicate copy), letting
      the consistency oracle mirror exactly what the client will see
      without draining the inbox.
    """

    def __init__(self, client_id: int, stats: NetworkStats | None = None):
        self.client_id = client_id
        self.connected = True
        self.stats = stats if stats is not None else NetworkStats()
        self.fault_hook = None
        self.delivery_observer = None
        self._inbox: list[Message] = []
        registry = self.stats.registry
        labels = {"client": str(client_id)}
        self._m_delivered = registry.counter(
            "link_delivered_messages_total", labels=labels
        )
        self._m_delivered_bytes = registry.counter(
            "link_delivered_bytes_total", labels=labels
        )
        self._m_dropped = registry.counter(
            "link_dropped_messages_total", labels=labels
        )
        self._m_dropped_bytes = registry.counter(
            "link_dropped_bytes_total", labels=labels
        )
        self._m_queued = registry.gauge("link_queued_messages", labels=labels)
        self._m_connected = registry.gauge("link_connected", labels=labels)
        self._m_connected.set(1.0)

    def disconnect(self) -> None:
        self.connected = False
        self._m_connected.set(0.0)

    def reconnect(self) -> None:
        self.connected = True
        self._m_connected.set(1.0)

    def deliver(self, message: Message) -> bool:
        """Send ``message``; returns whether the client received it."""
        action = DELIVER
        if self.connected and self.fault_hook is not None:
            action = self.fault_hook(self, message)
        if not self.connected or action == DROP:
            self.stats.record(message, delivered=False)
            self._m_dropped.inc()
            self._m_dropped_bytes.inc(message.size_bytes)
            # Refresh the queue-depth gauge on every outcome: a client
            # that disconnects mid-cycle must not export the stale depth
            # of its last successful delivery until the next drain.
            self._m_queued.set(len(self._inbox))
            self._notify(message, False)
            return False
        self._accept(message, reorder=(action == REORDER))
        if action == DUPLICATE:
            self._accept(message, reorder=False)
        self._m_queued.set(len(self._inbox))
        return True

    def _accept(self, message: Message, reorder: bool) -> None:
        """Put one delivered copy in the inbox, with full accounting."""
        self.stats.record(message, delivered=True)
        self._m_delivered.inc()
        self._m_delivered_bytes.inc(message.size_bytes)
        inbox = self._inbox
        if reorder and inbox and self._reorderable(inbox[-1], message):
            inbox.insert(len(inbox) - 1, message)
        else:
            inbox.append(message)
        self._notify(message, True)

    @staticmethod
    def _reorderable(previous: Message, message: Message) -> bool:
        """Cross-query overtaking only: per-query FIFO is load-bearing."""
        prev_qid = getattr(previous, "qid", None)
        qid = getattr(message, "qid", None)
        return prev_qid is not None and qid is not None and prev_qid != qid

    def _notify(self, message: Message, delivered: bool) -> None:
        if self.delivery_observer is not None:
            self.delivery_observer(self.client_id, message, delivered)

    def drain(self) -> list[Message]:
        """Messages received since the last drain (the client's mailbox)."""
        received = self._inbox
        self._inbox = []
        self._m_queued.set(0.0)
        return received
