"""Per-client links and aggregate traffic statistics.

Traffic accounting is registry-backed (:mod:`repro.obs`): the familiar
:class:`NetworkStats` surface (``delivered_bytes``, ``by_type``, ...)
is now a view over named counters in a :class:`~repro.obs.MetricsRegistry`,
and every :class:`ClientLink` additionally maintains per-link series
(``link_*_total{client="N"}``) in the same registry — so one Prometheus
scrape shows both the aggregate downlink picture and which client is
dropping messages.
"""

from __future__ import annotations

from collections import Counter as TallyCounter

from repro.net.messages import Message
from repro.obs import MetricsRegistry


class NetworkStats:
    """Aggregate traffic counters (downstream delivery plus uplink).

    Owns a private :class:`MetricsRegistry` unless one is injected —
    each server stack keeps its own series, and callers that want one
    process-wide pipe pass :func:`repro.obs.default_registry`.
    """

    __slots__ = (
        "registry",
        "_delivered_bytes",
        "_dropped_bytes",
        "_delivered_messages",
        "_dropped_messages",
        "_uplink_bytes",
        "_uplink_messages",
    )

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        counter = self.registry.counter
        self._delivered_bytes = counter("net_delivered_bytes_total")
        self._dropped_bytes = counter("net_dropped_bytes_total")
        self._delivered_messages = counter("net_delivered_messages_total")
        self._dropped_messages = counter("net_dropped_messages_total")
        self._uplink_bytes = counter("net_uplink_bytes_total")
        self._uplink_messages = counter("net_uplink_messages_total")

    # -- recording -----------------------------------------------------

    def record(self, message: Message, delivered: bool) -> None:
        kind = type(message).__name__
        if delivered:
            self._delivered_bytes.inc(message.size_bytes)
            self._delivered_messages.inc()
            self._tally(kind)
        else:
            self._dropped_bytes.inc(message.size_bytes)
            self._dropped_messages.inc()
            self._tally(f"dropped:{kind}")

    def record_uplink(self, message: Message) -> None:
        """Account one client-to-server message (reports, moves, commits)."""
        self._uplink_bytes.inc(message.size_bytes)
        self._uplink_messages.inc()
        self._tally(f"uplink:{type(message).__name__}")

    def _tally(self, kind: str) -> None:
        self.registry.counter("net_messages_total", labels={"type": kind}).inc()

    # -- the legacy read surface (snapshot views over the counters) ----

    @property
    def delivered_bytes(self) -> int:
        return int(self._delivered_bytes.value)

    @property
    def dropped_bytes(self) -> int:
        return int(self._dropped_bytes.value)

    @property
    def delivered_messages(self) -> int:
        return int(self._delivered_messages.value)

    @property
    def dropped_messages(self) -> int:
        return int(self._dropped_messages.value)

    @property
    def uplink_bytes(self) -> int:
        return int(self._uplink_bytes.value)

    @property
    def uplink_messages(self) -> int:
        return int(self._uplink_messages.value)

    @property
    def by_type(self) -> TallyCounter:
        """Per-message-kind tallies, rebuilt from the registry series."""
        tally: TallyCounter = TallyCounter()
        for instrument in self.registry.families().get("net_messages_total", []):
            tally[instrument.labels["type"]] = int(instrument.value)
        return tally


class ClientLink:
    """The downstream channel to one client.

    While disconnected, messages are *lost*, not queued — the paper's
    out-of-sync problem exists precisely because a cheap passive device
    misses whatever the server sent during the outage.  The link records
    what was lost only for accounting: per-link delivered/dropped
    message and byte counters plus a queued-depth gauge, all labelled
    ``client="<id>"`` in the owning stats registry.
    """

    def __init__(self, client_id: int, stats: NetworkStats | None = None):
        self.client_id = client_id
        self.connected = True
        self.stats = stats if stats is not None else NetworkStats()
        self._inbox: list[Message] = []
        registry = self.stats.registry
        labels = {"client": str(client_id)}
        self._m_delivered = registry.counter(
            "link_delivered_messages_total", labels=labels
        )
        self._m_delivered_bytes = registry.counter(
            "link_delivered_bytes_total", labels=labels
        )
        self._m_dropped = registry.counter(
            "link_dropped_messages_total", labels=labels
        )
        self._m_dropped_bytes = registry.counter(
            "link_dropped_bytes_total", labels=labels
        )
        self._m_queued = registry.gauge("link_queued_messages", labels=labels)
        self._m_connected = registry.gauge("link_connected", labels=labels)
        self._m_connected.set(1.0)

    def disconnect(self) -> None:
        self.connected = False
        self._m_connected.set(0.0)

    def reconnect(self) -> None:
        self.connected = True
        self._m_connected.set(1.0)

    def deliver(self, message: Message) -> bool:
        """Send ``message``; returns whether the client received it."""
        self.stats.record(message, delivered=self.connected)
        if self.connected:
            self._inbox.append(message)
            self._m_delivered.inc()
            self._m_delivered_bytes.inc(message.size_bytes)
            self._m_queued.set(len(self._inbox))
            return True
        self._m_dropped.inc()
        self._m_dropped_bytes.inc(message.size_bytes)
        return False

    def drain(self) -> list[Message]:
        """Messages received since the last drain (the client's mailbox)."""
        received = self._inbox
        self._inbox = []
        self._m_queued.set(0.0)
        return received
