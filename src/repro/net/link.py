"""Per-client links and aggregate traffic statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.messages import Message


@dataclass(slots=True)
class NetworkStats:
    """Aggregate traffic counters (downstream delivery plus uplink)."""

    delivered_bytes: int = 0
    dropped_bytes: int = 0
    delivered_messages: int = 0
    dropped_messages: int = 0
    uplink_bytes: int = 0
    uplink_messages: int = 0
    by_type: Counter = field(default_factory=Counter)

    def record(self, message: Message, delivered: bool) -> None:
        kind = type(message).__name__
        if delivered:
            self.delivered_bytes += message.size_bytes
            self.delivered_messages += 1
            self.by_type[kind] += 1
        else:
            self.dropped_bytes += message.size_bytes
            self.dropped_messages += 1
            self.by_type[f"dropped:{kind}"] += 1

    def record_uplink(self, message: Message) -> None:
        """Account one client-to-server message (reports, moves, commits)."""
        self.uplink_bytes += message.size_bytes
        self.uplink_messages += 1
        self.by_type[f"uplink:{type(message).__name__}"] += 1


class ClientLink:
    """The downstream channel to one client.

    While disconnected, messages are *lost*, not queued — the paper's
    out-of-sync problem exists precisely because a cheap passive device
    misses whatever the server sent during the outage.  The link records
    what was lost only for accounting.
    """

    def __init__(self, client_id: int, stats: NetworkStats | None = None):
        self.client_id = client_id
        self.connected = True
        self.stats = stats if stats is not None else NetworkStats()
        self._inbox: list[Message] = []

    def disconnect(self) -> None:
        self.connected = False

    def reconnect(self) -> None:
        self.connected = True

    def deliver(self, message: Message) -> bool:
        """Send ``message``; returns whether the client received it."""
        self.stats.record(message, delivered=self.connected)
        if self.connected:
            self._inbox.append(message)
            return True
        return False

    def drain(self) -> list[Message]:
        """Messages received since the last drain (the client's mailbox)."""
        received = self._inbox
        self._inbox = []
        return received
