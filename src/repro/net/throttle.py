"""Bandwidth-limited delivery.

The paper's fourth challenge: "Sending the whole answer each time
consumes the network bandwidth and results in network congestion at the
server side, thus degrading the ability of the server to process more
queries."  A :class:`ThrottledLink` models the constrained downlink: a
per-cycle byte budget, messages beyond it dropped (the satellite slot is
gone — there is no queueing for stale location data).  The congestion
benchmark measures how much of each server's output actually fits.
"""

from __future__ import annotations

from repro.net.link import ClientLink, NetworkStats
from repro.net.messages import Message


class ThrottledLink(ClientLink):
    """A client link with a per-cycle downstream byte budget."""

    def __init__(
        self,
        client_id: int,
        budget_bytes_per_cycle: int,
        stats: NetworkStats | None = None,
    ):
        if budget_bytes_per_cycle <= 0:
            raise ValueError(
                f"budget must be positive, got {budget_bytes_per_cycle}"
            )
        super().__init__(client_id, stats)
        self.budget_bytes_per_cycle = budget_bytes_per_cycle
        self._spent_this_cycle = 0
        self.throttled_messages = 0
        self.throttled_bytes = 0
        # Per-link throttle series next to the base link counters.
        self._m_throttled = self.stats.registry.counter(
            "link_throttled_messages_total", labels={"client": str(client_id)}
        )
        self._m_throttled_bytes = self.stats.registry.counter(
            "link_throttled_bytes_total", labels={"client": str(client_id)}
        )

    @property
    def remaining_budget(self) -> int:
        return max(0, self.budget_bytes_per_cycle - self._spent_this_cycle)

    def new_cycle(self) -> None:
        """Start a fresh evaluation period: the budget resets."""
        self._spent_this_cycle = 0

    def deliver(self, message: Message) -> bool:
        """Deliver within budget; over-budget messages are lost.

        Throttled messages are recorded separately from disconnection
        drops so the congestion benchmark can tell the two apart.  The
        budget is charged only when the base link *accepts* the
        delivery: a message lost to disconnection or an injected fault
        never occupied the wire slot, so it must not starve the
        in-cycle messages that follow it.
        """
        if message.size_bytes > self.remaining_budget:
            self.throttled_messages += 1
            self.throttled_bytes += message.size_bytes
            self._m_throttled.inc()
            self._m_throttled_bytes.inc(message.size_bytes)
            self.stats.record(message, delivered=False)
            self._notify(message, False)
            return False
        delivered = super().deliver(message)
        if delivered:
            self._spent_this_cycle += message.size_bytes
        return delivered
