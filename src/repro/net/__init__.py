"""Simulated network between the location-aware server and its clients.

The paper's headline measurement (Figure 5) is the *size of the answer*
shipped downstream: incremental positive/negative updates versus the
complete answer a snapshot server re-sends every period.  This package
pins down a concrete wire encoding for every message type, models
per-client links that can disconnect and reconnect (the out-of-sync
scenario of Section 3.3), and aggregates byte counters for the
benchmarks.

Links carry injectable fault hooks (:data:`FAULT_ACTIONS`) and a
delivery observer so :mod:`repro.faults` can perturb the wire and
:mod:`repro.check` can watch it without changing what clients see.
"""

from repro.net.messages import (
    CommitMessage,
    FullAnswerMessage,
    KnnMoveMessage,
    Message,
    ObjectRemovalMessage,
    ObjectReportMessage,
    QueryRegionMessage,
    UpdateMessage,
    WakeupMessage,
)
from repro.net.link import (
    DELIVER,
    DROP,
    DUPLICATE,
    FAULT_ACTIONS,
    REORDER,
    ClientLink,
    NetworkStats,
)
from repro.net.throttle import ThrottledLink

__all__ = [
    "Message",
    "UpdateMessage",
    "FullAnswerMessage",
    "ObjectReportMessage",
    "ObjectRemovalMessage",
    "QueryRegionMessage",
    "KnnMoveMessage",
    "WakeupMessage",
    "CommitMessage",
    "ClientLink",
    "NetworkStats",
    "ThrottledLink",
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "REORDER",
    "FAULT_ACTIONS",
]
