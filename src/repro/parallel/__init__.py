"""Multi-core bulk evaluation: shard planning, worker pool, merge.

The engine's bulk-evaluation step — join all buffered object moves
against all resident queries on the shared grid — is embarrassingly
parallel by spatial region.  ``IncrementalEngine(pipeline="parallel")``
partitions the grid's cell space into K contiguous row-striped shards,
dispatches each shard's cell-transition cohorts to a persistent worker
pool as flat struct-of-arrays snapshots, evaluates shard-boundary
cohorts on the coordinator while the workers run, and merges the
per-shard delta lists back into one stream ordered identically to the
serial pipelines (golden equivalence, byte for byte).

Pieces:

* :mod:`repro.parallel.planner` — shard assignment + payload building;
* :mod:`repro.parallel.worker`  — the pure per-shard membership pass;
* :mod:`repro.parallel.pool`    — executor lifecycle (process/thread);
* :mod:`repro.parallel.merge`   — deterministic seq-ordered merge.
"""

from repro.parallel.merge import merge_ordered
from repro.parallel.planner import ShardPlan, build_shard_payloads, plan_shards
from repro.parallel.pool import ParallelConfig, SimulatedWorkerCrash, WorkerPool
from repro.parallel.worker import evaluate_shard

__all__ = [
    "ParallelConfig",
    "ShardPlan",
    "SimulatedWorkerCrash",
    "WorkerPool",
    "build_shard_payloads",
    "evaluate_shard",
    "merge_ordered",
    "plan_shards",
]
