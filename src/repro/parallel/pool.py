"""Worker-pool lifecycle for the parallel pipeline.

One :class:`WorkerPool` lives for the lifetime of its engine: the
executor is created lazily on the first dispatched batch (an engine
configured with ``pipeline="parallel"`` that only ever sees small
batches never pays for a pool) and persists across evaluations so
process startup is amortised over the run.

Backends:

* ``"process"`` — ``concurrent.futures.ProcessPoolExecutor``; true
  multi-core execution, payloads cross by pickling.  The default for
  ``workers > 1``.
* ``"thread"`` — ``concurrent.futures.ThreadPoolExecutor``; no pickling
  and no extra interpreters, used as the fallback for single-core
  hosts and as the deterministic low-overhead backend in tests.  Under
  the GIL it adds no speedup, but it exercises the identical plan /
  worker / merge path.
* ``"auto"`` — ``"process"`` when more than one worker is configured,
  else ``"thread"``.

A broken pool (a worker killed mid-batch) never corrupts an
evaluation: payloads are pure snapshots, so the coordinator re-runs a
failed shard inline and resets the executor for the next batch.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

_BACKENDS = ("auto", "process", "thread")


class SimulatedWorkerCrash(RuntimeError):
    """Raised inside a shard future by an injected crash hook.

    Stands in for a worker process killed mid-batch; the coordinator's
    recovery path (reset the pool, re-run the shard inline) must treat
    it exactly like the real thing.
    """


@dataclass(frozen=True, slots=True)
class ParallelConfig:
    """Tuning knobs for ``IncrementalEngine(pipeline="parallel")``.

    ``workers`` defaults to ``os.cpu_count()``; ``min_batch`` is the
    buffered-report count below which dispatch overhead cannot pay for
    itself and the batch is evaluated inline on the coordinator (the
    serial cell-batched code path, still byte-identical output).
    """

    workers: int = 0  # 0 -> os.cpu_count()
    backend: str = "auto"
    min_batch: int = 2048

    def __post_init__(self) -> None:
        if self.workers == 0:
            object.__setattr__(self, "workers", os.cpu_count() or 1)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {self.backend!r}"
            )
        if self.min_batch < 0:
            raise ValueError(f"min_batch must be >= 0, got {self.min_batch}")

    @property
    def resolved_backend(self) -> str:
        """The backend actually used: ``auto`` picks processes when more
        than one worker is configured, threads otherwise."""
        if self.backend != "auto":
            return self.backend
        return "process" if self.workers > 1 else "thread"


class WorkerPool:
    """A lazily-started, restartable executor bound to one config."""

    def __init__(self, config: ParallelConfig):
        self.config = config
        self._executor: Executor | None = None
        # Fault injection: ``crash_hook(payload) -> bool``; True makes
        # that shard's future fail with SimulatedWorkerCrash instead of
        # reaching a worker, exercising the coordinator's recovery path
        # without actually killing an executor.  ``None`` disables.
        self.crash_hook = None
        # Optional flight recorder (duck-typed; anything with a
        # ``record(kind, **data)`` method).  Pool resets are exactly the
        # rare lifecycle events a black box should remember.
        self.recorder = None

    @property
    def started(self) -> bool:
        return self._executor is not None

    def _ensure(self) -> Executor:
        if self._executor is None:
            if self.config.resolved_backend == "process":
                self._executor = ProcessPoolExecutor(
                    max_workers=self.config.workers
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.config.workers,
                    thread_name_prefix="repro-shard",
                )
        return self._executor

    def submit(self, fn, payloads: list) -> list[Future]:
        """Submit one task per payload; on a dead executor, fall back to
        inline execution wrapped in completed futures (the caller's
        gather path stays uniform)."""
        if self.crash_hook is not None:
            return [self._submit_one(fn, payload) for payload in payloads]
        try:
            executor = self._ensure()
            return [executor.submit(fn, payload) for payload in payloads]
        except (RuntimeError, OSError):
            self.reset()
            futures = []
            for payload in payloads:
                future: Future = Future()
                try:
                    future.set_result(fn(payload))
                except BaseException as exc:  # pragma: no cover - defensive
                    future.set_exception(exc)
                futures.append(future)
            return futures

    def _submit_one(self, fn, payload) -> Future:
        """Crash-hook-aware single submission (injection path only)."""
        if self.crash_hook(payload):
            future: Future = Future()
            future.set_exception(
                SimulatedWorkerCrash(
                    "fault injection killed the worker for this shard"
                )
            )
            return future
        try:
            return self._ensure().submit(fn, payload)
        except (RuntimeError, OSError):
            self.reset()
            future = Future()
            try:
                future.set_result(fn(payload))
            except BaseException as exc:  # pragma: no cover - defensive
                future.set_exception(exc)
            return future

    def reset(self) -> None:
        """Tear down a (possibly broken) executor; the next submit
        builds a fresh one."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        if self.recorder is not None:
            self.recorder.record(
                "pool_reset", backend=self.config.resolved_backend
            )

    def close(self) -> None:
        """Shut the pool down and wait for workers to exit."""
        executor = self._executor
        self._executor = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
