"""Deterministic merge of per-shard deltas into the serial update stream.

Workers return ``(seq, deltas, knn_qids)`` per cohort, where ``deltas``
are ``(qid, oid, sign)`` triples in exact serial emission order for
that cohort; boundary cohorts were evaluated on the coordinator and
already carry update streams in the engine's emission representation.
The merge walks sequence numbers ``0..total-1`` and emits each
cohort's contribution verbatim, so the final stream is byte-identical
to the one the serial cell-batched pipeline would have produced.

Applying a worker delta mutates the authoritative state the worker
could not touch: the query's answer set and the object's reverse
``answered`` set.  Pair outcomes are independent (each (query, object)
pair is evaluated at most once per batch), so applying strictly in
sequence order is both deterministic and correct.

Emission goes through the stream's ``push`` / ``extend_columns``
contract (:class:`repro.core.updates.UpdateBatch` and its materialised
twin both implement it); boundary streams are duck-typed on their
column attributes because the engine imports this module, so importing
:mod:`repro.core` from here would be circular.
"""

from __future__ import annotations


def merge_ordered(
    total: int,
    boundary_updates: dict[int, object],
    shard_deltas: dict[int, list[tuple[int, int, int]]],
    queries,
    objects,
    updates,
) -> tuple[int, int]:
    """Append every cohort's updates to ``updates`` in sequence order,
    applying worker deltas to engine state as they are emitted.

    Returns ``(boundary_emitted, shard_emitted)`` — how many updates
    came from coordinator-evaluated boundary cohorts versus worker
    deltas, which the flight recorder logs per merge.
    """
    push = updates.push
    extend_columns = updates.extend_columns
    boundary_emitted = 0
    shard_emitted = 0
    for seq in range(total):
        ready = boundary_updates.get(seq)
        if ready is not None:
            cols = getattr(ready, "qids", None)
            if cols is not None:
                extend_columns(cols, ready.oids, ready.signs)
            else:
                updates.extend(ready)
            boundary_emitted += len(ready)
            continue
        deltas = shard_deltas.get(seq)
        if not deltas:
            continue
        shard_emitted += len(deltas)
        for qid, oid, sign in deltas:
            if sign > 0:
                queries[qid].answer.add(oid)
                objects[oid].answered.add(qid)
            else:
                queries[qid].answer.discard(oid)
                objects[oid].answered.discard(qid)
            push(qid, oid, sign)
    return boundary_emitted, shard_emitted
