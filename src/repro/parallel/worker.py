"""The shard worker: a pure function over a flat snapshot.

:func:`evaluate_shard` is the code that runs inside pool workers.  It
re-implements the engine's per-cohort membership pass
(:meth:`IncrementalEngine._evaluate_cohort`) over the planner's
struct-of-arrays payload instead of live engine state, and it MUST
mirror that method's iteration order exactly — cells in cohort order,
partial entries before covering entries, entries sorted, objects
sorted by oid, then the answered sweep in sorted qid order — because
the coordinator merge concatenates per-cohort delta lists verbatim and
the golden-equivalence contract is a byte-identical update stream.

Membership is tested through the object side of the bookkeeping
invariant: ``oid in query.answer`` if and only if ``qid in
state.answered`` (checked by ``IncrementalEngine.check_invariants``),
so a worker only needs each object's answered-qid set, never any
query's (potentially huge) answer set.  Each (query, object) pair is
evaluated at most once per batch — objects belong to exactly one
cohort and the seen-qid dedup mirrors the serial pass — so pair
outcomes are independent and the coordinator can apply the returned
deltas in any state order as long as it *emits* them in cohort
sequence order.

This module deliberately imports nothing from the rest of ``repro``:
everything a worker needs travels inside the payload, which keeps the
pickled closure tiny and the module importable in spawn-started
interpreters without dragging the full package graph in.
"""

from __future__ import annotations

from time import perf_counter

#: Query-kind codes used in payload descriptors (enum members would
#: pickle fine but cost more and say less on the wire).
KIND_RANGE = 0
KIND_KNN = 1
KIND_PREDICTIVE = 2

_EMPTY: frozenset[int] = frozenset()


def _by_oid(row):
    return row[0]

#: Resolved candidate split for a cell with no queries (shared).
_NO_CANDIDATES = ((), (), _EMPTY, (), _EMPTY)


def _resolve_cell(cell, cell_qids, qdesc, grid_n, wmin_x, wmin_y, cell_w, cell_h):
    """Split one cell's queries into (partial, covering, covering_qids,
    knn_qids, all_qids) — the worker-side mirror of the engine's
    ``_cell_candidates`` minus the aliased answer sets."""
    qids = cell_qids.get(cell, ())
    if not qids:
        return _NO_CANDIDATES
    row, col = divmod(cell, grid_n)
    c_min_x = wmin_x + col * cell_w
    c_min_y = wmin_y + row * cell_h
    c_max_x = wmin_x + (col + 1) * cell_w
    c_max_y = wmin_y + (row + 1) * cell_h
    partial = []
    covering = []
    knn_qids = []
    for qid in qids:
        kind, min_x, min_y, max_x, max_y = qdesc[qid]
        if kind == KIND_RANGE:
            entry = (qid, min_x, min_y, max_x, max_y)
            if (
                min_x <= c_min_x
                and min_y <= c_min_y
                and max_x >= c_max_x
                and max_y >= c_max_y
            ):
                covering.append(entry)
            else:
                partial.append(entry)
        elif kind == KIND_KNN:
            knn_qids.append(qid)
    partial.sort()
    covering.sort()
    knn_qids.sort()
    return (
        partial,
        covering,
        frozenset(entry[0] for entry in covering),
        knn_qids,
        frozenset(qids),
    )


def evaluate_shard(payload):
    """Evaluate one shard's cohorts against its candidate snapshot.

    ``payload`` is the tuple built by
    :func:`repro.parallel.planner.build_shard_payloads`::

        (shard_id,
         (grid_n, world_min_x, world_min_y, cell_w, cell_h),
         {cell: (qid, ...)},                    # cell query snapshot
         {qid: (kind, min_x, min_y, max_x, max_y)},  # descriptors
         [(seq, cells, rows, stay_put, point_pair), ...],
         (parent_span_id,))                     # trace context

    where ``rows`` is the cohort's object SoA: ``(oid, x, y,
    answered_qids)`` tuples.  Returns ``(shard_id, elapsed_seconds,
    [(seq, deltas, knn_qids), ...], (parent_span_id, spans))`` with
    ``deltas`` being ``(qid, oid, sign)`` triples in exact serial
    emission order and ``spans`` the worker's phase timings as
    ``(name, start_relative_to_dispatch, duration)`` triples — the
    coordinator re-anchors them under its own cycle span via
    :meth:`repro.obs.Tracer.record_remote`, so trace context survives
    the process boundary without the worker importing the tracer.
    """
    shard_id, grid_params, cell_qids, qdesc, cohorts, trace_ctx = payload
    grid_n, wmin_x, wmin_y, cell_w, cell_h = grid_params
    started = perf_counter()  # timing: allowed — no tracer across the process boundary
    cache: dict[int, tuple] = {}
    # Phase 1: resolve every touched cell's candidate split up front.
    # _resolve_cell is pure, so hoisting it out of the cohort loop is
    # behaviour-preserving and gives the phase a clean span boundary.
    for _seq, cells, _rows, _stay_put, _point_pair in cohorts:
        for cell in cells:
            if cell not in cache:
                cache[cell] = _resolve_cell(
                    cell, cell_qids, qdesc,
                    grid_n, wmin_x, wmin_y, cell_w, cell_h,
                )
    resolved_at = perf_counter()  # timing: allowed — phase boundary for remote spans
    results = []
    for seq, cells, rows, stay_put, point_pair in cohorts:
        deltas: list[tuple[int, int, int]] = []
        append = deltas.append
        knn_dirty: set[int] = set()
        cached_cells = []
        for cell in cells:
            cached = cache[cell]
            cached_cells.append(cached)
            if cached[3]:
                knn_dirty.update(cached[3])
        skip_cover: frozenset[int] = _EMPTY
        if point_pair and len(cached_cells) == 2:
            skip_cover = cached_cells[0][2] & cached_cells[1][2]
        multi = len(cells) > 1
        # answered ships as a tuple; build the mutable working sets here
        # so the payload stays immutable and a shard is re-runnable
        # (the coordinator re-executes payloads inline on pool failure).
        work = [(oid, x, y, set(answered)) for oid, x, y, answered in rows]
        work.sort(key=_by_oid)
        seen_qids: frozenset[int] | set[int] = _EMPTY
        if multi:
            seen_qids = set()
        for cached in cached_cells:
            if stay_put:
                entry_lists = (cached[0],)
            else:
                entry_lists = (cached[0], cached[1])
            for entries in entry_lists:
                for qid, min_x, min_y, max_x, max_y in entries:
                    if multi and (qid in seen_qids or qid in skip_cover):
                        continue
                    for oid, x, y, answered in work:
                        if min_x <= x <= max_x and min_y <= y <= max_y:
                            if qid not in answered:
                                answered.add(qid)
                                append((qid, oid, 1))
                        elif qid in answered:
                            answered.discard(qid)
                            append((qid, oid, -1))
            if multi:
                seen_qids.update(cached[4])  # type: ignore[union-attr]
            else:
                seen_qids = cached[4]
        # Answered sweep: queries the object left entirely behind.
        for oid, x, y, answered in work:
            if not answered or answered <= seen_qids:
                continue
            for qid in sorted(answered - seen_qids):
                kind, min_x, min_y, max_x, max_y = qdesc[qid]
                if kind == KIND_RANGE:
                    if not (min_x <= x <= max_x and min_y <= y <= max_y):
                        answered.discard(qid)
                        append((qid, oid, -1))
                elif kind == KIND_KNN:
                    knn_dirty.add(qid)
        results.append((seq, deltas, tuple(knn_dirty)))
    finished = perf_counter()  # timing: allowed — phase boundary for remote spans
    spans = (
        ("shard_resolve_cells", 0.0, resolved_at - started),
        ("shard_evaluate_cohorts", resolved_at - started, finished - resolved_at),
    )
    parent_span_id = trace_ctx[0] if trace_ctx else 0
    return shard_id, finished - started, results, (parent_span_id, spans)
