"""Shard planning for the parallel bulk-evaluation pipeline.

The coordinator has already applied the batch's reports to object state
and the grid index and grouped them into cell-transition cohorts (the
serial pipelines' phase 5a).  The planner's job is to decide *where*
each cohort's membership pass runs:

* a cohort whose old∪new cells all fall inside one row-striped shard
  (``Grid.shard_of_cell``) is dispatched to that shard's worker;
* a cohort that straddles a shard boundary — an object whose cell
  transition crosses bands, or a predictive footprint spanning bands —
  lands in the **boundary cohort**, evaluated on the coordinator while
  the workers run.

Each cohort keeps its serial sequence number, so the merge can emit the
exact serial stream.  Note that a *query* spanning several shards needs
no special casing: two shards may both touch it, but through different
objects (an object belongs to exactly one cohort), and each worker
tests membership via the object-side ``answered`` snapshot rather than
the shared answer set — so per-pair outcomes commute and only emission
order matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.worker import KIND_KNN, KIND_PREDICTIVE, KIND_RANGE

#: A cohort as the engine's cohort iterator yields it:
#: (cells, states, stay_put, point_pair).
Cohort = tuple


@dataclass(slots=True)
class ShardPlan:
    """Which cohorts run where, all tagged with serial sequence numbers."""

    shards: int
    #: shard id -> [(seq, cells, states, stay_put, point_pair), ...]
    shard_cohorts: dict[int, list[tuple]] = field(default_factory=dict)
    #: [(seq, cells, states, stay_put, point_pair), ...] for the coordinator
    boundary: list[tuple] = field(default_factory=list)
    total: int = 0

    @property
    def dispatched(self) -> int:
        return self.total - len(self.boundary)


def plan_shards(cohorts: list[Cohort], grid, shards: int) -> ShardPlan:
    """Assign each cohort to its owning shard or to the boundary set."""
    plan = ShardPlan(shards=shards)
    shard_cohorts = plan.shard_cohorts
    boundary = plan.boundary
    n = grid.n
    for seq, (cells, states, stay_put, point_pair) in enumerate(cohorts):
        cell_iter = iter(cells)
        shard = (next(cell_iter) // n) * shards // n
        for cell in cell_iter:
            if (cell // n) * shards // n != shard:
                boundary.append((seq, cells, states, stay_put, point_pair))
                break
        else:
            bucket = shard_cohorts.get(shard)
            if bucket is None:
                shard_cohorts[shard] = [
                    (seq, cells, states, stay_put, point_pair)
                ]
            else:
                bucket.append((seq, cells, states, stay_put, point_pair))
    plan.total = len(cohorts)
    return plan


def _descriptor(query):
    """Flatten one query to its wire descriptor (kind + range bounds).

    Kind is matched on ``QueryKind.value`` strings rather than enum
    identity so this module never imports :mod:`repro.core` (the engine
    imports us; a state import here would be circular).
    """
    kind = query.kind.value
    if kind == "range":
        region = query.region
        return (
            KIND_RANGE,
            region.min_x,
            region.min_y,
            region.max_x,
            region.max_y,
        )
    if kind == "knn":
        return (KIND_KNN, 0.0, 0.0, 0.0, 0.0)
    return (KIND_PREDICTIVE, 0.0, 0.0, 0.0, 0.0)


def build_shard_payloads(
    plan: ShardPlan,
    grid,
    index,
    queries,
    qstore=None,
    trace_ctx=(0,),
    cohort_columns=None,
) -> list[tuple]:
    """Serialise each shard's work into the flat SoA payload the worker
    consumes: grid geometry as five numbers, touched cells as qid
    tuples (:meth:`GridIndex.snapshot_cell_queries`), query descriptors
    as primitive 5-tuples, and cohort members as ``(oid, x, y,
    answered)`` rows.  Nothing in a payload aliases live engine state,
    which is what makes a payload safe to pickle to a process *and*
    safe to re-run inline if the pool dies mid-batch.

    When the engine passes its :class:`ColumnarQueryStore`, descriptors
    come straight out of its columns (:meth:`descriptors`) — the store
    already holds the exact wire format, so the per-query attribute
    walk in :func:`_descriptor` is skipped entirely.

    ``trace_ctx`` is the coordinator's trace context — ``(parent_span_id,)``
    — riding along so the worker can echo it back with its phase spans
    (distributed-tracing propagation in one tuple element).

    ``cohort_columns``, when given, is indexed by cohort sequence
    number and holds ``(oids, xs, ys)`` lists for point cohorts whose
    members came out of the batch ingest kernel already oid-sorted and
    column-shaped (``None`` for set cohorts).  Those rows skip the
    per-state location attribute walk — only the ``answered``
    snapshot still reads the state object.
    """
    world = grid.world
    grid_params = (
        grid.n,
        world.min_x,
        world.min_y,
        grid.cell_width,
        grid.cell_height,
    )
    payloads = []
    for shard in sorted(plan.shard_cohorts):
        items = plan.shard_cohorts[shard]
        touched: set[int] = set()
        needed_qids: set[int] = set()
        cohort_descs = []
        for seq, cells, states, stay_put, point_pair in items:
            touched.update(cells)
            rows = []
            columns = (
                cohort_columns[seq] if cohort_columns is not None else None
            )
            if columns is not None:
                # Column slices are aligned with `states` (both sorted
                # by oid by the ingest kernel).
                c_oids, c_xs, c_ys = columns
                for oid, x, y, state in zip(c_oids, c_xs, c_ys, states):
                    answered = tuple(state.answered)
                    needed_qids.update(answered)
                    rows.append((oid, x, y, answered))
            else:
                for state in states:
                    answered = tuple(state.answered)
                    needed_qids.update(answered)
                    location = state.location
                    rows.append((state.oid, location.x, location.y, answered))
            cohort_descs.append((seq, tuple(cells), rows, stay_put, point_pair))
        cell_qids = index.snapshot_cell_queries(touched)
        for qids in cell_qids.values():
            needed_qids.update(qids)
        if qstore is not None:
            qdesc = qstore.descriptors(needed_qids)
        else:
            qdesc = {qid: _descriptor(queries[qid]) for qid in needed_qids}
        payloads.append(
            (shard, grid_params, cell_qids, qdesc, cohort_descs, trace_ctx)
        )
    return payloads
