"""Trajectory compression for the location archive.

A repository that persists every superseded report grows linearly with
update traffic, but most samples of a road-bound trajectory are
redundant — the vehicle was simply driving straight.  The classic
Douglas-Peucker algorithm keeps exactly the samples needed to stay
within a spatial error bound, which is how archived trajectories are
compacted before long-term storage.
"""

from __future__ import annotations

from repro.geometry import Point, Segment
from repro.storage.records import LocationRecord


def douglas_peucker(
    points: list[Point], tolerance: float
) -> list[int]:
    """Indices of the points kept by Douglas-Peucker simplification.

    The first and last points are always kept; between them, the point
    farthest from the current chord is kept (and recursed on) whenever
    its distance exceeds ``tolerance``.  Returned indices are ascending.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if len(points) <= 2:
        return list(range(len(points)))
    keep = {0, len(points) - 1}
    stack = [(0, len(points) - 1)]
    while stack:
        start, end = stack.pop()
        if end - start < 2:
            continue
        chord = Segment(points[start], points[end])
        worst_index, worst_distance = start, -1.0
        for i in range(start + 1, end):
            distance = chord.distance_to_point(points[i])
            if distance > worst_distance:
                worst_index, worst_distance = i, distance
        if worst_distance > tolerance:
            keep.add(worst_index)
            stack.append((start, worst_index))
            stack.append((worst_index, end))
    return sorted(keep)


def simplify_trajectory(
    records: list[LocationRecord], tolerance: float
) -> list[LocationRecord]:
    """A subsequence of ``records`` within ``tolerance`` of the original.

    Every dropped sample lies within ``tolerance`` (Euclidean, in world
    units) of the chord between its surviving neighbours, so replaying
    the simplified trajectory reproduces the original path to within
    the bound.  Timestamps are untouched: the survivors keep theirs.
    """
    kept = douglas_peucker([rec.location for rec in records], tolerance)
    return [records[i] for i in kept]


def compression_ratio(original: int, simplified: int) -> float:
    """Kept fraction (1.0 = nothing removed); 0/0 counts as 1.0."""
    return simplified / original if original else 1.0
