"""The repository wired to a temporal index."""

from __future__ import annotations

from repro.grid import Grid
from repro.storage.bufferpool import BufferPool
from repro.storage.heapfile import RecordId
from repro.storage.records import LocationRecord
from repro.storage.repository import HistoryRepository


class HistoryStore(HistoryRepository):
    """A :class:`HistoryRepository` that also maintains a
    :class:`~repro.history.temporal_index.TemporalGridIndex`.

    Drop-in replacement for the plain repository wherever the server
    takes a ``history=`` argument; past queries then run against the
    same store the server archives into.
    """

    def __init__(
        self, pool: BufferPool, grid: Grid, bucket_seconds: float = 60.0
    ):
        super().__init__(pool)
        # Imported here to keep the storage package free of history deps.
        from repro.history.temporal_index import TemporalGridIndex

        self.temporal = TemporalGridIndex(grid, bucket_seconds)

    def append(self, record: LocationRecord) -> RecordId:
        rid = super().append(record)
        self.temporal.add(rid, record.location, record.t)
        return rid

    def rebuild_index(self) -> None:
        """Rebuild both volatile indexes from the durable heap file."""
        super().rebuild_index()
        self.temporal.clear()
        for rid, payload in self._file.scan():
            record = LocationRecord.unpack(payload)
            self.temporal.add(rid, record.location, record.t)

    def read_record(self, rid: RecordId) -> LocationRecord:
        """Decode one archived record by id (used by past queries)."""
        return LocationRecord.unpack(self._file.read(rid))
