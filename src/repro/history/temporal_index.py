"""A (time bucket x grid cell) index over archived location records."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

from repro.geometry import Point, Rect
from repro.grid import Grid
from repro.storage.heapfile import RecordId


class TemporalGridIndex:
    """Maps ``(time_bucket, cell) -> record ids`` for past-query pruning.

    Time is partitioned into fixed-width buckets; space reuses the same
    uniform grid the live engine uses.  A past range query touches only
    the buckets overlapping its time interval and the cells overlapping
    its region — everything else is never read from the heap file.
    """

    def __init__(self, grid: Grid, bucket_seconds: float = 60.0):
        if bucket_seconds <= 0:
            raise ValueError(
                f"bucket_seconds must be positive, got {bucket_seconds}"
            )
        self.grid = grid
        self.bucket_seconds = bucket_seconds
        self._buckets: dict[tuple[int, int], list[RecordId]] = defaultdict(list)
        self._time_range: tuple[float, float] | None = None
        self._entry_count = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def bucket_of(self, t: float) -> int:
        return int(t // self.bucket_seconds)

    def add(self, rid: RecordId, location: Point, t: float) -> None:
        """Index one archived record."""
        key = (self.bucket_of(t), self.grid.cell_of(location))
        self._buckets[key].append(rid)
        self._entry_count += 1
        if self._time_range is None:
            self._time_range = (t, t)
        else:
            lo, hi = self._time_range
            self._time_range = (min(lo, t), max(hi, t))

    def clear(self) -> None:
        self._buckets.clear()
        self._time_range = None
        self._entry_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def time_range(self) -> tuple[float, float] | None:
        """(earliest, latest) archived timestamp, or None when empty."""
        return self._time_range

    @property
    def populated_bucket_count(self) -> int:
        return len(self._buckets)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def candidates(
        self, region: Rect, t_start: float, t_end: float
    ) -> Iterator[RecordId]:
        """Record ids possibly matching (region, [t_start, t_end]).

        Candidates over-approximate: callers re-check the decoded record
        against the exact predicate (a bucket spans more time and a cell
        more space than the query asked for).
        """
        if t_start > t_end:
            raise ValueError(f"empty time interval [{t_start}, {t_end}]")
        cells = self.grid.cells_overlapping_set(region)
        if not cells:
            return
        for bucket in range(self.bucket_of(t_start), self.bucket_of(t_end) + 1):
            for cell in cells:
                for rid in self._buckets.get((bucket, cell), ()):
                    yield rid

    def candidates_in_interval(
        self, t_start: float, t_end: float
    ) -> Iterator[RecordId]:
        """All record ids in the time interval, any location."""
        if t_start > t_end:
            raise ValueError(f"empty time interval [{t_start}, {t_end}]")
        lo = self.bucket_of(t_start)
        hi = self.bucket_of(t_end)
        for (bucket, __), rids in self._buckets.items():
            if lo <= bucket <= hi:
                yield from rids
