"""Past (historical) queries over the archived location stream.

These are snapshot queries, not continuous ones: "who was inside this
region between 10:00 and 10:05", "where was object 7 at 10:02", "which
three objects were nearest the incident site at 10:02".  They read only
the repository — the live engine's current answer sets are out of
scope by definition (a location is archived when it is *superseded*).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect
from repro.history.store import HistoryStore
from repro.storage.records import LocationRecord


@dataclass(frozen=True, slots=True)
class PastVisit:
    """One archived sighting matching a past range query."""

    oid: int
    location: Point
    t: float


class HistoricalQueryEngine:
    """Past range / trajectory / position / k-NN queries over a store."""

    def __init__(self, store: HistoryStore):
        self.store = store

    # ------------------------------------------------------------------
    # Range
    # ------------------------------------------------------------------

    def past_range(
        self, region: Rect, t_start: float, t_end: float
    ) -> list[PastVisit]:
        """All archived sightings inside ``region`` during the interval.

        Sorted by (t, oid) — the order an investigator replays them in.
        """
        visits = []
        for rid in self.store.temporal.candidates(region, t_start, t_end):
            record = self.store.read_record(rid)
            if t_start <= record.t <= t_end and region.contains_point(
                record.location
            ):
                visits.append(PastVisit(record.oid, record.location, record.t))
        visits.sort(key=lambda v: (v.t, v.oid))
        return visits

    def objects_seen_in(
        self, region: Rect, t_start: float, t_end: float
    ) -> set[int]:
        """The distinct objects sighted in ``region`` during the interval."""
        return {visit.oid for visit in self.past_range(region, t_start, t_end)}

    # ------------------------------------------------------------------
    # Trajectories
    # ------------------------------------------------------------------

    def trajectory_between(
        self, oid: int, t_start: float, t_end: float
    ) -> list[LocationRecord]:
        """The archived samples of ``oid`` within the interval, in order."""
        if t_start > t_end:
            raise ValueError(f"empty time interval [{t_start}, {t_end}]")
        return [
            record
            for record in self.store.history_of(oid)
            if t_start <= record.t <= t_end
        ]

    def position_at(self, oid: int, t: float) -> Point | None:
        """The interpolated position of ``oid`` at past instant ``t``.

        Linear interpolation between the two archived samples bracketing
        ``t``; ``None`` when ``t`` falls outside the archived span (the
        archive cannot speak for the present or the pre-history).
        """
        samples = self.store.history_of(oid)
        if not samples:
            return None
        if t < samples[0].t or t > samples[-1].t:
            return None
        previous = samples[0]
        for sample in samples[1:]:
            if sample.t >= t:
                span = sample.t - previous.t
                if span == 0:
                    return sample.location
                fraction = (t - previous.t) / span
                return Point(
                    previous.location.x
                    + (sample.location.x - previous.location.x) * fraction,
                    previous.location.y
                    + (sample.location.y - previous.location.y) * fraction,
                )
            previous = sample
        return samples[-1].location

    # ------------------------------------------------------------------
    # k-NN
    # ------------------------------------------------------------------

    def knn_at(
        self, center: Point, k: int, t: float
    ) -> list[tuple[float, int]]:
        """The k objects nearest ``center`` at past instant ``t``.

        Every tracked object whose archived samples bracket ``t``
        contributes its interpolated position; objects whose archive
        does not cover ``t`` are excluded (we refuse to guess).  Sorted
        ascending by (distance, oid); fewer than ``k`` entries when
        history is thin.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        ranked = []
        for oid in self.store.tracked_objects():
            position = self.position_at(oid, t)
            if position is not None:
                ranked.append((position.distance_to(center), oid))
        ranked.sort()
        return ranked[:k]
