"""Historical ("past") query processing.

The paper's scope statement: "a range query may ask about the past,
present, or the future."  Present and future queries live in
:mod:`repro.core`; this package serves the *past*, over the locations
the PLACE repository server persisted ("once a moving object or query
sends new information, the old information becomes persistent and is
stored in a repository server").

Components:

* :class:`TemporalGridIndex` — a (time-bucket x grid-cell) index over
  archived location records, kept in memory beside the durable heap
  file, the same way the repository's per-object index is.
* :class:`HistoryStore` — a :class:`~repro.storage.HistoryRepository`
  wired to the temporal index; the server can use it as a drop-in
  history sink.
* :class:`HistoricalQueryEngine` — past range queries ("who was in this
  area between t0 and t1"), trajectory reconstruction, position
  interpolation at an arbitrary past instant, and past k-NN queries.
"""

from repro.history.temporal_index import TemporalGridIndex
from repro.history.store import HistoryStore
from repro.history.queries import HistoricalQueryEngine, PastVisit
from repro.history.compression import douglas_peucker, simplify_trajectory

__all__ = [
    "TemporalGridIndex",
    "HistoryStore",
    "HistoricalQueryEngine",
    "PastVisit",
    "douglas_peucker",
    "simplify_trajectory",
]
