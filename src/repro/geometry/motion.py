"""Time-parameterised linear motion.

A predictive object reports a location ``origin`` at time ``t0`` and a
velocity vector; its predicted position at time ``t >= t0`` is
``origin + velocity * (t - t0)``.  Predictive range queries ask whether
that trajectory enters a rectangle within some future window — the core
geometric primitive behind the paper's Example III.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point, Velocity
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment


@dataclass(frozen=True, slots=True)
class LinearMotion:
    """A point moving with constant velocity from ``origin`` at ``t0``."""

    origin: Point
    velocity: Velocity
    t0: float = 0.0

    def position_at(self, t: float) -> Point:
        """The (extrapolated) position at absolute time ``t``."""
        return self.velocity.displace(self.origin, t - self.t0)

    def segment_until(self, t_end: float) -> Segment:
        """The swept segment from ``t0`` to ``t_end``.

        This is the "line representation" the paper joins against
        predictive query rectangles.
        """
        if t_end < self.t0:
            raise ValueError(f"t_end {t_end} precedes t0 {self.t0}")
        return Segment(self.origin, self.position_at(t_end))

    def bounding_rect_until(self, t_end: float) -> Rect:
        """MBR of the trajectory over ``[t0, t_end]`` (for grid clipping)."""
        return self.segment_until(t_end).bounding_rect()

    def time_in_rect(
        self, rect: Rect, t_start: float, t_end: float
    ) -> tuple[float, float] | None:
        """The absolute time interval the moving point spends inside ``rect``
        within the window ``[t_start, t_end]``, or ``None`` if it never
        enters.  ``t_start`` may not precede the report time ``t0``.
        """
        return time_interval_in_rect(self, rect, t_start, t_end)


def time_interval_in_rect(
    motion: LinearMotion, rect: Rect, t_start: float, t_end: float
) -> tuple[float, float] | None:
    """When does ``motion`` pass through ``rect`` during ``[t_start, t_end]``?

    Returns the (clamped) absolute time interval, or ``None``.  A
    stationary motion is inside the rectangle either for the whole window
    or never.
    """
    if t_start > t_end:
        raise ValueError(f"empty window [{t_start}, {t_end}]")
    if t_start < motion.t0:
        raise ValueError(
            f"window starts at {t_start}, before report time {motion.t0}"
        )
    if motion.velocity.is_zero():
        if rect.contains_point(motion.origin):
            return (t_start, t_end)
        return None
    segment = Segment(motion.position_at(t_start), motion.position_at(t_end))
    params = segment.clip_parameters(rect)
    if params is None:
        return None
    span = t_end - t_start
    return (t_start + params[0] * span, t_start + params[1] * span)
