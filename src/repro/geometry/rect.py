"""Axis-aligned rectangles.

Rectangles are the workhorse region type: range queries are rectangles,
grid cells are rectangles, R-tree nodes store rectangles, and moving
queries are represented by their old and new rectangles whose set
differences (``A_old - A_new`` and ``A_new - A_old``) drive the paper's
incremental evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "degenerate rectangle: "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, a: Point, b: Point) -> "Rect":
        """The bounding rectangle of two points (in any order)."""
        return cls(
            min(a.x, b.x), min(a.y, b.y), max(a.x, b.x), max(a.y, b.y)
        )

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """A rectangle of the given size centred on ``center``."""
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @classmethod
    def square(cls, center: Point, side: float) -> "Rect":
        """A square of the given side length centred on ``center``.

        This is the query shape used throughout the paper's experiment
        ("we choose some points randomly and consider them as centers of
        square queries").
        """
        return cls.from_center(center, side, side)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the minimum corner."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """Whether ``p`` lies inside or on the boundary."""
        return (
            self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y
        )

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` is fully inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least a boundary point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union(self, other: "Rect") -> "Rect":
        """The minimum bounding rectangle of both rectangles."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "Rect":
        """A rectangle grown by ``margin`` on every side."""
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def clipped_to(self, bounds: "Rect") -> "Rect | None":
        """This rectangle clipped to ``bounds`` (alias of intersection)."""
        return self.intersection(bounds)

    def difference(self, other: "Rect") -> list["Rect"]:
        """This rectangle minus ``other`` as up to four disjoint rectangles.

        The incremental engine uses this to compute ``A_new - A_old`` when
        a query moves: only the difference area needs fresh evaluation.
        Returned rectangles tile ``self \\ other`` exactly (no overlaps
        beyond shared boundaries); the list is empty when ``other`` covers
        ``self``, and ``[self]`` when the rectangles are disjoint.
        """
        inter = self.intersection(other)
        if inter is None:
            return [self]
        if inter == self:
            return []
        pieces: list[Rect] = []
        # Bottom band.
        if self.min_y < inter.min_y:
            pieces.append(Rect(self.min_x, self.min_y, self.max_x, inter.min_y))
        # Top band.
        if inter.max_y < self.max_y:
            pieces.append(Rect(self.min_x, inter.max_y, self.max_x, self.max_y))
        # Left band (restricted to the middle stripe).
        if self.min_x < inter.min_x:
            pieces.append(Rect(self.min_x, inter.min_y, inter.min_x, inter.max_y))
        # Right band (restricted to the middle stripe).
        if inter.max_x < self.max_x:
            pieces.append(Rect(inter.max_x, inter.min_y, self.max_x, inter.max_y))
        return pieces

    def clamp_point(self, p: Point) -> Point:
        """The nearest point to ``p`` inside this rectangle.

        Location-aware servers serve a bounded area: reports that drift
        beyond it (GPS noise, map-edge traffic) are clamped back in so
        every engine sees the same bounded world.
        """
        return Point(
            min(max(p.x, self.min_x), self.max_x),
            min(max(p.y, self.min_y), self.max_y),
        )

    def clip_or_pin(self, region: "Rect") -> "Rect":
        """``region`` clipped to this rectangle; a region entirely
        outside collapses to a degenerate rectangle pinned at the
        nearest boundary point (so a query that wandered off the map
        keeps a well-defined — empty-answer — region)."""
        clipped = self.intersection(region)
        if clipped is not None:
            return clipped
        pin = self.clamp_point(region.center)
        return Rect(pin.x, pin.y, pin.x, pin.y)

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------

    def min_distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to this rectangle (0 if inside).

        This is the MINDIST metric used by best-first k-NN search over
        R-trees.
        """
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return (dx * dx + dy * dy) ** 0.5

    def max_distance_to_point(self, p: Point) -> float:
        """Maximum distance from ``p`` to any point of this rectangle."""
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return (dx * dx + dy * dy) ** 0.5
