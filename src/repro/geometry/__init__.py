"""Geometry kernel for the spatio-temporal query processor.

Every other subsystem (grid index, R-tree, spatial joins, the incremental
engine itself) is written against this small kernel: immutable points,
axis-aligned rectangles, circles, line segments, velocity vectors, and
time-parameterised linear motion.

The kernel is deliberately dependency-free and numerically conservative:
all predicates treat boundaries as *inclusive* (an object sitting exactly
on the edge of a range query satisfies it), matching the semantics used in
the paper's worked examples.
"""

from repro.geometry.point import Point, Velocity
from repro.geometry.rect import Rect
from repro.geometry.circle import Circle
from repro.geometry.segment import Segment
from repro.geometry.motion import LinearMotion, time_interval_in_rect

__all__ = [
    "Point",
    "Velocity",
    "Rect",
    "Circle",
    "Segment",
    "LinearMotion",
    "time_interval_in_rect",
]
