"""Circles.

The paper stores a continuous k-NN query in the shared grid "by
considering the query region as the smallest circular region that
contains the k nearest objects" — so circles are a first-class region
type alongside rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disc with the given ``center`` and ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"negative radius: {self.radius}")

    def contains_point(self, p: Point) -> bool:
        """Whether ``p`` lies inside or on the circle boundary."""
        return self.center.squared_distance_to(p) <= self.radius * self.radius

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether the disc and the rectangle share at least one point."""
        return rect.min_distance_to_point(self.center) <= self.radius

    def contains_rect(self, rect: Rect) -> bool:
        """Whether the rectangle lies entirely inside the disc."""
        return rect.max_distance_to_point(self.center) <= self.radius

    def intersects_circle(self, other: "Circle") -> bool:
        """Whether the two discs overlap (boundary contact counts)."""
        limit = self.radius + other.radius
        return self.center.squared_distance_to(other.center) <= limit * limit

    def bounding_rect(self) -> Rect:
        """The minimum bounding rectangle of the disc.

        Used to clip a k-NN query's circular region onto grid cells, the
        same way rectangular query regions are clipped.
        """
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def with_radius(self, radius: float) -> "Circle":
        """A circle with the same center and a new radius.

        k-NN maintenance grows and shrinks the circular region as the
        k-th nearest neighbour changes; the center only moves when the
        querying client itself moves.
        """
        return Circle(self.center, radius)

    def with_center(self, center: Point) -> "Circle":
        """A circle with the same radius and a new center."""
        return Circle(center, self.radius)
