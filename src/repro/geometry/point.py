"""Points and velocity vectors in the 2-D plane."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the plane.

    Points are the unit of location information: every object location
    report, every query anchor and every grid-cell computation starts from
    a ``Point``.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in hot loops)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point offset by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """The midpoint between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        """The point as an ``(x, y)`` tuple."""
        return (self.x, self.y)


@dataclass(frozen=True, slots=True)
class Velocity:
    """A velocity vector in space units per time unit.

    Predictive objects and predictive queries report a ``Velocity``
    alongside their current location; the engine extrapolates their future
    positions linearly from it.
    """

    vx: float
    vy: float

    @property
    def speed(self) -> float:
        """Scalar speed (magnitude of the vector)."""
        return math.hypot(self.vx, self.vy)

    def is_zero(self) -> bool:
        """Whether this velocity represents a stationary object."""
        return self.vx == 0.0 and self.vy == 0.0

    def scaled(self, factor: float) -> "Velocity":
        """A new velocity scaled by ``factor``."""
        return Velocity(self.vx * factor, self.vy * factor)

    def displace(self, origin: Point, dt: float) -> Point:
        """Where a point starting at ``origin`` lands after ``dt`` time."""
        return Point(origin.x + self.vx * dt, origin.y + self.vy * dt)


# A shared zero-velocity constant: stationary objects carry this rather
# than ``None`` so motion code never needs a null check.
Velocity.ZERO = Velocity(0.0, 0.0)
