"""Line segments.

Predictive objects are represented in the grid by "the lines
representation of the moving objects" (paper, Example III): the segment a
predictive object sweeps over the prediction horizon.  Segments also back
the road-network edges in the workload generator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        return self.start.distance_to(self.end)

    def point_at(self, fraction: float) -> Point:
        """The point a given ``fraction`` (0..1) of the way along."""
        return Point(
            self.start.x + (self.end.x - self.start.x) * fraction,
            self.start.y + (self.end.y - self.start.y) * fraction,
        )

    def bounding_rect(self) -> Rect:
        """The minimum bounding rectangle of the segment."""
        return Rect.from_points(self.start, self.end)

    def intersects_rect(self, rect: Rect) -> bool:
        """Whether any point of the segment lies inside ``rect``.

        Uses Liang–Barsky parametric clipping: the segment is
        ``start + t * d`` for ``t`` in [0, 1]; each rectangle edge clips
        the feasible ``t`` interval and the segment intersects iff the
        interval stays non-empty.
        """
        return self.clip_parameters(rect) is not None

    def clip_parameters(self, rect: Rect) -> tuple[float, float] | None:
        """The parameter interval ``[t0, t1]`` of the segment inside ``rect``.

        Returns ``None`` if the segment misses the rectangle entirely.
        ``t`` is the fraction along the segment, so this doubles as a
        *time interval* for a point moving linearly along the segment —
        exactly what predictive range evaluation needs.
        """
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        t0, t1 = 0.0, 1.0
        for p, q in (
            (-dx, self.start.x - rect.min_x),
            (dx, rect.max_x - self.start.x),
            (-dy, self.start.y - rect.min_y),
            (dy, rect.max_y - self.start.y),
        ):
            if p == 0.0:
                # Segment parallel to this pair of edges: reject if it
                # lies outside the slab, otherwise this edge pair does
                # not constrain t.
                if q < 0.0:
                    return None
                continue
            r = q / p
            if p < 0.0:
                if r > t1:
                    return None
                if r > t0:
                    t0 = r
            else:
                if r < t0:
                    return None
                if r < t1:
                    t1 = r
        return (t0, t1)

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to any point of the segment."""
        dx = self.end.x - self.start.x
        dy = self.end.y - self.start.y
        len_sq = dx * dx + dy * dy
        if len_sq == 0.0:
            return self.start.distance_to(p)
        t = ((p.x - self.start.x) * dx + (p.y - self.start.y) * dy) / len_sq
        t = max(0.0, min(1.0, t))
        nearest = Point(self.start.x + t * dx, self.start.y + t * dy)
        return nearest.distance_to(p)

    def heading(self) -> float:
        """The direction of travel in radians (atan2 convention)."""
        return math.atan2(self.end.y - self.start.y, self.end.x - self.start.x)
