"""Home-cell arithmetic shared by every pipeline, scalar and batch.

The clamped truncate-divide below is the *definition* of a point's home
cell: ``Grid.cell_of`` uses the scalar form, and the columnar batch
ingest applies the vectorized form to a whole report buffer.  Both live
here so the two can never drift — the batch kernel's cohort keys must be
bit-identical to the serial pipelines' or update streams diverge.

Truncation parity: Python's ``int()`` on a float and numpy's
``.astype(np.int64)`` both truncate toward zero (C cast semantics), so
a marginally out-of-world coordinate like ``x = min_x - 0.3`` yields
``-0`` either way before clamping pins it to the border cell.  The
hypothesis suite (``tests/grid/test_cellmath.py``) pins this on
boundary coordinates.
"""

from __future__ import annotations

__all__ = ["clamp_axis_index", "point_cell", "point_cells_batch"]


def clamp_axis_index(value: float, origin: float, step: float, n: int) -> int:
    """The clamped index of ``value`` along one grid axis.

    Points on shared cell boundaries land in the higher-index cell
    (truncate-divide), except on the world's outer maximum edge which
    folds back into the last row/column via the clamp.
    """
    index = int((value - origin) / step)
    if index < 0:
        return 0
    last = n - 1
    return last if index > last else index


def point_cell(
    x: float,
    y: float,
    min_x: float,
    min_y: float,
    cell_w: float,
    cell_h: float,
    n: int,
) -> int:
    """Flattened home-cell index ``row * n + col`` of one point."""
    return (
        clamp_axis_index(y, min_y, cell_h, n) * n
        + clamp_axis_index(x, min_x, cell_w, n)
    )


def point_cells_batch(xs, ys, grid, np):
    """Home cells of a whole coordinate batch, bit-identical to
    :func:`point_cell` element for element.

    ``xs``/``ys`` are float64 ndarrays of finite coordinates (report
    ingestion clamps to the world, but any value within int64 cast
    range is handled identically to the scalar path); ``np`` is the
    caller's numpy module.  Returns an int64 ndarray of cell ids.
    """
    world = grid.world
    n = grid.n
    cols = ((xs - world.min_x) / grid.cell_width).astype(np.int64)
    np.clip(cols, 0, n - 1, out=cols)
    rows = ((ys - world.min_y) / grid.cell_height).astype(np.int64)
    np.clip(rows, 0, n - 1, out=rows)
    rows *= n
    rows += cols
    return rows
