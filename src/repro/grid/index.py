"""Mutable grid index over objects and queries.

One :class:`GridIndex` instance is the heart of the location-aware
server: it holds, per cell, the identifiers of the objects located in the
cell and of the queries whose region overlaps the cell.  Auxiliary hash
indexes map each identifier back to its current cell set, which is what
lets an update locate (and clear) the *old* position without a spatial
search — the role the paper assigns to its "object index" and "query
index" (compare the LUR-tree's linked list and the FUR-tree's hash
table).
"""

from __future__ import annotations

import heapq
from collections.abc import Set
from dataclasses import dataclass, field

from repro.geometry import Point, Rect
from repro.grid.partition import Grid
from repro.obs import MetricsRegistry

#: Upper bounds for the cell-occupancy histogram (objects per cell).
OCCUPANCY_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0
)

#: Shared sentinel returned for empty cells by the zero-copy retrieval
#: methods.  Immutable, so accidental mutation of "no residents" fails
#: loudly instead of corrupting a shared object.
_EMPTY: frozenset[int] = frozenset()


@dataclass(slots=True)
class CellBucket:
    """The contents of one grid cell: resident objects and overlapping queries."""

    objects: set[int] = field(default_factory=set)
    queries: set[int] = field(default_factory=set)

    def is_empty(self) -> bool:
        return not self.objects and not self.queries


class GridIndex:
    """Cell buckets plus identifier->cells auxiliary indexes.

    The index is intentionally ignorant of object/query *state* (answer
    lists, regions, timestamps live in the engine); it deals purely in
    identifiers and cell memberships, which keeps re-indexing on updates
    cheap and keeps a single source of truth for each piece of state.
    """

    def __init__(self, grid: Grid):
        self.grid = grid
        self._cells: dict[int, CellBucket] = {}
        self._object_cells: dict[int, frozenset[int]] = {}
        self._query_cells: dict[int, frozenset[int]] = {}
        # Reusable clipping buffer for the *_overlapping retrieval
        # methods (see Grid.cells_overlapping_into); makes them
        # allocation-free but non-reentrant.
        self._scratch_cells: list[int] = []
        # Per-cell sorted qid tuples, built lazily and invalidated only
        # when that cell's query membership changes.  Backs both
        # snapshot_cell_queries (parallel payloads) and the columnar
        # evaluator's candidate resolution, so repeated snapshots of a
        # stable cell are a dict hit, not a rebuild.
        self._cell_query_tuples: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def object_count(self) -> int:
        return len(self._object_cells)

    @property
    def query_count(self) -> int:
        return len(self._query_cells)

    @property
    def populated_cell_count(self) -> int:
        return len(self._cells)

    def contains_object(self, oid: int) -> bool:
        return oid in self._object_cells

    def contains_query(self, qid: int) -> bool:
        return qid in self._query_cells

    def object_cells(self, oid: int) -> frozenset[int]:
        """The cells currently holding object ``oid``."""
        return self._object_cells[oid]

    def query_cells(self, qid: int) -> frozenset[int]:
        """The cells currently overlapped by query ``qid``."""
        return self._query_cells[qid]

    def bucket(self, cell: int) -> CellBucket | None:
        """The bucket for ``cell``, or ``None`` when the cell is empty."""
        return self._cells.get(cell)

    # ------------------------------------------------------------------
    # Object side
    # ------------------------------------------------------------------

    def place_object(self, oid: int, cells: frozenset[int]) -> None:
        """Insert or move object ``oid`` so it occupies exactly ``cells``.

        A plain moving object occupies one cell (its location's home
        cell); a predictive object occupies every cell its trajectory MBR
        overlaps.
        """
        if not cells:
            raise ValueError(f"object {oid} must occupy at least one cell")
        old = self._object_cells.get(oid, frozenset())
        for cell in old - cells:
            self._remove_member(cell, oid, is_query=False)
        for cell in cells - old:
            self._cells.setdefault(cell, CellBucket()).objects.add(oid)
        self._object_cells[oid] = cells

    def place_object_at(self, oid: int, location: Point) -> None:
        """Convenience: place a point object at ``location``."""
        self.place_object(oid, frozenset((self.grid.cell_of(location),)))

    def move_point_object(self, oid: int, old_cell: int, new_cell: int) -> None:
        """Hot-path variant of :meth:`place_object` for the common
        single-cell move.  The caller guarantees ``oid`` currently
        occupies exactly ``{old_cell}``; no-op when the cell is unchanged.
        """
        if old_cell == new_cell:
            return
        self._remove_member(old_cell, oid, is_query=False)
        self._cells.setdefault(new_cell, CellBucket()).objects.add(oid)
        self._object_cells[oid] = frozenset((new_cell,))

    def bulk_drain_points(self, cell: int, oids: "list[int]") -> None:
        """Remove a batch of departing point objects from ``cell``'s
        bucket (batch ingest's per-old-cell pass).

        The caller guarantees every member currently occupies exactly
        ``{cell}`` and re-homes each one through a matching
        :meth:`bulk_fill_points` call in the same round; footprints are
        left to that call.  The bucket is reclaimed if emptied, exactly
        like :meth:`_remove_member`.
        """
        cells = self._cells
        bucket = cells[cell]
        bucket.objects.difference_update(oids)
        if bucket.is_empty():
            del cells[cell]

    def bulk_fill_points(self, cell: int, oids: "list[int]") -> None:
        """Insert a batch of arriving point objects into ``cell``'s
        bucket (batch ingest's per-new-cell pass: brand-new objects and
        drained movers alike).

        One bucket lookup and one set union for the whole batch, and
        every member shares a single ``frozenset`` footprint —
        ``dict.fromkeys`` keeps the assignment loop in C.
        """
        bucket = self._cells.get(cell)
        if bucket is None:
            bucket = self._cells[cell] = CellBucket()
        bucket.objects.update(oids)
        self._object_cells.update(dict.fromkeys(oids, frozenset((cell,))))

    def remove_object(self, oid: int) -> None:
        """Remove object ``oid`` entirely; unknown ids raise ``KeyError``."""
        cells = self._object_cells.pop(oid, None)
        if cells is None:
            raise KeyError(f"object {oid} is not indexed")
        for cell in cells:
            self._remove_member(cell, oid, is_query=False)

    # ------------------------------------------------------------------
    # Query side
    # ------------------------------------------------------------------

    def place_query(self, qid: int, cells: frozenset[int]) -> None:
        """Insert or move query ``qid`` so it overlaps exactly ``cells``."""
        if not cells:
            raise ValueError(f"query {qid} must overlap at least one cell")
        old = self._query_cells.get(qid, frozenset())
        tuples = self._cell_query_tuples
        for cell in old - cells:
            self._remove_member(cell, qid, is_query=True)
        for cell in cells - old:
            self._cells.setdefault(cell, CellBucket()).queries.add(qid)
            tuples.pop(cell, None)
        self._query_cells[qid] = cells

    def place_query_region(self, qid: int, region: Rect) -> None:
        """Convenience: clip a rectangular query region onto the grid.

        A region that has drifted entirely outside the world still needs
        a home (moving queries follow their clients off the map edge);
        it is clamped to the cell nearest its center.
        """
        cells = self.grid.cells_overlapping_set(region)
        if not cells:
            cells = frozenset((self.grid.cell_of(region.center),))
        self.place_query(qid, cells)

    def remove_query(self, qid: int) -> None:
        """Remove query ``qid`` entirely; unknown ids raise ``KeyError``."""
        cells = self._query_cells.pop(qid, None)
        if cells is None:
            raise KeyError(f"query {qid} is not indexed")
        for cell in cells:
            self._remove_member(cell, qid, is_query=True)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def objects_in_cell(self, cell: int) -> Set[int]:
        """The objects resident in ``cell`` — a zero-copy live view.

        Aliasing contract: the returned set is the index's own bucket
        storage (or a shared immutable empty sentinel).  It reflects
        subsequent index mutations, MUST NOT be mutated by the caller,
        and must be snapshotted (``set(...)``) before being retained
        across any ``place_*`` / ``remove_*`` call.  The bulk-evaluation
        hot path reads millions of these per batch; copying defensively
        here is what the cell-batched pipeline removed.
        """
        bucket = self._cells.get(cell)
        return bucket.objects if bucket else _EMPTY

    def queries_in_cell(self, cell: int) -> Set[int]:
        """The queries overlapping ``cell`` — a zero-copy live view.

        Same aliasing contract as :meth:`objects_in_cell`.
        """
        bucket = self._cells.get(cell)
        return bucket.queries if bucket else _EMPTY

    def objects_overlapping(self, rect: Rect) -> set[int]:
        """Candidate objects: all objects registered in cells touching ``rect``.

        Candidates still need an exact geometric check by the caller —
        a cell may extend well beyond ``rect``.  The returned set is a
        fresh copy (callers may mutate it freely).
        """
        found: set[int] = set()
        cells = self._cells
        for cell in self.grid.cells_overlapping_into(rect, self._scratch_cells):
            bucket = cells.get(cell)
            if bucket:
                found.update(bucket.objects)
        return found

    def queries_overlapping(self, rect: Rect) -> set[int]:
        """Candidate queries whose clipped cells touch ``rect`` (fresh copy)."""
        found: set[int] = set()
        cells = self._cells
        for cell in self.grid.cells_overlapping_into(rect, self._scratch_cells):
            bucket = cells.get(cell)
            if bucket:
                found.update(bucket.queries)
        return found

    def queries_colocated_with_object(self, oid: int) -> set[int]:
        """Queries sharing at least one cell with object ``oid``.

        These are exactly the paper's "candidate queries that can
        intersect with the new location of O".
        """
        found: set[int] = set()
        for cell in self._object_cells[oid]:
            bucket = self._cells.get(cell)
            if bucket:
                found.update(bucket.queries)
        return found

    def cell_query_tuple(self, cell: int) -> tuple[int, ...]:
        """The qids overlapping ``cell`` as a sorted, cached tuple.

        Built on first access and invalidated per cell only when a
        query is placed into or removed from that cell, so a stable
        cell costs one dict hit per access no matter how many batches
        read it.  The tuple is immutable and safe to retain or ship
        across process boundaries.
        """
        cached = self._cell_query_tuples.get(cell)
        if cached is None:
            bucket = self._cells.get(cell)
            cached = (
                tuple(sorted(bucket.queries))
                if bucket is not None and bucket.queries
                else ()
            )
            self._cell_query_tuples[cell] = cached
        return cached

    def snapshot_cell_queries(
        self, cells: "list[int] | tuple[int, ...] | Set[int]"
    ) -> dict[int, tuple[int, ...]]:
        """Flat, picklable ``{cell: (qid, ...)}`` snapshot of ``cells``.

        The struct-of-arrays export the parallel pipeline ships to
        worker processes: plain ints in plain tuples, no live bucket
        aliases crossing a process boundary, no object graphs to
        pickle.  Empty cells map to an empty tuple so workers can
        distinguish "no queries here" from "cell not shipped".  Each
        tuple is a slice of the per-cell tuple cache
        (:meth:`cell_query_tuple`) — sorted ascending, rebuilt only for
        cells whose query membership changed since the last snapshot.
        """
        tuple_of = self.cell_query_tuple
        return {cell: tuple_of(cell) for cell in cells}

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def sample_occupancy(
        self, registry: MetricsRegistry, top_k: int = 5
    ) -> None:
        """Record the grid's occupancy shape into ``registry``.

        Observes every populated cell's object count into the
        ``grid_cell_occupancy`` histogram (cumulative across samples —
        the engine samples once per evaluation), refreshes the
        ``grid_populated_cells`` / ``grid_indexed_objects`` /
        ``grid_indexed_queries`` gauges, and publishes the ``top_k``
        hottest cells as ``grid_hot_cell_occupancy{rank=...}`` plus the
        matching ``grid_hot_cell_id{rank=...}`` — the operator's view of
        skew (a mis-sized grid shows up as a few enormous cells).

        One pass over populated cells, no allocation beyond the top-k
        heap; skipped entirely under a disabled (null) registry.
        """
        if not registry.enabled:
            return
        histogram = registry.histogram(
            "grid_cell_occupancy", buckets=OCCUPANCY_BUCKETS
        )
        observe = histogram.observe
        hottest: list[tuple[int, int]] = []  # min-heap of (count, cell)
        heap_push = heapq.heappush
        heap_replace = heapq.heapreplace
        for cell, bucket in self._cells.items():
            n = len(bucket.objects)
            if not n:
                continue
            observe(n)
            if len(hottest) < top_k:
                heap_push(hottest, (n, cell))
            elif n > hottest[0][0]:
                heap_replace(hottest, (n, cell))
        registry.gauge("grid_populated_cells").set(len(self._cells))
        registry.gauge("grid_indexed_objects").set(len(self._object_cells))
        registry.gauge("grid_indexed_queries").set(len(self._query_cells))
        for rank, (n, cell) in enumerate(
            sorted(hottest, key=lambda item: (-item[0], item[1]))
        ):
            labels = {"rank": str(rank)}
            registry.gauge("grid_hot_cell_occupancy", labels=labels).set(n)
            registry.gauge("grid_hot_cell_id", labels=labels).set(cell)
        # Ranks beyond today's populated count must not show stale cells.
        for rank in range(len(hottest), top_k):
            labels = {"rank": str(rank)}
            registry.gauge("grid_hot_cell_occupancy", labels=labels).set(0.0)
            registry.gauge("grid_hot_cell_id", labels=labels).set(-1.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _remove_member(self, cell: int, ident: int, is_query: bool) -> None:
        bucket = self._cells[cell]
        if is_query:
            bucket.queries.discard(ident)
            self._cell_query_tuples.pop(cell, None)
        else:
            bucket.objects.discard(ident)
        if bucket.is_empty():
            # Reclaim empty buckets so a sparse world stays sparse.
            del self._cells[cell]
