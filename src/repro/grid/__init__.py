"""Uniform grid index holding both objects and queries.

The paper's framework hinges on one data structure: a simple grid that
divides space evenly into ``N x N`` equal cells and stores *objects and
queries side by side*.  Point objects map to exactly one cell; query
regions (and predictive trajectories) are clipped to every cell they
overlap.  Shared query evaluation is then a per-cell join between the two
populations.

``Grid`` captures the pure geometry of the partitioning; ``GridIndex``
adds the mutable cell buckets plus the auxiliary identifier indexes the
paper requires for looking up old locations ("the object index and the
query index ... are used to provide the ability for searching the old
locations of moving objects and queries given their identifiers").
"""

from repro.grid.partition import Grid
from repro.grid.index import CellBucket, GridIndex

__all__ = ["Grid", "GridIndex", "CellBucket"]
