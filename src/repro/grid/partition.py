"""Geometry of the uniform N x N space partitioning."""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.geometry import Point, Rect
from repro.grid.cellmath import clamp_axis_index


@dataclass(frozen=True, slots=True)
class Grid:
    """An ``n x n`` uniform partitioning of a rectangular world.

    Cells are identified by a single flattened integer index
    ``cell = row * n + col`` so they can be used directly as dictionary
    keys and set members.  Points on shared cell boundaries are assigned
    to the higher-index cell, except on the world's outer maximum edges
    which fold back into the last row/column, so every point in the world
    has exactly one home cell.
    """

    world: Rect
    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"grid needs a positive cell count, got {self.n}")
        if self.world.width <= 0 or self.world.height <= 0:
            raise ValueError("grid world must have positive area")

    # ------------------------------------------------------------------
    # Cell addressing
    # ------------------------------------------------------------------

    @property
    def cell_count(self) -> int:
        return self.n * self.n

    @property
    def cell_width(self) -> float:
        return self.world.width / self.n

    @property
    def cell_height(self) -> float:
        return self.world.height / self.n

    def _col_of(self, x: float) -> int:
        return clamp_axis_index(x, self.world.min_x, self.cell_width, self.n)

    def _row_of(self, y: float) -> int:
        return clamp_axis_index(y, self.world.min_y, self.cell_height, self.n)

    def cell_of(self, p: Point) -> int:
        """The flattened cell index of the cell containing ``p``.

        Points outside the world are clamped to the nearest border cell:
        a location report that drifts marginally out of the configured
        world (GPS noise) must still land somewhere deterministic.
        """
        return self._row_of(p.y) * self.n + self._col_of(p.x)

    def cell_rect(self, cell: int) -> Rect:
        """The rectangle covered by ``cell``."""
        if not 0 <= cell < self.cell_count:
            raise IndexError(f"cell {cell} out of range 0..{self.cell_count - 1}")
        row, col = divmod(cell, self.n)
        return Rect(
            self.world.min_x + col * self.cell_width,
            self.world.min_y + row * self.cell_height,
            self.world.min_x + (col + 1) * self.cell_width,
            self.world.min_y + (row + 1) * self.cell_height,
        )

    # ------------------------------------------------------------------
    # Region clipping
    # ------------------------------------------------------------------

    def cells_overlapping(self, rect: Rect) -> Iterator[int]:
        """All cells whose area intersects ``rect`` (clamped to the world).

        This is how query regions, k-NN circles (via their bounding
        rectangle) and predictive trajectory MBRs are clipped onto the
        grid.
        """
        clipped = rect.intersection(self.world)
        if clipped is None:
            return
        col_lo = self._col_of(clipped.min_x)
        col_hi = self._col_of(clipped.max_x)
        row_lo = self._row_of(clipped.min_y)
        row_hi = self._row_of(clipped.max_y)
        for row in range(row_lo, row_hi + 1):
            base = row * self.n
            for col in range(col_lo, col_hi + 1):
                yield base + col

    def cells_overlapping_set(self, rect: Rect) -> frozenset[int]:
        """Like :meth:`cells_overlapping` but materialised as a frozenset."""
        return frozenset(self.cells_overlapping(rect))

    def cells_overlapping_into(self, rect: Rect, out: list[int]) -> list[int]:
        """Scratch-buffer variant of :meth:`cells_overlapping`.

        Clears ``out``, fills it with the overlapped cell ids, and
        returns it.  Callers on hot paths keep one scratch list alive
        and pass it to every call, so the per-invocation generator and
        set allocations of the other variants disappear.

        Contract: the returned list is ``out`` itself — it is only
        valid until the next call that reuses the same buffer, and a
        shared buffer makes this method non-reentrant (one in-flight
        call per buffer).
        """
        out.clear()
        clipped = rect.intersection(self.world)
        if clipped is None:
            return out
        col_lo = self._col_of(clipped.min_x)
        col_hi = self._col_of(clipped.max_x)
        row_lo = self._row_of(clipped.min_y)
        row_hi = self._row_of(clipped.max_y)
        append = out.append
        for row in range(row_lo, row_hi + 1):
            base = row * self.n
            for col in range(col_lo, col_hi + 1):
                append(base + col)
        return out

    def neighbors_of(self, cell: int) -> Iterator[int]:
        """The up-to-8 cells adjacent to ``cell`` (for expanding searches)."""
        row, col = divmod(cell, self.n)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                r, c = row + dr, col + dc
                if 0 <= r < self.n and 0 <= c < self.n:
                    yield r * self.n + c

    def ring_around(self, center_cell: int, radius: int) -> Iterator[int]:
        """Cells forming the square ring at Chebyshev distance ``radius``.

        k-NN initial evaluation expands ring by ring from the query's
        home cell until k objects are guaranteed found.
        ``radius == 0`` yields just the center cell.
        """
        row, col = divmod(center_cell, self.n)
        if radius == 0:
            yield center_cell
            return
        for c in range(col - radius, col + radius + 1):
            if 0 <= c < self.n:
                if 0 <= row - radius < self.n:
                    yield (row - radius) * self.n + c
                if 0 <= row + radius < self.n:
                    yield (row + radius) * self.n + c
        for r in range(row - radius + 1, row + radius):
            if 0 <= r < self.n:
                if 0 <= col - radius < self.n:
                    yield r * self.n + col - radius
                if 0 <= col + radius < self.n:
                    yield r * self.n + col + radius

    def max_ring_radius(self, center_cell: int) -> int:
        """The largest ring radius that still touches the world."""
        row, col = divmod(center_cell, self.n)
        return max(row, col, self.n - 1 - row, self.n - 1 - col)

    # ------------------------------------------------------------------
    # Sharding (parallel bulk evaluation)
    # ------------------------------------------------------------------

    def shard_of_cell(self, cell: int, shards: int) -> int:
        """The shard owning ``cell`` under a ``shards``-way row striping.

        Shards are contiguous horizontal bands of grid rows: row ``r``
        belongs to shard ``r * shards // n``.  Bands differ by at most
        one row, every shard id in ``[0, min(shards, n))`` is used, and
        the mapping is pure arithmetic — workers and the coordinator
        agree on it without communicating.
        """
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        return (cell // self.n) * shards // self.n

    def shard_row_bands(self, shards: int) -> list[tuple[int, int]]:
        """The ``[row_lo, row_hi)`` band of grid rows for each shard.

        Shards beyond the row count come back as empty bands (a 4x4
        grid split 8 ways leaves four shards with no rows) so callers
        can size worker pools without special-casing tiny grids.
        """
        if shards <= 0:
            raise ValueError(f"shards must be positive, got {shards}")
        bounds = [0] * (shards + 1)
        for row in range(self.n):
            bounds[row * shards // self.n + 1] = row + 1
        bands: list[tuple[int, int]] = []
        lo = 0
        for shard in range(shards):
            hi = max(bounds[shard + 1], lo)
            bands.append((lo, hi))
            lo = hi
        return bands
